//! Plan-time optimizer suite: fused execution vs the unfused engines.
//!
//! With `BatchPolicy::default()` (fusion on) every flush runs the batch
//! through `qsim::optimize` — adjacent 1q-gate runs collapse into single
//! `Fused1q` matrix sweeps and diagonal stretches (Z/S/T/Rz/CZ) merge into
//! one `PhaseSweep`. Fusing re-associates floating-point matrix products,
//! so the contract here is *not* bit-identity to the eager path (that is
//! `tests/batching.rs`, which pins fusion off); it is:
//!
//! * amplitudes and expectations within 1e-12 of the eager run on general
//!   Clifford+T circuits — far tighter than any physical tolerance;
//! * **exact** bitwise identity on permutation/phase circuits
//!   (X/Z/S/CNOT/CZ/SWAP), whose fused kernels only permute amplitudes
//!   and multiply by unit factors with exact IEEE representations;
//! * identical measurement trajectories per seed;
//! * strictly *fewer* kernel sweeps on fusible circuits — the counters
//!   prove the optimizer actually fired, not just that it did no harm.
//!
//! The property module runs under the nightly stress lane's
//! `PROPTEST_CASES=320` sweep alongside the other in-tree proptest suites.

mod common;

use common::conformance::{assert_fused_matches_unfused, ensure_worker_bin, run_circuit, Step};
use qmpi::{BackendKind, BatchPolicy, QmpiConfig};
use qsim::{Gate, NoiseModel};

const N_QUBITS: usize = 6;
const TOL: f64 = 1e-12;

fn amplitude_kinds() -> [BackendKind; 4] {
    [
        BackendKind::StateVector,
        BackendKind::Sparse,
        BackendKind::ShardedStateVector { shards: 1 },
        BackendKind::ShardedStateVector { shards: 8 },
    ]
}

/// A general Clifford+T circuit with long 1q runs and diagonal stretches —
/// plenty for both fusion passes to chew on, plus flush points and 2q
/// entanglers that act as fusion barriers.
fn clifford_t_circuit() -> Vec<Step> {
    use Step::*;
    vec![
        G(Gate::H, 0),
        G(Gate::T, 0),
        G(Gate::H, 0),
        G(Gate::Ry(0.3), 1),
        G(Gate::Rz(1.1), 1),
        Cnot(0, 1),
        G(Gate::T, 2),
        G(Gate::S, 2),
        G(Gate::Z, 3),
        Cz(2, 3),
        G(Gate::Rz(0.7), 2),
        Flush,
        G(Gate::H, 4),
        G(Gate::Tdg, 4),
        G(Gate::Sdg, 4),
        Swap(4, 5),
        G(Gate::Y, 5),
        G(Gate::X, 5),
        Cnot(5, 0),
        G(Gate::T, 5),
    ]
}

/// A permutation/phase circuit: every gate maps basis states to basis
/// states times a factor from {±1, ±i} — exactly representable, so fusion
/// must be bitwise lossless.
fn permutation_phase_circuit() -> Vec<Step> {
    use Step::*;
    vec![
        G(Gate::X, 0),
        G(Gate::X, 2),
        G(Gate::Z, 0),
        G(Gate::S, 0),
        G(Gate::S, 2),
        Cnot(0, 1),
        G(Gate::T, 1),
        G(Gate::T, 1), // T·T = S: exact factors even though T alone isn't
        Cz(1, 2),
        Swap(2, 3),
        G(Gate::Z, 3),
        G(Gate::Sdg, 3),
        Flush,
        Cnot(3, 4),
        G(Gate::X, 4),
        G(Gate::Z, 5),
        Cz(4, 5),
        G(Gate::S, 5),
    ]
}

#[test]
fn clifford_t_fused_matches_unfused_within_tolerance() {
    let steps = clifford_t_circuit();
    for kind in amplitude_kinds() {
        assert_fused_matches_unfused(kind, N_QUBITS, &steps, 42, TOL);
    }
}

#[test]
fn permutation_phase_circuits_are_exact_under_fusion() {
    let steps = permutation_phase_circuit();
    for kind in amplitude_kinds() {
        assert_fused_matches_unfused(kind, N_QUBITS, &steps, 7, 0.0);
    }
}

/// The process-separated backend spawns real worker children, so it gets
/// its own (smaller) sweep of both fixed circuits.
#[test]
fn remote_workers_fuse_identically() {
    ensure_worker_bin();
    let kind = BackendKind::RemoteSharded { shards: 2 };
    assert_fused_matches_unfused(kind, N_QUBITS, &clifford_t_circuit(), 42, TOL);
    assert_fused_matches_unfused(kind, N_QUBITS, &permutation_phase_circuit(), 7, 0.0);
}

/// The counter proof: on a 1q-run-heavy circuit the fused run must apply
/// *strictly fewer* kernel sweeps than the unfused-batched run — the
/// optimizer demonstrably fired, it didn't just pass the stream through.
#[test]
fn fusion_strictly_reduces_kernel_sweeps() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        G(Gate::T, 0),
        G(Gate::H, 0),
        G(Gate::S, 1),
        G(Gate::T, 1),
        G(Gate::Z, 1),
        G(Gate::Rz(0.4), 2),
        G(Gate::T, 2),
        Cz(0, 1),
        G(Gate::Ry(0.8), 3),
        G(Gate::Rz(0.2), 3),
        G(Gate::H, 3),
    ];
    let run = |policy: BatchPolicy| {
        let cfg = QmpiConfig::new()
            .seed(3)
            .backend(BackendKind::StateVector)
            .noise(NoiseModel::ideal())
            .batch(policy);
        run_circuit(cfg, N_QUBITS, &steps, false).0
    };
    let unfused = run(BatchPolicy {
        fuse: false,
        ..BatchPolicy::default()
    });
    let fused = run(BatchPolicy::default());
    assert!(
        fused.counts.0 < unfused.counts.0,
        "fusion must strictly reduce kernel sweeps on this circuit \
         ({} fused vs {} unfused)",
        fused.counts.0,
        unfused.counts.0
    );
    assert_eq!(fused.outcomes, unfused.outcomes);
}

mod proptests {
    use super::*;
    use crate::common::conformance::strategies::arb_steps;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random Clifford+T circuits with random flush points: the fused
        /// run agrees with the eager run within 1e-12 on every in-process
        /// amplitude engine and never adds kernel sweeps.
        #[test]
        fn random_circuits_fuse_within_tolerance(
            steps in arb_steps(N_QUBITS, true, 8..30),
            seed in 0u64..1000,
        ) {
            for kind in amplitude_kinds() {
                assert_fused_matches_unfused(kind, N_QUBITS, &steps, seed, TOL);
            }
        }
    }
}
