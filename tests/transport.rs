//! Multi-process transport acceptance suite.
//!
//! The socket transports run the same planner, the same kernels, in the
//! same global order as the in-process remote engine — so per seed they
//! must be *bit-identical*, not merely close: same amplitudes (as bit
//! patterns), same measurement trajectory, same command/exchange round
//! counts, with or without Pauli noise drawn along the way.
//!
//! And a worker process dying mid-run must be survivable: the controller
//! observes EOF, respawns the child, re-scatters its stripe from the last
//! checkpoint, replays the logged suffix, and the run finishes with the
//! same amplitudes as a run in which nothing died.
//!
//! Circuit driving and observable capture live in the shared conformance
//! harness (`common::conformance`); this suite only picks the pair to
//! compare: same remote backend, in-process vs unix-socket transport.
//!
//! These tests spawn real `qworker` child processes. The binary is built
//! as part of this package; its path reaches the engine through
//! `QMPI_QWORKER_BIN`.

mod common;

use common::conformance::{ensure_worker_bin, run_circuit, Outcome, Step};
use qmpi::{run_with_config, BackendKind, QmpiConfig, TransportKind};
use qsim::{BatchOp, Gate, GateBatch, NoiseModel, Pauli};

const SHARDS: usize = 2;
const N_QUBITS: usize = 4;

/// Runs `steps` single-rank on the process-separated backend over the
/// given transport and captures every observable, including the protocol
/// round counts — the schedule itself must match across transports, not
/// just its end state.
fn run_remote(transport: TransportKind, steps: &[Step], noise: NoiseModel, seed: u64) -> Outcome {
    let cfg = QmpiConfig::new()
        .seed(seed)
        .backend(BackendKind::RemoteSharded { shards: SHARDS })
        .transport(transport)
        .noise(noise);
    let (mut out, stats) = run_circuit(cfg, N_QUBITS, steps, false);
    let t = stats.expect("the remote backend always has a transport");
    if transport.is_multiprocess() {
        assert!(t.wire_bytes > 0, "socket transport must count wire bytes");
    }
    assert_eq!(t.respawns, 0, "nothing died in this run");
    out.rounds = Some((t.command_rounds, t.exchange_rounds));
    out
}

fn assert_transports_bit_identical(steps: &[Step], noise: NoiseModel, seed: u64) {
    ensure_worker_bin();
    let reference = run_remote(TransportKind::InProcess, steps, noise, seed);
    let socket = run_remote(TransportKind::UnixSocket, steps, noise, seed);
    assert_eq!(
        reference, socket,
        "unix-socket transport diverged from in-process (seed {seed})"
    );
}

/// A fixed dense circuit (Clifford + T + rotations, cross-shard traffic
/// included) lands bit-identically over the socket transport, ideal and
/// noisy, across several seeds.
#[test]
fn socket_transport_matches_in_process_bit_for_bit() {
    let steps = [
        Step::G(Gate::H, 0),
        Step::Cnot(0, 1),
        Step::G(Gate::T, 2),
        Step::G(Gate::Ry(0.3), 3),
        Step::Cnot(1, 2),
        Step::Swap(1, 3),
        Step::G(Gate::Rz(0.7), 0),
        Step::Cz(0, 3),
        Step::Cnot(2, 3),
        Step::G(Gate::H, 3),
    ];
    for seed in [1u64, 7, 42] {
        assert_transports_bit_identical(&steps, NoiseModel::ideal(), seed);
        assert_transports_bit_identical(&steps, NoiseModel::depolarizing(0.2), seed);
    }
}

/// The full QMPI protocol stack (EPR establishment, teleportation,
/// fixups, collapse) over socket workers matches in-process per seed.
#[test]
fn teleportation_over_socket_workers_matches_in_process() {
    ensure_worker_bin();
    let run = |transport: TransportKind| {
        let cfg = QmpiConfig::new()
            .seed(23)
            .backend(BackendKind::RemoteSharded { shards: SHARDS })
            .transport(transport);
        run_with_config(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.x(&q).unwrap();
                ctx.h(&q).unwrap();
                ctx.send_move(q, 1, 0).unwrap();
                0u64
            } else {
                let q = ctx.recv_move(0, 0).unwrap();
                let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                ctx.measure_and_free(q).unwrap();
                x.to_bits()
            }
        })
    };
    assert_eq!(
        run(TransportKind::InProcess),
        run(TransportKind::UnixSocket),
        "teleported observable must be bit-identical across transports"
    );
}

/// The failover acceptance test: SIGKILL a worker process mid-run, let
/// the next batched dispatch trip over the EOF, and require the run to
/// finish with amplitudes and a measurement trajectory bit-identical to
/// an undisturbed run — plus a respawn on the books.
#[test]
fn sigkilled_worker_respawns_and_finishes_bit_identically() {
    ensure_worker_bin();
    use qmpi::{RemoteShardedEngine, SimEngine};
    let run = |kill: bool| {
        let mut e = RemoteShardedEngine::over_transport(
            11,
            SHARDS,
            NoiseModel::depolarizing(0.1),
            TransportKind::UnixSocket,
        );
        let qs: Vec<_> = (0..N_QUBITS).map(|_| e.alloc()).collect();
        for &q in &qs {
            e.apply(Gate::H, q).unwrap();
        }
        for w in qs.windows(2) {
            e.cnot(w[0], w[1]).unwrap();
        }
        e.apply(Gate::T, qs[0]).unwrap();
        if kill {
            // The hardest death a shard node can die: no protocol, no
            // cleanup — the child is SIGKILLed outright.
            e.debug_kill_worker_process(SHARDS - 1);
        }
        // The next dispatch is a whole batch; its command fan-out hits
        // the dead socket, failover respawns the worker, re-scatters the
        // stripe from the checkpoint, and replays the logged suffix.
        let mut batch = GateBatch::new();
        for (i, &q) in qs.iter().enumerate() {
            batch.push(BatchOp::Gate {
                gate: Gate::Ry(0.3 + 0.1 * i as f64),
                q,
            });
        }
        batch.push(BatchOp::Cz {
            a: qs[0],
            b: qs[N_QUBITS - 1],
        });
        e.apply_batch(&batch).unwrap();
        // A measurement draws from the engine RNG: trajectory identity
        // proves replay did not re-draw or skip randomness.
        let m = e.measure(qs[1]).unwrap();
        let st = e.state_vector(&qs).unwrap();
        let amps: Vec<(u64, u64)> = (0..st.len())
            .map(|i| {
                let a = st.amplitude(i);
                (a.re.to_bits(), a.im.to_bits())
            })
            .collect();
        let stats = e.transport_stats();
        if kill {
            assert!(
                stats.respawns >= 1,
                "the SIGKILLed worker must have been respawned"
            );
        } else {
            assert_eq!(stats.respawns, 0, "undisturbed run respawns nothing");
        }
        (m, amps)
    };
    assert_eq!(
        run(false),
        run(true),
        "a run that lost a worker must finish bit-identically to one that did not"
    );
}

/// Failover through *merged* frames: two ranks' sub-streams coalesced
/// into one command round are logged as one mutating unit with the
/// per-rank segment structure intact. SIGKILL a worker after one merged
/// frame committed; the next merged dispatch trips over the EOF, failover
/// reloads the checkpoint, replays the logged merged frame verbatim
/// (segments in arrival order), retries the in-flight one — and the run
/// finishes bit-identical to an undisturbed run, noise draws included.
#[test]
fn sigkilled_worker_mid_merged_batch_replays_segments_bit_identically() {
    ensure_worker_bin();
    use qmpi::{RemoteShardedEngine, ShardableEngine, SimEngine};
    let run = |kill: bool| {
        let mut e = RemoteShardedEngine::over_transport(
            17,
            SHARDS,
            NoiseModel::depolarizing(0.1),
            TransportKind::UnixSocket,
        );
        let qs: Vec<_> = (0..N_QUBITS).map(|_| e.alloc()).collect();
        for &q in &qs {
            e.apply(Gate::H, q).unwrap();
        }
        // One "rank's" segment: a rotation plus an entangler confined to
        // its own qubit pair (the window's disjoint-ownership shape).
        let seg = |lo: usize, theta: f64| {
            let mut b = GateBatch::new();
            b.push(BatchOp::Gate {
                gate: Gate::Ry(theta),
                q: qs[lo],
            });
            b.push(BatchOp::Cnot {
                c: qs[lo],
                t: qs[lo + 1],
            });
            b
        };
        // A committed merged frame (two segments, one command round).
        e.apply_segments_concurrent(vec![(0, seg(0, 0.3)), (1, seg(2, 0.7))])
            .unwrap();
        if kill {
            e.debug_kill_worker_process(SHARDS - 1);
        }
        // This merged dispatch discovers the dead socket mid-fan-out.
        e.apply_segments_concurrent(vec![(0, seg(0, 1.1)), (1, seg(2, 0.2))])
            .unwrap();
        // Trajectory identity proves replay did not re-draw randomness.
        let m = e.measure(qs[0]).unwrap();
        let st = e.state_vector(&qs).unwrap();
        let amps: Vec<(u64, u64)> = (0..st.len())
            .map(|i| {
                let a = st.amplitude(i);
                (a.re.to_bits(), a.im.to_bits())
            })
            .collect();
        let stats = e.transport_stats();
        if kill {
            assert!(
                stats.respawns >= 1,
                "the SIGKILLed worker must have been respawned"
            );
        } else {
            assert_eq!(stats.respawns, 0, "undisturbed run respawns nothing");
        }
        (m, amps)
    };
    assert_eq!(
        run(false),
        run(true),
        "a merged batch interrupted by a worker death must replay bit-identically"
    );
}

/// Killing a worker twice (including re-killing the respawned child) is
/// still survivable: every failure epoch restarts cleanly.
#[test]
fn worker_survives_repeated_kills() {
    ensure_worker_bin();
    use qmpi::{RemoteShardedEngine, SimEngine};
    let mut e = RemoteShardedEngine::over_transport(
        5,
        SHARDS,
        NoiseModel::ideal(),
        TransportKind::UnixSocket,
    );
    let q = e.alloc();
    let p = e.alloc();
    e.apply(Gate::H, q).unwrap();
    e.cnot(q, p).unwrap();
    e.debug_kill_worker_process(0);
    e.cnot(q, p).unwrap();
    e.debug_kill_worker_process(SHARDS - 1);
    e.apply(Gate::H, q).unwrap();
    assert!(
        e.prob_one(q).unwrap() < 1e-9,
        "the self-inverse run ends in |00>"
    );
    assert!(e.prob_one(p).unwrap() < 1e-9);
    assert!(e.transport_stats().respawns >= 2);
}

mod proptests {
    use super::*;
    use crate::common::conformance::strategies::arb_steps;
    use proptest::prelude::*;

    proptest! {
        // Each case spawns worker processes; keep the default sweep small
        // (the nightly stress lane raises it via PROPTEST_CASES).
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The tentpole acceptance property: random dense circuits land
        /// bit-identically over the socket transport, ideal or noisy.
        #[test]
        fn random_circuits_bit_identical_across_transports(
            steps in arb_steps(N_QUBITS, false, 6..20),
            seed in 0u64..1000,
            p in 0.0f64..0.4,
        ) {
            assert_transports_bit_identical(&steps, NoiseModel::ideal(), seed);
            assert_transports_bit_identical(&steps, NoiseModel::depolarizing(p), seed);
        }
    }
}
