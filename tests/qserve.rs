//! Job-service behavior: pooled-vs-solo bit identity under real
//! concurrency, S-budget admission control, round-robin fairness across
//! tenants, and failure isolation.

use qmpi::{run_with_config, BackendKind, QmpiConfig, QmpiRank};
use qserve::{JobBackend, JobError, JobServer, JobSpec, ServerConfig, SubmitError};
use qsim::Pauli;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The reference workload: rank 0 prepares `Ry(theta)|0>` and teleports it
/// to rank 1, which reports the exact Z expectation (as raw bits, so
/// comparisons are bit-for-bit) and its measurement outcome.
fn teleport(theta: f64) -> impl Fn(&QmpiRank) -> (u64, bool) + Send + Sync + Clone + 'static {
    move |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.ry(&q, theta).unwrap();
            ctx.send_move(q, 1, 0).unwrap();
            (0, false)
        } else {
            let q = ctx.recv_move(0, 0).unwrap();
            let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
            let m = ctx.measure_and_free(q).unwrap();
            (z.to_bits(), m)
        }
    }
}

/// A gate jobs can block on, to pin the scheduler in a known state.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Polls `stats()` until `pred` holds (the scheduler runs in job threads,
/// so state transitions are asynchronous but fast).
fn wait_for(server: &JobServer, pred: impl Fn(&qserve::ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.stats();
        if pred(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "scheduler never reached the expected state; last stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance headline: eight tenants submit from eight threads, all
/// eight jobs provably run *concurrently* over one worker pool (a shared
/// barrier inside the jobs cannot release otherwise), and every job's
/// trajectory is bit-identical to a solo spawn-per-run execution of the
/// same seed.
#[test]
fn eight_concurrent_pooled_jobs_match_solo_runs_bit_for_bit() {
    const JOBS: usize = 8;
    let server = Arc::new(JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: JOBS,
        pool_slots: JOBS,
        pool_shards: 2,
        ..ServerConfig::default()
    }));
    let all_running = Arc::new(Barrier::new(JOBS));

    let threads: Vec<_> = (0..JOBS)
        .map(|i| {
            let server = Arc::clone(&server);
            let all_running = Arc::clone(&all_running);
            std::thread::spawn(move || {
                let seed = 100 + i as u64;
                let theta = 0.2 + 0.3 * i as f64;
                let body = teleport(theta);
                let spec = JobSpec::new(format!("tenant-{i}"), 2).seed(seed).s_limit(2);
                let handle = server
                    .submit(spec, move |ctx| {
                        if ctx.rank() == 0 {
                            // Released only once all eight jobs are live.
                            all_running.wait();
                        }
                        body(ctx)
                    })
                    .expect("within capacity");
                handle.wait().expect("job must succeed")
            })
        })
        .collect();
    let served: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    for (i, out) in served.iter().enumerate() {
        let seed = 100 + i as u64;
        let theta = 0.2 + 0.3 * i as f64;
        let cfg = QmpiConfig::new()
            .seed(seed)
            .s_limit(2)
            .backend(BackendKind::RemoteSharded { shards: 2 });
        let solo = run_with_config(2, cfg, teleport(theta));
        assert_eq!(
            out.results, solo,
            "job {i}: pooled concurrent trajectory diverged from solo run"
        );
        assert!(out.report.resources.epr_pairs >= 1);
        assert_eq!(out.report.ranks, 2);
        let transport = out
            .report
            .transport
            .expect("remote backend has a transport");
        assert!(
            transport.command_rounds > 0,
            "remote backend must report transport rounds"
        );
        assert!(
            transport.wire_bytes > 0,
            "commands serialize through the mailbox even in-process"
        );
        assert_eq!(
            transport.respawns, 0,
            "the in-process transport has no failover"
        );
    }
    // Stats update in the job threads after the result is delivered, so
    // quiesce before reading them.
    server.drain();
    assert_eq!(server.stats().finished, JOBS as u64);
    assert_eq!(server.stats().pool_available, JOBS);
}

/// The same server, but pooling real `qworker` child processes over the
/// unix-socket transport: leased process workers produce trajectories
/// bit-identical to solo in-process runs of the same seed, and the report
/// carries real wire-byte accounting.
#[test]
fn socket_pooled_jobs_match_in_process_solo_runs_bit_for_bit() {
    if std::env::var_os("QMPI_QWORKER_BIN").is_none() {
        std::env::set_var("QMPI_QWORKER_BIN", env!("CARGO_BIN_EXE_qworker"));
    }
    const JOBS: usize = 4;
    let server = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: JOBS,
        pool_slots: 2,
        pool_shards: 2,
        transport: qmpi::TransportKind::UnixSocket,
    });
    let handles: Vec<_> = (0..JOBS)
        .map(|i| {
            let spec = JobSpec::new(format!("tenant-{i}"), 2)
                .seed(300 + i as u64)
                .s_limit(2);
            server.submit(spec, teleport(0.4 + 0.2 * i as f64)).unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let out = handle.wait().expect("socket-pooled job must succeed");
        let cfg = QmpiConfig::new()
            .seed(300 + i as u64)
            .s_limit(2)
            .backend(BackendKind::RemoteSharded { shards: 2 });
        let solo = run_with_config(2, cfg, teleport(0.4 + 0.2 * i as f64));
        assert_eq!(
            out.results, solo,
            "job {i}: socket-pooled trajectory diverged from in-process solo run"
        );
        let transport = out
            .report
            .transport
            .expect("remote backend has a transport");
        assert!(transport.command_rounds > 0);
        assert!(
            transport.wire_bytes > 0,
            "socket workers must account real wire bytes"
        );
    }
    server.drain();
    assert_eq!(server.stats().finished, JOBS as u64);
    assert_eq!(server.stats().pool_available, 2);
}

/// More jobs than pool slots: the surplus queues on slot availability and
/// every job still completes correctly.
#[test]
fn pooled_storm_queues_on_slot_availability() {
    let server = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: 6,
        pool_slots: 2,
        pool_shards: 2,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let spec = JobSpec::new(format!("tenant-{}", i % 3), 2)
                .seed(7 + i as u64)
                .s_limit(2);
            server
                .submit(spec, move |ctx| {
                    if ctx.rank() == 0 {
                        let q = ctx.alloc_one();
                        ctx.x(&q).unwrap();
                        ctx.send_move(q, 1, 0).unwrap();
                        true
                    } else {
                        let q = ctx.recv_move(0, 0).unwrap();
                        ctx.measure_and_free(q).unwrap()
                    }
                })
                .unwrap()
        })
        .collect();
    for handle in handles {
        let out = handle.wait().unwrap();
        assert!(out.results[1], "teleported |1> must arrive intact");
    }
    server.drain();
    assert_eq!(server.stats().finished, 12);
    assert_eq!(server.stats().pool_available, 2);
}

/// Admission control: a job whose declared S-budget does not fit the free
/// capacity waits in its queue while smaller jobs from other tenants flow
/// past it; it runs once the budget is released.
#[test]
fn over_budget_jobs_queue_until_capacity_frees() {
    let server = JobServer::new(ServerConfig {
        s_capacity: 10,
        max_concurrent: 8,
        pool_slots: 0,
        pool_shards: 0,
        ..ServerConfig::default()
    });
    let spawn = JobBackend::Spawn(BackendKind::Trace);
    let gate = Arc::new(Gate::default());

    let g = Arc::clone(&gate);
    let a = server
        .submit(
            JobSpec::new("alice", 1).s_budget(8).backend(spawn),
            move |_ctx| g.wait(),
        )
        .unwrap();
    wait_for(&server, |s| s.running == 1 && s.used_s_budget == 8);

    // Bob declares 8 more: 8 + 8 > 10, so he must wait.
    let b_started = Arc::new(AtomicBool::new(false));
    let b_flag = Arc::clone(&b_started);
    let b = server
        .submit(
            JobSpec::new("bob", 1).s_budget(8).backend(spawn),
            move |_ctx| b_flag.store(true, Ordering::SeqCst),
        )
        .unwrap();
    wait_for(&server, |s| s.queued == 1);

    // Carol's small job fits beside Alice and is not stuck behind Bob.
    let c = server
        .submit(
            JobSpec::new("carol", 1).s_budget(2).backend(spawn),
            |_ctx| (),
        )
        .unwrap();
    c.wait().unwrap();
    assert!(
        !b_started.load(Ordering::SeqCst),
        "bob must still be queued while alice holds the budget"
    );
    assert_eq!(server.stats().queued, 1);

    gate.open();
    let a_report = a.wait().unwrap().report;
    let b_report = b.wait().unwrap().report;
    assert!(b_started.load(Ordering::SeqCst));
    assert!(a_report.dispatch_seq < b_report.dispatch_seq);
    assert!(
        b_report.queued > Duration::ZERO,
        "bob must have measurably waited"
    );
    server.drain();
    let stats = server.stats();
    assert_eq!((stats.queued, stats.running), (0, 0));
    assert_eq!(stats.used_s_budget, 0);
    assert_eq!(stats.finished, 3);
}

/// Round-robin across tenant queues: a backlog from one tenant cannot
/// starve another tenant's single job — at most one backlog job is
/// dispatched before the other tenant's queue gets its turn.
#[test]
fn round_robin_prevents_tenant_starvation() {
    let server = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: 1,
        pool_slots: 0,
        pool_shards: 0,
        ..ServerConfig::default()
    });
    let spawn = JobBackend::Spawn(BackendKind::Trace);
    let gate = Arc::new(Gate::default());

    // Alice's first job occupies the single run slot...
    let g = Arc::clone(&gate);
    let a0 = server
        .submit(JobSpec::new("alice", 1).backend(spawn), move |_ctx| {
            g.wait()
        })
        .unwrap();
    wait_for(&server, |s| s.running == 1);

    // ...then she piles up a backlog, and bob submits one job after it.
    let backlog: Vec<_> = (0..3)
        .map(|_| {
            server
                .submit(JobSpec::new("alice", 1).backend(spawn), |_ctx| ())
                .unwrap()
        })
        .collect();
    let bob = server
        .submit(JobSpec::new("bob", 1).backend(spawn), |_ctx| ())
        .unwrap();
    wait_for(&server, |s| s.queued == 4);

    gate.open();
    a0.wait().unwrap();
    let bob_seq = bob.wait().unwrap().report.dispatch_seq;
    let backlog_seqs: Vec<u64> = backlog
        .into_iter()
        .map(|h| h.wait().unwrap().report.dispatch_seq)
        .collect();
    let jumped_ahead_of_bob = backlog_seqs.iter().filter(|&&s| s < bob_seq).count();
    assert!(
        jumped_ahead_of_bob <= 1,
        "round-robin must bound bob's wait to one alice backlog job, \
         got alice seqs {backlog_seqs:?} vs bob {bob_seq}"
    );
}

/// A panicking job is reported as failed; the server (and its accounting)
/// keeps serving other tenants.
#[test]
fn panicking_job_is_isolated_and_reported() {
    let server = JobServer::new(ServerConfig {
        s_capacity: 16,
        max_concurrent: 2,
        pool_slots: 0,
        pool_shards: 0,
        ..ServerConfig::default()
    });
    let spawn = JobBackend::Spawn(BackendKind::Trace);

    let bad = server
        .submit::<(), _>(JobSpec::new("mallory", 1).backend(spawn), |_ctx| {
            panic!("tenant bug")
        })
        .unwrap();
    match bad.wait() {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("tenant bug"), "{msg}"),
        Err(other) => panic!("expected a panic report, got {other}"),
        Ok(_) => panic!("expected a panic report, job succeeded"),
    }

    let ok = server
        .submit(JobSpec::new("alice", 1).backend(spawn), |_ctx| 42u8)
        .unwrap();
    assert_eq!(ok.wait().unwrap().results, vec![42]);
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.finished, 2);
    assert_eq!(stats.used_s_budget, 0);
}

/// Submissions that could never run are rejected up front, not queued
/// forever.
#[test]
fn impossible_submissions_are_rejected() {
    let server = JobServer::new(ServerConfig {
        s_capacity: 10,
        max_concurrent: 2,
        pool_slots: 0,
        pool_shards: 0,
        ..ServerConfig::default()
    });
    let err = server
        .submit(JobSpec::new("alice", 1).s_budget(11), |_ctx| ())
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::BudgetExceedsCapacity {
            declared: 11,
            capacity: 10
        }
    );
    // This server has no pool, and Pooled is the default backend.
    let err = server
        .submit(JobSpec::new("alice", 1).s_budget(4), |_ctx| ())
        .unwrap_err();
    assert_eq!(err, SubmitError::NoPool);
    let err = server
        .submit(
            JobSpec::new("alice", 0).backend(JobBackend::Spawn(BackendKind::Trace)),
            |_ctx| (),
        )
        .unwrap_err();
    assert_eq!(err, SubmitError::NoRanks);
    assert_eq!(server.stats().finished, 0);
}
