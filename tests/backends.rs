//! Backend-parameterized protocol suite.
//!
//! The same QMPI protocol code must produce the same *observable* results on
//! every amplitude-tracking backend (the individual fixup bits may differ —
//! they are random — but the delivered values, parities, and resource
//! consumption are protocol invariants). The trace backend must reproduce
//! the resource consumption alone, at scales only it and the stabilizer
//! engine can reach.
//!
//! CI runs this suite once per [`BackendKind`] via the `QMPI_TEST_BACKEND`
//! environment variable (`statevector`, `stabilizer`, `trace`, `sparse`,
//! `sharded`, `remote`; `QMPI_TEST_SHARDS` overrides the stripe/worker
//! count — default
//! 8 for the lock-striped engine, 4 for the process-separated one), so a
//! regression in one engine cannot hide behind another engine's pass.
//! `QMPI_TEST_TRANSPORT=unix-socket` additionally moves the remote
//! backend's workers into real `qworker` child processes, re-proving every
//! protocol invariant across an OS boundary. Without the variables, every
//! backend runs in-process.

use qmpi::{run_with_config, BackendKind, Parity, QmpiConfig, ResourceSnapshot, TransportKind};
use qsim::Pauli;

/// The backend selected by `QMPI_TEST_BACKEND`, if any.
fn env_kind() -> Option<BackendKind> {
    let v = std::env::var("QMPI_TEST_BACKEND").ok()?;
    let shards = |default: usize| {
        std::env::var("QMPI_TEST_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    Some(match v.to_lowercase().replace('_', "-").as_str() {
        "statevector" | "state-vector" => BackendKind::StateVector,
        "stabilizer" => BackendKind::Stabilizer,
        "trace" => BackendKind::Trace,
        "sparse" => BackendKind::Sparse,
        "sharded" | "sharded-state-vector" => BackendKind::ShardedStateVector { shards: shards(8) },
        "remote" | "remote-sharded" => BackendKind::RemoteSharded { shards: shards(4) },
        other => panic!(
            "unknown QMPI_TEST_BACKEND '{other}' \
             (expected statevector|stabilizer|trace|sparse|sharded|remote)"
        ),
    })
}

/// All backends under test this run.
fn selected_kinds() -> Vec<BackendKind> {
    match env_kind() {
        Some(kind) => vec![kind],
        None => vec![
            BackendKind::StateVector,
            BackendKind::Stabilizer,
            BackendKind::Sparse,
            BackendKind::ShardedStateVector { shards: 8 },
            BackendKind::RemoteSharded { shards: 4 },
            BackendKind::Trace,
        ],
    }
}

/// Whether `kind` tracks real quantum state (trace only counts).
fn is_stateful(kind: BackendKind) -> bool {
    kind != BackendKind::Trace
}

/// The selected backends that track real quantum state.
fn stateful_kinds() -> Vec<BackendKind> {
    selected_kinds()
        .into_iter()
        .filter(|&k| is_stateful(k))
        .collect()
}

/// Whether `kind` is part of this run (for tests pinned to one engine).
fn kind_selected(kind: BackendKind) -> bool {
    selected_kinds().contains(&kind)
}

/// The shard-worker transport selected by `QMPI_TEST_TRANSPORT`, if any.
/// Multi-process transports need the `qworker` binary; this suite is part
/// of the package that builds it, so point the engine at it directly.
fn env_transport() -> TransportKind {
    let Ok(v) = std::env::var("QMPI_TEST_TRANSPORT") else {
        return TransportKind::InProcess;
    };
    let transport =
        TransportKind::parse(&v).unwrap_or_else(|| panic!("unknown QMPI_TEST_TRANSPORT '{v}'"));
    if transport.is_multiprocess() && std::env::var_os("QMPI_QWORKER_BIN").is_none() {
        std::env::set_var("QMPI_QWORKER_BIN", env!("CARGO_BIN_EXE_qworker"));
    }
    transport
}

fn cfg(kind: BackendKind, seed: u64) -> QmpiConfig {
    QmpiConfig::new()
        .seed(seed)
        .backend(kind)
        .transport(env_transport())
}

/// Teleportation chain 0 -> 1 -> 2 of a basis state: the delivered value
/// (stateful engines) and the resource bill (every engine) must be
/// identical on each backend under test.
#[test]
fn teleportation_chain_identical_across_backends() {
    for input in [false, true] {
        let mut per_backend: Vec<(BackendKind, bool, ResourceSnapshot)> = Vec::new();
        for kind in selected_kinds() {
            let out = run_with_config(3, cfg(kind, 7), move |ctx| {
                let (delta, delivered) = ctx.measure_resources(|| match ctx.rank() {
                    0 => {
                        let q = ctx.alloc_one();
                        if input {
                            ctx.x(&q).unwrap();
                        }
                        ctx.send_move(q, 1, 0).unwrap();
                        false
                    }
                    1 => {
                        let q = ctx.recv_move(0, 0).unwrap();
                        ctx.send_move(q, 2, 1).unwrap();
                        false
                    }
                    _ => {
                        let q = ctx.recv_move(1, 1).unwrap();
                        ctx.measure_and_free(q).unwrap()
                    }
                });
                (delivered, delta)
            });
            per_backend.push((kind, out[2].0, out[0].1));
        }
        for &(kind, delivered, bill) in &per_backend {
            if is_stateful(kind) {
                assert_eq!(delivered, input, "{kind}: must deliver the input");
            }
            assert_eq!(bill.epr_pairs, 2, "{kind}: two hops, one pair each");
            assert_eq!(bill.classical_bits, 4, "{kind}: two 2-bit fixup messages");
        }
        for w in per_backend.windows(2) {
            assert_eq!(
                w[0].2, w[1].2,
                "{} and {} must consume identical resources",
                w[0].0, w[1].0
            );
        }
    }
}

/// Entangled copy + uncopy of a basis state: the copy's observed value, the
/// original's survival, and the Table 1 costs agree across backends.
#[test]
fn copy_uncopy_identical_across_backends() {
    for input in [false, true] {
        let mut results = Vec::new();
        for kind in stateful_kinds() {
            let out = run_with_config(2, cfg(kind, 21), move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    if input {
                        ctx.x(&q).unwrap();
                    }
                    ctx.send(&q, 1, 0).unwrap();
                    ctx.unsend(&q, 1, 0).unwrap();
                    let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                    let survived = ctx.measure_and_free(q).unwrap();
                    (false, z, survived)
                } else {
                    let copy = ctx.recv(0, 0).unwrap();
                    let seen = ctx.measure(&copy).unwrap();
                    ctx.unrecv(copy, 0, 0).unwrap();
                    (seen, 0.0, false)
                }
            });
            results.push((kind, (out[1].0, out[0].1, out[0].2)));
        }
        let z_expect = if input { -1.0 } else { 1.0 };
        for &(kind, (seen, z, survived)) in &results {
            assert_eq!(seen, input, "{kind}: copy carries the sender's value");
            assert!(
                (z - z_expect).abs() < 1e-9,
                "{kind}: uncopy restores the original"
            );
            assert_eq!(survived, input, "{kind}: original survives with its value");
        }
        for w in results.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{} and {} must agree on copy value and restored state",
                w[0].0, w[1].0
            );
        }
    }
}

/// Parity reduction with inverse: the root's parity matches the classical
/// XOR on every stateful backend, and scratch uncomputation verifies.
#[test]
fn parity_reduce_identical_across_backends() {
    let patterns: [&[bool]; 3] = [
        &[true, false, true, true],
        &[false, false, false],
        &[true, true, true, true, true],
    ];
    for bits in patterns {
        let bits_owned: Vec<bool> = bits.to_vec();
        let expect = bits_owned.iter().fold(false, |a, &b| a ^ b);
        for kind in stateful_kinds() {
            let bits_arc = std::sync::Arc::new(bits_owned.clone());
            let out = run_with_config(bits_owned.len(), cfg(kind, 4), move |ctx| {
                let q = ctx.alloc_one();
                if bits_arc[ctx.rank()] {
                    ctx.x(&q).unwrap();
                }
                let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
                let parity = result
                    .as_ref()
                    .map(|r| ctx.expectation(&[(r, Pauli::Z)]).unwrap() < 0.0);
                ctx.unreduce(&q, result, handle, &Parity).unwrap();
                // free_qmem doubles as the |0>-scratch self-check.
                let restored = ctx.measure_and_free(q).unwrap();
                (parity, restored)
            });
            assert_eq!(
                out[0],
                (Some(expect), bits_owned[0]),
                "{kind}: root parity = classical XOR, inputs restored"
            );
        }
    }
}

/// The acceptance benchmark: a 64-rank cat-state broadcast — far beyond any
/// state vector — completes on the stabilizer backend in well under five
/// seconds, all shares agree, and the X-basis disband parity check passes.
#[test]
fn stabilizer_runs_64_rank_cat_broadcast_fast() {
    if !kind_selected(BackendKind::Stabilizer) {
        return;
    }
    let n = 64;
    let start = std::time::Instant::now();
    let out = run_with_config(n, cfg(BackendKind::Stabilizer, 64), |ctx| {
        // First establishment: measure in Z — every share must agree.
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        let m0: bool = ctx
            .classical()
            .bcast(if ctx.rank() == 0 { Some(m) } else { None }, 0);
        // Second establishment: the collective X-parity disband check must
        // certify a pure cat state.
        let share = ctx.cat_establish().unwrap();
        let disband_ok = ctx.cat_disband(share).is_ok();
        m == m0 && disband_ok
    });
    let elapsed = start.elapsed();
    assert!(
        out.iter().all(|&ok| ok),
        "all 64 GHZ shares agree and disband cleanly"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "64-rank cat broadcast took {elapsed:?}, budget is 5s"
    );
}

/// A GHZ fanout across 96 ranks on the stabilizer backend — a scale at
/// which the dense engine would need a 2^96-amplitude vector.
#[test]
fn stabilizer_scales_to_96_rank_ghz() {
    if !kind_selected(BackendKind::Stabilizer) {
        return;
    }
    let n = 96;
    let out = run_with_config(n, cfg(BackendKind::Stabilizer, 5), |ctx| {
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        m
    });
    assert!(
        out.iter().all(|&m| m == out[0]),
        "96-rank GHZ shares must agree"
    );
}

/// The sharded backend runs the full cat-state protocol (establish, agree,
/// disband) at 8 ranks — 14+ simulator qubits striped over 8 locks — with
/// the batched single-acquisition EPR establishment underneath.
#[test]
fn sharded_runs_cat_broadcast_with_batched_establishment() {
    // Match on the variant, not an exact shard count, so the documented
    // QMPI_TEST_SHARDS knob changes this test's stripe count instead of
    // silently skipping it.
    let kind = match env_kind() {
        Some(k @ BackendKind::ShardedStateVector { .. }) => k,
        Some(_) => return,
        None => BackendKind::ShardedStateVector { shards: 8 },
    };
    let out = run_with_config(8, cfg(kind, 13), |ctx| {
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        let share = ctx.cat_establish().unwrap();
        let disband_ok = ctx.cat_disband(share).is_ok();
        (m, disband_ok)
    });
    assert!(
        out.iter().all(|&(m, _)| m == out[0].0),
        "GHZ shares must agree"
    );
    assert!(out.iter().all(|&(_, ok)| ok), "disband check must pass");
}

/// The process-separated engine runs the full cat-state protocol
/// (establish, agree, disband) at 4 ranks: every amplitude lives in a shard
/// worker and every gate, EPR establishment, and measurement crosses the
/// shard boundary as `cmpi` messages. A hung worker would trip the
/// engine's deadlock watchdog rather than stall this test forever.
#[test]
fn remote_runs_cat_broadcast_over_message_passing_shards() {
    // Match on the variant so QMPI_TEST_SHARDS changes the worker count
    // instead of silently skipping the test.
    let kind = match env_kind() {
        Some(k @ BackendKind::RemoteSharded { .. }) => k,
        Some(_) => return,
        None => BackendKind::RemoteSharded { shards: 4 },
    };
    let out = run_with_config(4, cfg(kind, 17), |ctx| {
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        let share = ctx.cat_establish().unwrap();
        let disband_ok = ctx.cat_disband(share).is_ok();
        (m, disband_ok)
    });
    assert!(
        out.iter().all(|&(m, _)| m == out[0].0),
        "GHZ shares must agree"
    );
    assert!(out.iter().all(|&(_, ok)| ok), "disband check must pass");
}

/// Table 3 via the trace backend at paper scale: the cat-state broadcast on
/// 64 ranks costs N−1 EPR pairs in 2 establishment rounds with
/// (N−2) + (N−1) protocol bits, and the binomial tree costs N−1 pairs,
/// N−1 bits in ⌈log₂N⌉ rounds. The trace engine also reports the gate and
/// memory high-water profile no dense engine could measure at this size.
#[test]
fn trace_backend_reproduces_table3_formulas_at_64_ranks() {
    if !kind_selected(BackendKind::Trace) {
        return;
    }
    use qmpi::BcastAlgorithm;
    let n = 64;
    for (algo, bits, rounds) in [
        (
            BcastAlgorithm::CatState,
            (n as u64 - 2) + (n as u64 - 1),
            2u64,
        ),
        (BcastAlgorithm::BinomialTree, n as u64 - 1, 6),
    ] {
        let out = run_with_config(n, cfg(BackendKind::Trace, 0), move |ctx| {
            let (delta, q) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.bcast_with(algo, Some(&q), 0).unwrap();
                    q
                } else {
                    ctx.bcast_with(algo, None, 0).unwrap().unwrap()
                }
            });
            ctx.measure_and_free(q).unwrap();
            // Let every rank finish freeing before reading global counts.
            ctx.barrier();
            (delta, ctx.backend().counts())
        });
        let delta = out[0].0;
        assert_eq!(
            delta.epr_pairs,
            n as u64 - 1,
            "{algo:?}: N-1 EPR pairs (Table 3)"
        );
        assert_eq!(
            delta.classical_bits, bits,
            "{algo:?}: protocol bits (Table 3)"
        );
        assert_eq!(
            delta.epr_rounds, rounds,
            "{algo:?}: establishment rounds (Section 7.1)"
        );
        let counts = out[0].1;
        assert!(counts.gates > 0 && counts.max_live_qubits >= n as u64);
        assert_eq!(counts.live_qubits, 0, "everything measured away");
    }
}

/// Every backend under test agrees on the resource ledger for a mixed
/// collective workload, and the bill matches the closed form.
#[test]
fn resource_ledger_is_backend_invariant() {
    let n = 5;
    let mut bills = Vec::new();
    for kind in selected_kinds() {
        let out = run_with_config(n, cfg(kind, 3), |ctx| {
            let (delta, q) = ctx.measure_resources(|| {
                let q = ctx.alloc_one();
                if ctx.rank() == 2 {
                    ctx.x(&q).unwrap();
                }
                let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
                ctx.unreduce(&q, result, handle, &Parity).unwrap();
                let share = ctx.cat_establish().unwrap();
                ctx.measure_and_free(share).unwrap();
                ctx.ledger().buffer_dec(ctx.rank());
                q
            });
            ctx.measure_and_free(q).unwrap();
            delta
        });
        bills.push((kind, out[0]));
    }
    for &(kind, bill) in &bills {
        assert_eq!(
            bill.epr_pairs,
            2 * (n as u64 - 1),
            "{kind}: reduce + cat establishment"
        );
    }
    for w in bills.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{} bill must match {}", w[1].0, w[0].0);
    }
}

/// Non-Clifford workloads fail loudly (not silently wrong) on the
/// stabilizer backend, and the state-vector backend remains the default.
#[test]
fn non_clifford_rejected_on_stabilizer_only() {
    assert_eq!(QmpiConfig::new().backend_kind(), BackendKind::StateVector);
    if kind_selected(BackendKind::Stabilizer) {
        let out = run_with_config(1, cfg(BackendKind::Stabilizer, 1), |ctx| {
            let q = ctx.alloc_one();
            let err = ctx.t(&q).unwrap_err();
            ctx.measure_and_free(q).unwrap();
            matches!(err, qmpi::QmpiError::Sim(qsim::SimError::Unsupported(_)))
        });
        assert!(out[0]);
    }
    for kind in stateful_kinds() {
        if kind == BackendKind::Stabilizer {
            continue;
        }
        let out = run_with_config(1, cfg(kind, 1), move |ctx| {
            let q = ctx.alloc_one();
            let ok = ctx.t(&q).is_ok();
            ctx.measure_and_free(q).unwrap();
            ok
        });
        assert!(out[0], "{kind}: dense backends support T");
    }
}
