//! Backend-parameterized protocol suite.
//!
//! The same QMPI protocol code must produce the same *observable* results on
//! the state-vector and stabilizer backends (the individual fixup bits may
//! differ — they are random — but the delivered values, parities, and
//! resource consumption are protocol invariants). The trace backend must
//! reproduce the resource consumption alone, at scales only it and the
//! stabilizer engine can reach.

use qmpi::{run_with_config, BackendKind, Parity, QmpiConfig, ResourceSnapshot};
use qsim::Pauli;

/// The two backends that track real quantum state.
const STATEFUL: [BackendKind; 2] = [BackendKind::StateVector, BackendKind::Stabilizer];

fn cfg(kind: BackendKind, seed: u64) -> QmpiConfig {
    QmpiConfig::new().seed(seed).backend(kind)
}

/// Teleportation chain 0 -> 1 -> 2 of a basis state: the delivered value and
/// the resource bill must be identical on every stateful backend.
#[test]
fn teleportation_chain_identical_across_backends() {
    for input in [false, true] {
        let mut per_backend: Vec<(bool, ResourceSnapshot)> = Vec::new();
        for kind in STATEFUL {
            let out = run_with_config(3, cfg(kind, 7), move |ctx| {
                let (delta, delivered) = ctx.measure_resources(|| match ctx.rank() {
                    0 => {
                        let q = ctx.alloc_one();
                        if input {
                            ctx.x(&q).unwrap();
                        }
                        ctx.send_move(q, 1, 0).unwrap();
                        false
                    }
                    1 => {
                        let q = ctx.recv_move(0, 0).unwrap();
                        ctx.send_move(q, 2, 1).unwrap();
                        false
                    }
                    _ => {
                        let q = ctx.recv_move(1, 1).unwrap();
                        ctx.measure_and_free(q).unwrap()
                    }
                });
                (delivered, delta)
            });
            per_backend.push((out[2].0, out[0].1));
        }
        let (sv, stab) = (per_backend[0], per_backend[1]);
        assert_eq!(sv.0, input, "state vector delivers the input");
        assert_eq!(sv.0, stab.0, "backends must deliver the same value");
        assert_eq!(sv.1, stab.1, "backends must consume identical resources");
        assert_eq!(sv.1.epr_pairs, 2, "two hops, one pair each");
        assert_eq!(sv.1.classical_bits, 4, "two 2-bit fixup messages");
    }
}

/// Entangled copy + uncopy of a basis state: the copy's observed value, the
/// original's survival, and the Table 1 costs agree across backends.
#[test]
fn copy_uncopy_identical_across_backends() {
    for input in [false, true] {
        let mut results = Vec::new();
        for kind in STATEFUL {
            let out = run_with_config(2, cfg(kind, 21), move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    if input {
                        ctx.x(&q).unwrap();
                    }
                    ctx.send(&q, 1, 0).unwrap();
                    ctx.unsend(&q, 1, 0).unwrap();
                    let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                    let survived = ctx.measure_and_free(q).unwrap();
                    (false, z, survived)
                } else {
                    let copy = ctx.recv(0, 0).unwrap();
                    let seen = ctx.measure(&copy).unwrap();
                    ctx.unrecv(copy, 0, 0).unwrap();
                    (seen, 0.0, false)
                }
            });
            results.push((out[1].0, out[0].1, out[0].2));
        }
        let (sv, stab) = (results[0], results[1]);
        assert_eq!(sv.0, input, "copy carries the sender's value");
        assert_eq!(
            sv, stab,
            "backends must agree on copy value and restored state"
        );
        let z_expect = if input { -1.0 } else { 1.0 };
        assert!(
            (sv.1 - z_expect).abs() < 1e-9,
            "uncopy restores the original"
        );
    }
}

/// Parity reduction with inverse: the root's parity matches the classical
/// XOR on every stateful backend, and scratch uncomputation verifies.
#[test]
fn parity_reduce_identical_across_backends() {
    let patterns: [&[bool]; 3] = [
        &[true, false, true, true],
        &[false, false, false],
        &[true, true, true, true, true],
    ];
    for bits in patterns {
        let bits_owned: Vec<bool> = bits.to_vec();
        let expect = bits_owned.iter().fold(false, |a, &b| a ^ b);
        let mut per_backend = Vec::new();
        for kind in STATEFUL {
            let bits_arc = std::sync::Arc::new(bits_owned.clone());
            let out = run_with_config(bits_owned.len(), cfg(kind, 4), move |ctx| {
                let q = ctx.alloc_one();
                if bits_arc[ctx.rank()] {
                    ctx.x(&q).unwrap();
                }
                let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
                let parity = result
                    .as_ref()
                    .map(|r| ctx.expectation(&[(r, Pauli::Z)]).unwrap() < 0.0);
                ctx.unreduce(&q, result, handle, &Parity).unwrap();
                // free_qmem doubles as the |0>-scratch self-check.
                let restored = ctx.measure_and_free(q).unwrap();
                (parity, restored)
            });
            per_backend.push(out[0]);
        }
        assert_eq!(
            per_backend[0].0,
            Some(expect),
            "root parity = classical XOR"
        );
        assert_eq!(
            per_backend[0], per_backend[1],
            "backends agree on parity and inputs"
        );
    }
}

/// The acceptance benchmark: a 64-rank cat-state broadcast — far beyond any
/// state vector — completes on the stabilizer backend in well under five
/// seconds, all shares agree, and the X-basis disband parity check passes.
#[test]
fn stabilizer_runs_64_rank_cat_broadcast_fast() {
    let n = 64;
    let start = std::time::Instant::now();
    let out = run_with_config(n, cfg(BackendKind::Stabilizer, 64), |ctx| {
        // First establishment: measure in Z — every share must agree.
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        let m0: bool = ctx
            .classical()
            .bcast(if ctx.rank() == 0 { Some(m) } else { None }, 0);
        // Second establishment: the collective X-parity disband check must
        // certify a pure cat state.
        let share = ctx.cat_establish().unwrap();
        let disband_ok = ctx.cat_disband(share).is_ok();
        m == m0 && disband_ok
    });
    let elapsed = start.elapsed();
    assert!(
        out.iter().all(|&ok| ok),
        "all 64 GHZ shares agree and disband cleanly"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "64-rank cat broadcast took {elapsed:?}, budget is 5s"
    );
}

/// A GHZ fanout across 96 ranks on the stabilizer backend — a scale at
/// which the dense engine would need a 2^96-amplitude vector.
#[test]
fn stabilizer_scales_to_96_rank_ghz() {
    let n = 96;
    let out = run_with_config(n, cfg(BackendKind::Stabilizer, 5), |ctx| {
        let share = ctx.cat_establish().unwrap();
        ctx.barrier();
        let m = ctx.measure(&share).unwrap();
        ctx.measure_and_free(share).unwrap();
        m
    });
    assert!(
        out.iter().all(|&m| m == out[0]),
        "96-rank GHZ shares must agree"
    );
}

/// Table 3 via the trace backend at paper scale: the cat-state broadcast on
/// 64 ranks costs N−1 EPR pairs in 2 establishment rounds with
/// (N−2) + (N−1) protocol bits, and the binomial tree costs N−1 pairs,
/// N−1 bits in ⌈log₂N⌉ rounds. The trace engine also reports the gate and
/// memory high-water profile no dense engine could measure at this size.
#[test]
fn trace_backend_reproduces_table3_formulas_at_64_ranks() {
    use qmpi::BcastAlgorithm;
    let n = 64;
    for (algo, bits, rounds) in [
        (
            BcastAlgorithm::CatState,
            (n as u64 - 2) + (n as u64 - 1),
            2u64,
        ),
        (BcastAlgorithm::BinomialTree, n as u64 - 1, 6),
    ] {
        let out = run_with_config(n, cfg(BackendKind::Trace, 0), move |ctx| {
            let (delta, q) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.bcast_with(algo, Some(&q), 0).unwrap();
                    q
                } else {
                    ctx.bcast_with(algo, None, 0).unwrap().unwrap()
                }
            });
            ctx.measure_and_free(q).unwrap();
            // Let every rank finish freeing before reading global counts.
            ctx.barrier();
            (delta, ctx.backend().counts())
        });
        let delta = out[0].0;
        assert_eq!(
            delta.epr_pairs,
            n as u64 - 1,
            "{algo:?}: N-1 EPR pairs (Table 3)"
        );
        assert_eq!(
            delta.classical_bits, bits,
            "{algo:?}: protocol bits (Table 3)"
        );
        assert_eq!(
            delta.epr_rounds, rounds,
            "{algo:?}: establishment rounds (Section 7.1)"
        );
        let counts = out[0].1;
        assert!(counts.gates > 0 && counts.max_live_qubits >= n as u64);
        assert_eq!(counts.live_qubits, 0, "everything measured away");
    }
}

/// The stabilizer and trace backends agree with the state vector on the
/// resource ledger for every collective, at a size all three can run.
#[test]
fn resource_ledger_is_backend_invariant() {
    let n = 5;
    let all = [
        BackendKind::StateVector,
        BackendKind::Stabilizer,
        BackendKind::Trace,
    ];
    let mut bills = Vec::new();
    for kind in all {
        let out = run_with_config(n, cfg(kind, 3), |ctx| {
            let (delta, q) = ctx.measure_resources(|| {
                let q = ctx.alloc_one();
                if ctx.rank() == 2 {
                    ctx.x(&q).unwrap();
                }
                let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
                ctx.unreduce(&q, result, handle, &Parity).unwrap();
                let share = ctx.cat_establish().unwrap();
                ctx.measure_and_free(share).unwrap();
                ctx.ledger().buffer_dec(ctx.rank());
                q
            });
            ctx.measure_and_free(q).unwrap();
            delta
        });
        bills.push(out[0]);
    }
    assert_eq!(bills[0], bills[1], "stabilizer bill matches state vector");
    assert_eq!(bills[0], bills[2], "trace bill matches state vector");
    assert_eq!(
        bills[0].epr_pairs,
        2 * (n as u64 - 1),
        "reduce + cat establishment"
    );
}

/// Non-Clifford workloads fail loudly (not silently wrong) on the
/// stabilizer backend, and the state-vector backend remains the default.
#[test]
fn non_clifford_rejected_on_stabilizer_only() {
    assert_eq!(QmpiConfig::new().backend_kind(), BackendKind::StateVector);
    let out = run_with_config(1, cfg(BackendKind::Stabilizer, 1), |ctx| {
        let q = ctx.alloc_one();
        let err = ctx.t(&q).unwrap_err();
        ctx.measure_and_free(q).unwrap();
        matches!(err, qmpi::QmpiError::Sim(qsim::SimError::Unsupported(_)))
    });
    assert!(out[0]);
    let out = run_with_config(1, QmpiConfig::new().seed(1), |ctx| {
        let q = ctx.alloc_one();
        let ok = ctx.t(&q).is_ok();
        ctx.measure_and_free(q).unwrap();
        ok
    });
    assert!(out[0], "the default state-vector backend supports T");
}
