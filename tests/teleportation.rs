//! Cross-crate integration: the Fig. 3 protocols (fanout, unfanout,
//! teleportation) executed on the full stack — QMPI ranks over the
//! classical substrate over the shared simulator — verified against dense
//! single-process references at the state-vector level.

use qmpi::{run_with_config, QmpiConfig};
use qsim::{Gate, QubitId, Simulator};

fn prepared_reference(theta: f64, phi: f64) -> qsim::State {
    let mut sim = Simulator::new(0);
    let q = sim.alloc();
    sim.apply(Gate::Ry(theta), q).unwrap();
    sim.apply(Gate::Rz(phi), q).unwrap();
    sim.state_vector(&[q]).unwrap()
}

#[test]
fn teleportation_chain_across_three_ranks() {
    // 0 -> 1 -> 2: two hops preserve the state exactly.
    let (theta, phi) = (0.9, -1.3);
    let out = run_with_config(3, QmpiConfig::new().seed(5), move |ctx| match ctx.rank() {
        0 => {
            let q = ctx.alloc_one();
            ctx.ry(&q, theta).unwrap();
            ctx.rz(&q, phi).unwrap();
            ctx.send_move(q, 1, 0).unwrap();
            1.0
        }
        1 => {
            let q = ctx.recv_move(0, 0).unwrap();
            ctx.send_move(q, 2, 1).unwrap();
            1.0
        }
        _ => {
            let q = ctx.recv_move(1, 1).unwrap();
            let state = ctx.backend().state_vector(&[q.id()]).unwrap();
            let f = state.fidelity(&prepared_reference(theta, phi));
            ctx.measure_and_free(q).unwrap();
            f
        }
    });
    assert!(
        (out[2] - 1.0).abs() < 1e-9,
        "fidelity after two hops: {}",
        out[2]
    );
}

#[test]
fn fanout_exposes_value_on_three_ranks_simultaneously() {
    // Section 3's "entangled copy" mode: a basis value fanned out to all
    // ranks is observed identically everywhere.
    let out = run_with_config(3, QmpiConfig::new().seed(8), |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.x(&q).unwrap();
            ctx.send(&q, 1, 0).unwrap();
            ctx.send(&q, 2, 0).unwrap();
            ctx.barrier();

            ctx.measure_and_free(q).unwrap()
        } else {
            let copy = ctx.recv(0, 0).unwrap();
            ctx.barrier();
            ctx.measure_and_free(copy).unwrap()
        }
    });
    assert_eq!(out, vec![true, true, true]);
}

#[test]
fn teleportation_resource_totals_scale_linearly() {
    // Moving m qubits costs exactly m EPR pairs and 2m bits (Table 1).
    let m = 5;
    let out = run_with_config(2, QmpiConfig::new().seed(3), move |ctx| {
        let (delta, ()) = ctx.measure_resources(|| {
            if ctx.rank() == 0 {
                for i in 0..m {
                    let q = ctx.alloc_one();
                    ctx.ry(&q, 0.1 * i as f64).unwrap();
                    ctx.send_move(q, 1, i as u16).unwrap();
                }
            } else {
                for i in 0..m {
                    let q = ctx.recv_move(0, i as u16).unwrap();
                    ctx.measure_and_free(q).unwrap();
                }
            }
        });
        delta
    });
    assert_eq!(out[0].epr_pairs, m as u64);
    assert_eq!(out[0].classical_bits, 2 * m as u64);
}

#[test]
fn s_limit_one_forces_serialized_moves() {
    // With S = 1, issuing two concurrent EPR preparations on one rank is
    // rejected, but strictly serialized teleports still work.
    let cfg = QmpiConfig::new().seed(1).s_limit(1);
    let out = run_with_config(2, cfg, |ctx| {
        if ctx.rank() == 0 {
            let a = ctx.alloc_one();
            let b = ctx.alloc_one();
            ctx.x(&b).unwrap();
            ctx.send_move(a, 1, 0).unwrap();
            ctx.send_move(b, 1, 1).unwrap();
            (false, false)
        } else {
            let a = ctx.recv_move(0, 0).unwrap();
            let b = ctx.recv_move(0, 1).unwrap();
            let ma = ctx.measure_and_free(a).unwrap();
            let mb = ctx.measure_and_free(b).unwrap();
            (ma, mb)
        }
    });
    assert_eq!(out[1], (false, true));
}

#[test]
fn locality_is_enforced_end_to_end() {
    // The backend rejects a gate on a qubit owned by another rank even when
    // the raw id is known — the error carries the ownership facts.
    let out = run_with_config(2, QmpiConfig::new().seed(2), |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.classical().send(&q.id().0, 1, 0);
            let (_, _) = ctx.classical().recv::<bool>(1, 1);
            ctx.free_qmem(q).unwrap();
            true
        } else {
            let (raw, _) = ctx.classical().recv::<u64>(0, 0);
            // Forge a backend-level access: must be refused.
            let err = ctx
                .backend()
                .apply(1, qsim::Gate::X, qsim::QubitId(raw))
                .unwrap_err();
            let ok = matches!(
                err,
                qmpi::QmpiError::Locality {
                    owner: 0,
                    acting: 1,
                    ..
                }
            );
            ctx.classical().send(&ok, 0, 1);
            ok
        }
    });
    assert!(out[1]);
}

#[test]
fn ghz_built_from_pairwise_sends_matches_cat_collective() {
    // Building α|000>+β|111> via two sends equals the cat-state collective
    // up to the protocol used — verify via full-state snapshot.
    let out = run_with_config(3, QmpiConfig::new().seed(21), |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            ctx.send(&q, 1, 0).unwrap();
            ctx.send(&q, 2, 0).unwrap();
            ctx.barrier();
            let ids = [q.id()];
            let gathered = ctx
                .classical()
                .gather(&ids.iter().map(|i| i.0).collect::<Vec<_>>(), 0);
            let all: Vec<QubitId> = gathered
                .unwrap()
                .into_iter()
                .flatten()
                .map(QubitId)
                .collect();
            let st = ctx.backend().state_vector(&all).unwrap();
            let p000 = st.probability(0);
            let p111 = st.probability(7);
            ctx.barrier();
            ctx.measure_and_free(q).unwrap();
            (p000, p111)
        } else {
            let copy = ctx.recv(0, 0).unwrap();
            ctx.barrier();
            let ids: Vec<u64> = vec![copy.id().0];
            ctx.classical().gather(&ids, 0);
            ctx.barrier();
            ctx.measure_and_free(copy).unwrap();
            (0.0, 0.0)
        }
    });
    assert!((out[0].0 - 0.5).abs() < 1e-9);
    assert!((out[0].1 - 0.5).abs() < 1e-9);
}
