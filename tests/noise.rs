//! Noisy-execution suite: the acceptance criteria of the noise subsystem.
//!
//! * A zero-rate model must be *bit-identical* to the noiseless path on all
//!   four backends — the noise stream is seeded separately from the
//!   measurement stream and ideal channels draw nothing.
//! * A seeded depolarizing teleport on the stabilizer backend must
//!   reproduce the closed-form fidelity within statistical tolerance.
//! * One `QmpiConfig::noise(..)` call must drive a noisy 8-rank
//!   teleportation sweep on the state-vector, sharded, and stabilizer
//!   backends.

use qalgo::fidelity::{analytic_teleport_fidelity, teleport_fidelity, teleport_fidelity_sweep};
use qmpi::{
    run_with_config, BackendKind, NoiseChannel, NoiseModel, OpCounts, QmpiConfig, QmpiError,
    SimEngine, StateVectorEngine,
};
use qsim::Gate;

/// Shorthand for the unified construction path over the default
/// (in-process) transport.
fn build(
    kind: BackendKind,
    seed: u64,
    noise: NoiseModel,
) -> qmpi::Result<std::sync::Arc<dyn qmpi::QuantumBackend>> {
    qmpi::build_backend(kind, qmpi::TransportKind::InProcess, seed, noise)
}

fn all_kinds() -> [BackendKind; 5] {
    [
        BackendKind::StateVector,
        BackendKind::Stabilizer,
        BackendKind::Trace,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 2 },
    ]
}

/// Every channel kind at rate exactly zero — must be indistinguishable from
/// no noise at all, and valid on every backend (including zero-gamma
/// amplitude damping on the stabilizer tableau).
fn zero_rate_model() -> NoiseModel {
    NoiseModel::ideal()
        .with_gate_1q(NoiseChannel::Depolarizing { p: 0.0 })
        .with_gate_2q(NoiseChannel::Dephasing { p: 0.0 })
        .with_measurement(NoiseChannel::AmplitudeDamping { gamma: 0.0 })
        .with_epr(NoiseChannel::Depolarizing { p: 0.0 })
}

/// A protocol touching every noise hook — EPR establishment, 1q/2q gates,
/// teleportation, parity measurement, measuring frees — whose RNG draw
/// order is *deterministic*: every measurement sits on the teleport chain's
/// message-dependency order (the scrambling block runs on the last rank
/// after the chain has drained), so two runs of the same config are
/// bit-comparable.
fn protocol_run(kind: BackendKind, noise: NoiseModel) -> (Vec<bool>, OpCounts) {
    let cfg = QmpiConfig::new().seed(33).backend(kind).noise(noise);
    let out = run_with_config(4, cfg, |ctx| {
        let r = ctx.rank();
        // Teleport chain of |1> across all ranks.
        let mut bits = Vec::new();
        if r == 0 {
            let q = ctx.alloc_one();
            ctx.x(&q).unwrap();
            ctx.send_move(q, 1, 0).unwrap();
        } else {
            let q = ctx.recv_move(r - 1, (r - 1) as u16).unwrap();
            if r + 1 < ctx.size() {
                ctx.send_move(q, r + 1, r as u16).unwrap();
            } else {
                bits.push(ctx.measure_and_free(q).unwrap());
                // Scrambling + parity, sequenced strictly after the chain
                // (every other rank is already quantum-idle).
                let a = ctx.alloc_one();
                let b = ctx.alloc_one();
                ctx.h(&a).unwrap();
                ctx.cnot(&a, &b).unwrap();
                bits.push(ctx.measure_z_parity(&[&a, &b]).unwrap());
                bits.push(ctx.measure_and_free(a).unwrap());
                bits.push(ctx.measure_and_free(b).unwrap());
            }
        }
        ctx.barrier();
        (bits, ctx.backend().counts())
    });
    let last = out.len() - 1;
    (out[last].0.clone(), out[last].1)
}

#[test]
fn zero_rate_noise_is_bit_identical_on_every_backend() {
    for kind in all_kinds() {
        let (ideal_bits, mut ideal_counts) = protocol_run(kind, NoiseModel::ideal());
        let (zero_bits, mut zero_counts) = protocol_run(kind, zero_rate_model());
        assert_eq!(ideal_bits, zero_bits, "{kind}: outcomes diverged");
        // The high-water mark depends on rank scheduling, not on noise —
        // every other counter is a protocol invariant.
        ideal_counts.max_live_qubits = 0;
        zero_counts.max_live_qubits = 0;
        assert_eq!(ideal_counts, zero_counts, "{kind}: op counts diverged");
    }
}

#[test]
fn zero_rate_amplitudes_are_bit_identical() {
    // Engine-level check, stronger than outcome equality: every amplitude
    // bit pattern after a circuit with measurements must match exactly.
    let mut ideal = StateVectorEngine::new(7);
    let mut zeroed = StateVectorEngine::with_noise(7, zero_rate_model());
    for engine in [&mut ideal as &mut dyn SimEngine, &mut zeroed] {
        let q0 = engine.alloc();
        let q1 = engine.alloc();
        let q2 = engine.alloc();
        let q3 = engine.alloc();
        engine.apply(Gate::Ry(0.73), q0).unwrap();
        engine.cnot(q0, q1).unwrap();
        engine.apply(Gate::T, q1).unwrap();
        engine.entangle_epr(q2, q3).unwrap();
        engine.measure(q2).unwrap();
        engine.cz(q0, q2).unwrap();
    }
    // Equal handle streams: use the same ids on both engines.
    let order: Vec<qsim::QubitId> = (0..4).map(qsim::QubitId).collect();
    let a = ideal.state_vector(&order).unwrap();
    let b = zeroed.state_vector(&order).unwrap();
    for i in 0..a.len() {
        assert_eq!(a.amplitude(i).re.to_bits(), b.amplitude(i).re.to_bits());
        assert_eq!(a.amplitude(i).im.to_bits(), b.amplitude(i).im.to_bits());
    }
}

#[test]
fn stabilizer_depolarizing_teleport_matches_analytic_fidelity() {
    let p = 0.3;
    let noise = NoiseModel::epr_only(NoiseChannel::Depolarizing { p });
    let trials = 4000;
    let f = teleport_fidelity(BackendKind::Stabilizer, noise, 2, trials, 123);
    let expected = analytic_teleport_fidelity(&noise, 1);
    // One hop, q = 2p/3 = 0.2: expected = 1 - 2q(1-q) = 0.68. Four-sigma
    // tolerance at 4000 trials is ~0.03.
    assert!((expected - 0.68).abs() < 1e-12);
    assert!(
        (f - expected).abs() < 0.035,
        "empirical {f} vs analytic {expected}"
    );
}

#[test]
fn noisy_sweep_runs_on_all_stateful_backends_from_one_config() {
    // The acceptance criterion: an 8-rank noisy teleportation sweep on the
    // state-vector, sharded, and stabilizer backends, all driven by the
    // same QmpiConfig::noise(..) call inside the sweep.
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::Stabilizer,
    ] {
        let pts = teleport_fidelity_sweep(kind, &[0.0, 0.2], 8, 30, 77);
        assert_eq!(pts[0].fidelity, 1.0, "{kind}: zero rate must be perfect");
        assert!(
            pts[1].fidelity < 1.0,
            "{kind}: p=0.2 over 7 hops flips some runs with overwhelming probability"
        );
    }
}

#[test]
fn stabilizer_rejects_amplitude_damping_noise() {
    let noise = NoiseModel::amplitude_damping(0.1);
    match build(BackendKind::Stabilizer, 1, noise) {
        Err(QmpiError::InvalidArgument(msg)) => {
            assert!(msg.contains("Clifford"), "{msg}");
        }
        other => panic!("expected InvalidArgument, got {:?}", other.map(|_| ())),
    }
    // The same model is fine on amplitude-tracking backends.
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: 2 },
        BackendKind::Trace,
    ] {
        assert!(build(kind, 1, noise).is_ok(), "{kind}");
    }
}

#[test]
fn out_of_range_rates_are_rejected_everywhere() {
    for kind in all_kinds() {
        assert!(
            matches!(
                build(kind, 1, NoiseModel::depolarizing(1.5)),
                Err(QmpiError::InvalidArgument(_))
            ),
            "{kind}"
        );
    }
}

#[test]
fn trace_backend_models_error_free_probability() {
    let noise = NoiseModel::depolarizing(0.1);
    let b = build(BackendKind::Trace, 0, noise).unwrap();
    let qs = b.alloc(0, 3);
    b.apply(0, Gate::H, qs[0]).unwrap(); // 1q: 0.9
    b.cnot(0, qs[0], qs[1]).unwrap(); // 2q: 0.9^2
    b.entangle_epr(qs[1], qs[2]).unwrap(); // epr: 0.9^2
    b.measure(0, qs[0]).unwrap(); // measurement: 0.9
    let got = b.modeled_fidelity().expect("trace models fidelity");
    let want = 0.9f64.powi(6);
    assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    // Stateful engines sample noise instead of modeling it.
    assert_eq!(
        build(BackendKind::StateVector, 0, NoiseModel::ideal())
            .unwrap()
            .modeled_fidelity(),
        None
    );
}

#[test]
fn amplitude_damping_relaxes_excited_qubits() {
    // gamma = 1 after a 1q gate: the excited state must relax to |0>
    // immediately (jump probability gamma * P(1) = 1).
    let model = NoiseModel::ideal().with_gate_1q(NoiseChannel::AmplitudeDamping { gamma: 1.0 });
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: 2 },
    ] {
        let b = build(kind, 5, model).unwrap();
        let q = b.alloc(0, 1)[0];
        b.apply(0, Gate::X, q).unwrap();
        assert!(
            b.prob_one(0, q).unwrap() < 1e-12,
            "{kind}: X then full damping must read |0>"
        );
        b.free(0, q).unwrap();
    }
}

#[test]
fn configured_model_is_visible_on_the_backend() {
    let model = NoiseModel::epr_only(NoiseChannel::Dephasing { p: 0.25 });
    let cfg = QmpiConfig::new()
        .backend(BackendKind::Stabilizer)
        .noise(model);
    assert_eq!(cfg.noise_model(), model);
    let out = run_with_config(2, cfg, move |ctx| ctx.backend().noise() == model);
    assert_eq!(out, vec![true, true]);
}
