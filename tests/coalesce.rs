//! Cross-rank batch coalescing acceptance suite.
//!
//! The tentpole claim of the coalescing window: when several ranks flush
//! concurrently into a sharded backend, their per-rank gate plans merge
//! into shared per-worker frames — one command fan-out round per window
//! instead of one per flush — while every observable stays bit-identical
//! per seed to the uncoalesced path (the ranks own disjoint qubits, so
//! their sub-streams commute; the window interleaves them in deterministic
//! arrival order and never reorders within a rank).
//!
//! The tests drive rank IDs from a single thread on the raw
//! [`qmpi::QuantumBackend`] surface, so "concurrent" is deterministic:
//! flush arrival order — and therefore the noise-draw order and the
//! merged frame layout — is fixed, which lets bit-identity be asserted
//! exactly rather than statistically.

mod common;

use common::conformance::{canon_bits, ensure_worker_bin};
use qmpi::{build_backend_with_policy, BackendKind, BatchPolicy, QuantumBackend, TransportKind};
use qsim::{BatchOp, Gate, GateBatch, NoiseModel, QubitId};
use std::sync::Arc;

const RANKS: usize = 4;
const QUBITS_PER_RANK: usize = 2;
const STORM_ROUNDS: usize = 3;

fn coalesced() -> BatchPolicy {
    BatchPolicy::default()
}

fn uncoalesced() -> BatchPolicy {
    BatchPolicy {
        coalesce: false,
        ..BatchPolicy::default()
    }
}

/// One rank's flush payload for a storm round: a few gates confined to
/// the rank's own qubits (the disjoint-ownership precondition of the
/// commutation-safety argument).
fn rank_batch(round: usize, qs: &[QubitId]) -> GateBatch {
    let mut b = GateBatch::new();
    b.push(BatchOp::Gate {
        gate: Gate::H,
        q: qs[round % qs.len()],
    });
    b.push(BatchOp::Cnot { c: qs[0], t: qs[1] });
    b.push(BatchOp::Gate {
        gate: Gate::Rz(0.3 + 0.1 * round as f64),
        q: qs[1],
    });
    b
}

/// Everything the storm observes, bitwise-comparable.
#[derive(Debug, PartialEq, Eq)]
struct StormOutcome {
    amps: Vec<(u64, u64)>,
    trajectory: Vec<bool>,
}

/// Runs the 4-rank gate storm on `backend`: each rank owns its own pair
/// of qubits, every round each rank flushes one sub-budget batch, every
/// round ends in an explicit coalescing sync. Returns the observables
/// plus the command rounds and coalesced flushes the storm itself cost
/// (alloc and measurement rounds excluded by differencing).
fn run_storm(backend: &Arc<dyn QuantumBackend>) -> (StormOutcome, u64, u64) {
    let owned: Vec<Vec<QubitId>> = (0..RANKS)
        .map(|r| backend.alloc(r, QUBITS_PER_RANK))
        .collect();
    let stats_at = || {
        backend
            .transport_stats()
            .expect("the remote backend always has a transport")
    };
    let before = stats_at();
    for round in 0..STORM_ROUNDS {
        for (r, qs) in owned.iter().enumerate() {
            backend
                .apply_batch(r, &rank_batch(round, qs))
                .expect("storm batches target owned qubits only");
        }
        backend.sync_coalesced().expect("window ship");
    }
    let after = stats_at();
    let all: Vec<QubitId> = owned.iter().flatten().copied().collect();
    let st = backend.state_vector(&all).expect("dense snapshot");
    let amps = (0..st.len())
        .map(|i| {
            let a = st.amplitude(i);
            (canon_bits(a.re), canon_bits(a.im))
        })
        .collect();
    let trajectory = owned
        .iter()
        .enumerate()
        .flat_map(|(r, qs)| qs.iter().map(move |&q| (r, q)))
        .map(|(r, q)| backend.measure(r, q).expect("owned measurement"))
        .collect();
    (
        StormOutcome { amps, trajectory },
        after.command_rounds - before.command_rounds,
        after.coalesced_flushes - before.coalesced_flushes,
    )
}

fn storm_backend(policy: BatchPolicy, noise: NoiseModel, seed: u64) -> Arc<dyn QuantumBackend> {
    build_backend_with_policy(
        BackendKind::RemoteSharded { shards: 2 },
        TransportKind::InProcess,
        seed,
        noise,
        policy,
    )
    .expect("backend builds")
}

/// The tentpole counter-proof: R concurrent ranks' flushes collapse to
/// one command round per worker per window, halving (at least) the round
/// count of the per-rank path — and the merged execution is bit-identical
/// to the per-rank one, amplitudes and measurement trajectory both, with
/// and without Pauli noise drawn along the way.
#[test]
fn concurrent_rank_flushes_collapse_to_one_round_per_window() {
    for noise in [NoiseModel::ideal(), NoiseModel::depolarizing(0.2)] {
        for seed in [7u64, 42] {
            let (out_c, rounds_c, saved_c) = run_storm(&storm_backend(coalesced(), noise, seed));
            let (out_u, rounds_u, saved_u) = run_storm(&storm_backend(uncoalesced(), noise, seed));
            // Per-rank path: one fan-out per flush = RANKS × STORM_ROUNDS.
            assert_eq!(rounds_u, (RANKS * STORM_ROUNDS) as u64);
            // Coalesced path: one fan-out per window = STORM_ROUNDS.
            assert_eq!(rounds_c, STORM_ROUNDS as u64);
            assert!(
                2 * rounds_c <= rounds_u,
                "coalescing must at least halve command rounds ({rounds_c} vs {rounds_u})"
            );
            // Every flush after a window's first is one saved round.
            assert_eq!(saved_c, (RANKS * STORM_ROUNDS - STORM_ROUNDS) as u64);
            assert_eq!(saved_u, 0, "coalescing off must never count a save");
            assert_eq!(
                out_c, out_u,
                "merged frames diverged from per-rank dispatch (seed {seed})"
            );
        }
    }
}

/// Wire-bytes satellite: a merged frame re-frames several flushes into
/// one message, so coalescing must never put *more* bytes on the wire
/// than the per-rank path for the same workload.
#[test]
fn coalescing_never_costs_wire_bytes() {
    let seed = 11;
    let bytes_of = |policy: BatchPolicy| {
        let backend = storm_backend(policy, NoiseModel::ideal(), seed);
        let _ = run_storm(&backend);
        backend
            .transport_stats()
            .expect("remote transport")
            .wire_bytes
    };
    let coalesced_bytes = bytes_of(coalesced());
    let uncoalesced_bytes = bytes_of(uncoalesced());
    assert!(
        coalesced_bytes <= uncoalesced_bytes,
        "merged frames must not inflate the wire ({coalesced_bytes} vs {uncoalesced_bytes} bytes)"
    );
}

/// In-process deferral proof: on the lock-striped sharded backend the
/// window parks sub-budget flushes — the engine sees nothing until a
/// sync point ships the whole window in one merged application.
#[test]
fn window_defers_engine_dispatch_until_sync() {
    let backend = build_backend_with_policy(
        BackendKind::ShardedStateVector { shards: 4 },
        TransportKind::InProcess,
        3,
        NoiseModel::ideal(),
        coalesced(),
    )
    .expect("backend builds");
    let owned: Vec<Vec<QubitId>> = (0..RANKS)
        .map(|r| backend.alloc(r, QUBITS_PER_RANK))
        .collect();
    for (r, qs) in owned.iter().enumerate() {
        backend.apply_batch(r, &rank_batch(0, qs)).unwrap();
    }
    assert_eq!(
        backend.gate_count(),
        0,
        "sub-budget flushes must park in the window, not reach the engine"
    );
    backend.sync_coalesced().unwrap();
    let per_rank = rank_batch(0, &owned[0]).len() as u64;
    assert_eq!(
        backend.gate_count(),
        RANKS as u64 * per_rank,
        "the sync must ship every parked segment"
    );
}

/// With coalescing disabled the same flushes reach the engine eagerly —
/// the selectable old behavior the `QMPI_COALESCE=off` switch pins.
#[test]
fn coalescing_off_dispatches_each_flush_eagerly() {
    let backend = build_backend_with_policy(
        BackendKind::ShardedStateVector { shards: 4 },
        TransportKind::InProcess,
        3,
        NoiseModel::ideal(),
        uncoalesced(),
    )
    .expect("backend builds");
    let qs = backend.alloc(0, QUBITS_PER_RANK);
    backend.apply_batch(0, &rank_batch(0, &qs)).unwrap();
    assert_eq!(
        backend.gate_count(),
        rank_batch(0, &qs).len() as u64,
        "with coalescing off every flush dispatches immediately"
    );
}

/// The ops/bytes budgets trip the window just like they trip a rank's
/// local batch: a segment at or over budget ships at once, so a rank
/// that flushed *because* its budget tripped is never parked behind the
/// window on top of that.
#[test]
fn window_budget_trips_ship_immediately() {
    let tiny_budget = BatchPolicy {
        max_ops: 4,
        ..BatchPolicy::default()
    };
    let backend = build_backend_with_policy(
        BackendKind::ShardedStateVector { shards: 2 },
        TransportKind::InProcess,
        5,
        NoiseModel::ideal(),
        tiny_budget,
    )
    .expect("backend builds");
    let qs = backend.alloc(0, QUBITS_PER_RANK);
    let mut big = GateBatch::new();
    for i in 0..4 {
        big.push(BatchOp::Gate {
            gate: Gate::H,
            q: qs[i % qs.len()],
        });
    }
    backend.apply_batch(0, &big).unwrap();
    assert_eq!(
        backend.gate_count(),
        4,
        "a budget-sized flush must ship its window immediately"
    );
}

/// `max_age_ms` satellite: an opt-in age budget bounds how long a parked
/// window can sit; once a flush arrives past the deadline, the whole
/// window ships even though no ops/bytes budget tripped and no sync
/// point was reached.
#[test]
fn age_budget_ships_stale_window() {
    let aged = BatchPolicy {
        max_age_ms: 1,
        ..BatchPolicy::default()
    };
    let backend = build_backend_with_policy(
        BackendKind::ShardedStateVector { shards: 2 },
        TransportKind::InProcess,
        9,
        NoiseModel::ideal(),
        aged,
    )
    .expect("backend builds");
    let qs = backend.alloc(0, QUBITS_PER_RANK);
    backend.apply_batch(0, &rank_batch(0, &qs)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    // The deadline has long passed; the next flush ships the window.
    backend.apply_batch(0, &rank_batch(1, &qs)).unwrap();
    assert_eq!(
        backend.gate_count(),
        2 * rank_batch(0, &qs).len() as u64,
        "a flush past the age deadline must ship the whole window"
    );
}

/// The age budget is opt-in: at the default `max_age_ms = 0`, elapsed
/// time alone never ships a window (round counts stay deterministic for
/// the transport suites).
#[test]
fn age_budget_disabled_by_default() {
    let backend = build_backend_with_policy(
        BackendKind::ShardedStateVector { shards: 2 },
        TransportKind::InProcess,
        9,
        NoiseModel::ideal(),
        coalesced(),
    )
    .expect("backend builds");
    let qs = backend.alloc(0, QUBITS_PER_RANK);
    backend.apply_batch(0, &rank_batch(0, &qs)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    backend.apply_batch(0, &rank_batch(1, &qs)).unwrap();
    assert_eq!(
        backend.gate_count(),
        0,
        "without an age budget, time alone must never ship the window"
    );
}

/// The merged path also holds over real worker *processes*: same storm,
/// socket transport, rounds halve and observables stay bit-identical.
#[test]
fn storm_over_socket_workers_matches_per_rank_dispatch() {
    ensure_worker_bin();
    let build = |policy: BatchPolicy| {
        build_backend_with_policy(
            BackendKind::RemoteSharded { shards: 2 },
            TransportKind::UnixSocket,
            13,
            NoiseModel::depolarizing(0.15),
            policy,
        )
        .expect("backend builds")
    };
    let (out_c, rounds_c, _) = run_storm(&build(coalesced()));
    let (out_u, rounds_u, _) = run_storm(&build(uncoalesced()));
    assert!(
        2 * rounds_c <= rounds_u,
        "coalescing must at least halve command rounds over sockets ({rounds_c} vs {rounds_u})"
    );
    assert_eq!(out_c, out_u, "socket merged frames diverged from per-rank");
}
