//! Cross-crate integration: Table 1/2/3 resource identities checked on the
//! full stack, plus functional collective correctness at the state level.

use qmpi::{run_with_config, BcastAlgorithm, Parity, QmpiConfig};

fn cfg(seed: u64) -> QmpiConfig {
    QmpiConfig::new().seed(seed)
}

#[test]
fn table1_identities_hold_for_many_node_counts() {
    for n in [2usize, 3, 4, 6] {
        let out = run_with_config(n, cfg(n as u64), move |ctx| {
            // reduce: N-1 EPR / N-1 bits; unreduce: 0 EPR / N-1 bits.
            let q = ctx.alloc_one();
            let (fwd, (result, handle)) =
                ctx.measure_resources(|| ctx.reduce(&q, &Parity, 0).unwrap());
            let (inv, ()) =
                ctx.measure_resources(|| ctx.unreduce(&q, result, handle, &Parity).unwrap());
            ctx.free_qmem(q).unwrap();
            (fwd, inv)
        });
        let (fwd, inv) = out[0];
        assert_eq!(fwd.epr_pairs as usize, n - 1, "n={n}");
        assert_eq!(fwd.classical_bits as usize, n - 1, "n={n}");
        assert_eq!(inv.epr_pairs, 0, "n={n}");
        assert_eq!(inv.classical_bits as usize, n - 1, "n={n}");
    }
}

#[test]
fn scan_identities_hold() {
    for n in [2usize, 4, 5] {
        let out = run_with_config(n, cfg(9), move |ctx| {
            let q = ctx.alloc_one();
            let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.scan(&q, &Parity).unwrap());
            let (inv, ()) =
                ctx.measure_resources(|| ctx.unscan(&q, result, handle, &Parity).unwrap());
            ctx.free_qmem(q).unwrap();
            (fwd, inv)
        });
        let (fwd, inv) = out[0];
        assert_eq!(fwd.epr_pairs as usize, n - 1);
        assert_eq!(inv.epr_pairs, 0);
        assert_eq!(inv.classical_bits as usize, n - 1);
    }
}

#[test]
fn both_bcast_algorithms_agree_functionally() {
    for algo in [BcastAlgorithm::BinomialTree, BcastAlgorithm::CatState] {
        let out = run_with_config(4, cfg(77), move |ctx| {
            let (orig, copy) = if ctx.rank() == 2 {
                let q = ctx.alloc_one();
                ctx.x(&q).unwrap();
                ctx.bcast_with(algo, Some(&q), 2).unwrap();
                (Some(q), None)
            } else {
                (None, ctx.bcast_with(algo, None, 2).unwrap())
            };
            ctx.barrier();
            let m = if let Some(c) = &copy {
                ctx.measure(c).unwrap()
            } else {
                ctx.measure(orig.as_ref().unwrap()).unwrap()
            };
            for q in orig.into_iter().chain(copy) {
                ctx.measure_and_free(q).unwrap();
            }
            m
        });
        assert_eq!(out, vec![true; 4], "{algo:?}");
    }
}

#[test]
fn cat_bcast_beats_tree_on_rounds_matches_sendq_model() {
    // The Section 7.1 claim, measured end-to-end: quantum rounds of the
    // tree grow like log2 N; the cat's stay at 2. (n = 16 also passes but
    // is slow on loaded CI machines — the 2^16-amplitude global state makes
    // every gate a parallel kernel invocation under the backend lock.)
    for n in [4usize, 8] {
        let out = run_with_config(n, cfg(1), move |ctx| {
            let (tree, q1) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.bcast(Some(&q), 0).unwrap();
                    Some(q)
                } else {
                    ctx.bcast(None, 0).unwrap()
                }
            });
            if let Some(q) = q1 {
                ctx.measure_and_free(q).unwrap();
            }
            let (cat, q2) = ctx.measure_resources(|| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.bcast_with(BcastAlgorithm::CatState, Some(&q), 0)
                        .unwrap();
                    Some(q)
                } else {
                    ctx.bcast_with(BcastAlgorithm::CatState, None, 0).unwrap()
                }
            });
            if let Some(q) = q2 {
                ctx.measure_and_free(q).unwrap();
            }
            (tree.epr_rounds, cat.epr_rounds)
        });
        let (tree_rounds, cat_rounds) = out[0];
        let expected_tree = (n as f64).log2().ceil() as u64;
        assert_eq!(tree_rounds, expected_tree, "n={n}");
        assert_eq!(cat_rounds, 2, "n={n}");
        // Model agreement: sendq predicts the same round counts.
        let p = sendq::SendqParams {
            s: 2,
            e: 1.0,
            n,
            q: 8,
            d_r: 0.0,
            d_m: 0.0,
            d_f: 0.0,
        };
        assert_eq!(
            sendq::analysis::bcast::tree_bcast_time(&p) as u64,
            expected_tree,
            "n={n}: SENDQ tree formula"
        );
        assert_eq!(sendq::analysis::bcast::cat_bcast_time(&p) as u64, 2);
    }
}

#[test]
fn allreduce_value_usable_then_fully_uncomputed() {
    let out = run_with_config(3, cfg(4), |ctx| {
        let q = ctx.alloc_one();
        if ctx.rank() != 1 {
            ctx.x(&q).unwrap(); // parity of (1, 0, 1) = 0
        }
        let (value, handle) = ctx.allreduce(&q, &Parity).unwrap();
        let z = ctx.expectation(&[(&value, qsim::Pauli::Z)]).unwrap();
        ctx.unallreduce(&q, value, handle, &Parity).unwrap();
        // Original inputs intact after uncompute.
        let p = ctx.prob_one(&q).unwrap();
        ctx.measure_and_free(q).unwrap();
        (z, p)
    });
    for (r, (z, p)) in out.into_iter().enumerate() {
        assert!((z - 1.0).abs() < 1e-9, "rank {r}: parity must read 0");
        let expect = if r != 1 { 1.0 } else { 0.0 };
        assert!((p - expect).abs() < 1e-9, "rank {r}: input restored");
    }
}

#[test]
fn persistent_channels_survive_interleaved_traffic() {
    // Persistent Section 4.7 channels must not get confused by ordinary
    // sends on the same tag range happening in between.
    let out = run_with_config(2, cfg(6), |ctx| {
        if ctx.rank() == 0 {
            let mut chan = ctx.send_init(1, 9, 2).unwrap();
            // Ordinary traffic in between.
            let q = ctx.alloc_one();
            ctx.x(&q).unwrap();
            ctx.send(&q, 1, 3).unwrap();
            ctx.unsend(&q, 1, 3).unwrap();
            ctx.measure_and_free(q).unwrap();
            // Now the persistent starts.
            let a = ctx.alloc_one();
            ctx.x(&a).unwrap();
            chan.start(ctx, &a).unwrap();
            let b = ctx.alloc_one();
            chan.start(ctx, &b).unwrap();
            ctx.measure_and_free(a).unwrap();
            ctx.measure_and_free(b).unwrap();
            chan.free(ctx).unwrap();
            vec![]
        } else {
            let mut chan = ctx.recv_init(0, 9, 2).unwrap();
            let copy = ctx.recv(0, 3).unwrap();
            let m0 = ctx.prob_one(&copy).unwrap() > 0.5;
            ctx.unrecv(copy, 0, 3).unwrap();
            let a = chan.start(ctx).unwrap();
            let b = chan.start(ctx).unwrap();
            let ma = ctx.measure_and_free(a).unwrap();
            let mb = ctx.measure_and_free(b).unwrap();
            chan.free(ctx).unwrap();
            vec![m0, ma, mb]
        }
    });
    assert_eq!(out[1], vec![true, true, false]);
}
