//! Batched-vs-eager equivalence suite.
//!
//! With batching on (the default), rank-local gate calls record into a
//! per-rank `GateBatch` that flushes lazily; with it off, every gate
//! dispatches eagerly. The two modes must be *observably identical per
//! seed* on every backend — bit-identical amplitudes on the
//! amplitude-class engines (state-vector, sparse, lock-striped sharded,
//! process-separated remote), identical expectation values and
//! measurement outcomes on the stabilizer tableau, identical operation
//! counts and modeled fidelity on the trace engine — no matter where
//! flush points land and whether Pauli noise is drawn along the way.
//!
//! Circuit driving and observable capture live in the shared conformance
//! harness (`common::conformance`); this suite only picks the pair to
//! compare: same kind, batching on vs off.
//!
//! The property module runs under the nightly stress lane's
//! `PROPTEST_CASES=320` sweep alongside the other in-tree proptest suites.

mod common;

use common::conformance::{run_circuit, Outcome, Step};
use qmpi::{run_with_config, BackendKind, BatchPolicy, QmpiConfig};
use qsim::{Gate, NoiseModel};

const N_QUBITS: usize = 6;

/// The batched mode under test here: batching on, plan-time optimizer
/// *off*. This suite's contract is bit-identity to the eager path, which
/// fusion intentionally trades away (FP re-association); the fusion
/// dimension has its own suite (`tests/fusion.rs`).
fn unfused_batching() -> BatchPolicy {
    BatchPolicy {
        fuse: false,
        ..BatchPolicy::default()
    }
}

/// Runs `steps` on one rank of `kind` with (unfused) batching on or off
/// and captures every observable the backend exposes.
fn run_one(kind: BackendKind, batching: bool, steps: &[Step], noise: NoiseModel) -> Outcome {
    let policy = if batching {
        unfused_batching()
    } else {
        BatchPolicy::eager()
    };
    let cfg = QmpiConfig::new()
        .seed(42)
        .backend(kind)
        .noise(noise)
        .batch(policy);
    run_circuit(cfg, N_QUBITS, steps, kind == BackendKind::Stabilizer).0
}

fn all_kinds() -> [BackendKind; 6] {
    [
        BackendKind::StateVector,
        BackendKind::Stabilizer,
        BackendKind::Trace,
        BackendKind::Sparse,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 4 },
    ]
}

fn assert_batched_matches_eager(steps: &[Step], noise: NoiseModel) {
    for kind in all_kinds() {
        let eager = run_one(kind, false, steps, noise);
        let batched = run_one(kind, true, steps, noise);
        assert_eq!(
            eager, batched,
            "{kind}: batched run must be bit-identical to eager"
        );
        assert!(
            !matches!(kind, BackendKind::StateVector | BackendKind::Sparse)
                || !eager.amps.is_empty(),
            "amplitude-class engines must actually compare amplitudes"
        );
    }
}

#[test]
fn fixed_circuit_with_flushes_matches_eager_on_all_backends() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        G(Gate::H, 5),
        Cnot(0, 5),
        Flush,
        G(Gate::T, 2),
        Swap(1, 5),
        Cz(2, 4),
        G(Gate::S, 3),
        Flush,
        Flush, // double flush: second must be a no-op
        Cnot(5, 0),
        Swap(3, 4),
    ];
    assert_batched_matches_eager(&steps, NoiseModel::ideal());
}

#[test]
fn fixed_circuit_with_flushes_matches_eager_under_pauli_noise() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        Cnot(0, 4),
        G(Gate::T, 1),
        Flush,
        Swap(0, 5),
        Cz(1, 3),
        Cnot(4, 2),
        G(Gate::Y, 5),
    ];
    let noise =
        NoiseModel::depolarizing(0.2).with_measurement(qsim::NoiseChannel::Dephasing { p: 0.25 });
    assert_batched_matches_eager(&steps, noise);
}

/// Amplitude damping is state-dependent, so batching engines fall back to
/// eager per-gate dispatch internally — the observable contract is the
/// same: identical trajectories per seed.
#[test]
fn amplitude_damping_falls_back_to_identical_trajectories() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        G(Gate::X, 1),
        Cnot(0, 2),
        Flush,
        G(Gate::Ry(0.9), 1),
        Swap(2, 5),
    ];
    let noise = NoiseModel::amplitude_damping(0.2);
    for kind in [
        BackendKind::StateVector,
        BackendKind::Sparse,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 4 },
    ] {
        let eager = run_one(kind, false, &steps, noise);
        let batched = run_one(kind, true, &steps, noise);
        assert_eq!(eager, batched, "{kind}");
    }
}

/// Structural gate errors must surface at the call site with batching on —
/// never as a panic at a later flush point (barrier, teardown).
#[test]
fn duplicate_qubit_errors_surface_at_the_call_site() {
    for kind in all_kinds() {
        let cfg = QmpiConfig::new().seed(1).backend(kind).batching(true);
        let out = run_with_config(1, cfg, |ctx| {
            let q = ctx.alloc_one();
            let a = ctx.alloc_one();
            let cnot_err = ctx.cnot(&q, &q).unwrap_err();
            let cz_err = ctx.cz(&q, &q).unwrap_err();
            let ctrl_err = ctx.controlled(&[&q], qsim::Gate::X, &q).unwrap_err();
            // A self-SWAP is a legal no-op everywhere.
            ctx.swap(&q, &q).unwrap();
            // The rank must still be fully usable afterwards.
            ctx.cnot(&q, &a).unwrap();
            ctx.measure_and_free(q).unwrap();
            ctx.measure_and_free(a).unwrap();
            [cnot_err, cz_err, ctrl_err]
                .iter()
                .all(|e| matches!(e, qmpi::QmpiError::Sim(qsim::SimError::DuplicateQubit(_))))
        });
        assert!(out[0], "{kind}: duplicate-qubit errors must be eager");
    }
}

/// Ops the stabilizer tableau cannot realize — Toffoli, controlled
/// rotations — must be rejected at the call site even though their base
/// gate is Clifford, not recorded and exploded at teardown.
#[test]
fn stabilizer_rejects_unsupported_controlled_ops_eagerly() {
    let cfg = QmpiConfig::new()
        .seed(1)
        .backend(BackendKind::Stabilizer)
        .batching(true);
    let out = run_with_config(1, cfg, |ctx| {
        let a = ctx.alloc_one();
        let b = ctx.alloc_one();
        let t = ctx.alloc_one();
        let toffoli_err = ctx.toffoli(&a, &b, &t).unwrap_err();
        let ch_err = ctx.controlled(&[&a], qsim::Gate::H, &t).unwrap_err();
        // The single-control X/Z spellings the tableau does realize still
        // batch fine.
        ctx.controlled(&[&a], qsim::Gate::X, &t).unwrap();
        ctx.controlled(&[&a], qsim::Gate::Z, &b).unwrap();
        for q in [a, b, t] {
            ctx.measure_and_free(q).unwrap();
        }
        [toffoli_err, ch_err]
            .iter()
            .all(|e| matches!(e, qmpi::QmpiError::Sim(qsim::SimError::Unsupported(_))))
    });
    assert!(
        out[0],
        "unsupported controlled ops must be rejected eagerly"
    );
}

/// A classical message is how a rank signals "my gates are done": the
/// sender's recorded gates must be visible (in the global counters) by the
/// time the receiver gets the message.
#[test]
fn classical_send_flushes_pending_gates_first() {
    let cfg = QmpiConfig::new()
        .seed(4)
        .backend(BackendKind::StateVector)
        // Unfused: the optimizer would cancel the H·H pair below to zero
        // sweeps, and this test counts landed gates.
        .batch(unfused_batching());
    let out = run_with_config(2, cfg, |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            ctx.h(&q).unwrap(); // recorded, not yet applied
            ctx.classical().send(&(), 1, 0); // flush point: both gates land here
            let _ = ctx.classical().recv::<()>(1, 1);
            ctx.measure_and_free(q).unwrap();
            0
        } else {
            let _ = ctx.classical().recv::<()>(0, 0);
            let gates = ctx.backend().gate_count();
            ctx.classical().send(&(), 0, 1);
            gates
        }
    });
    assert!(
        out[1] >= 2,
        "rank 0's recorded gates must land before its classical send, saw {}",
        out[1]
    );
}

mod proptests {
    use super::*;
    use crate::common::conformance::strategies::arb_steps;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole acceptance property: random Clifford+T circuits
        /// with randomly placed flush points produce observables
        /// bit-identical to the eager path on all six backends.
        #[test]
        fn random_flush_points_are_bit_identical_to_eager(
            steps in arb_steps(N_QUBITS, true, 8..30),
        ) {
            assert_batched_matches_eager(&steps, NoiseModel::ideal());
        }

        /// The same property with the controller/engine drawing Pauli
        /// noise from the shared seeded stream along the way.
        #[test]
        fn random_flush_points_identical_under_pauli_noise(
            steps in arb_steps(N_QUBITS, true, 8..24),
            p in 0.0f64..0.4,
        ) {
            assert_batched_matches_eager(&steps, NoiseModel::depolarizing(p));
        }
    }
}
