//! Batched-vs-eager equivalence suite.
//!
//! With batching on (the default), rank-local gate calls record into a
//! per-rank `GateBatch` that flushes lazily; with it off, every gate
//! dispatches eagerly. The two modes must be *observably identical per
//! seed* on every backend — bit-identical amplitudes on the dense engines
//! (state-vector, lock-striped sharded, process-separated remote),
//! identical expectation values and measurement outcomes on the
//! stabilizer tableau, identical operation counts and modeled fidelity on
//! the trace engine — no matter where flush points land and whether Pauli
//! noise is drawn along the way.
//!
//! The property module runs under the nightly stress lane's
//! `PROPTEST_CASES=320` sweep alongside the other in-tree proptest suites.

use qmpi::{run_with_config, BackendKind, QmpiConfig, QmpiRank};
use qsim::{Gate, NoiseModel, Pauli};

const N_QUBITS: usize = 6;

/// One step of a circuit with randomly placed flush points.
#[derive(Clone, Copy, Debug)]
enum Step {
    G(Gate, usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    /// An explicit `QmpiRank::flush` — a no-op for program semantics, so
    /// sprinkling these anywhere must never change any observable.
    Flush,
}

/// Everything a backend lets us observe, in exactly-comparable form
/// (floats as bit patterns — the acceptance bar is bit-identity, not
/// tolerance).
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Dense amplitudes as bit patterns (empty on stabilizer/trace).
    amps: Vec<(u64, u64)>,
    /// Per-qubit <Z> (plus one joint string) as bit patterns.
    expectations: Vec<u64>,
    /// Final measurement outcome of every qubit.
    outcomes: Vec<bool>,
    /// (gates, measurements) from the backend counters.
    counts: (u64, u64),
    /// Trace engine's modeled error-free probability, as bits.
    fidelity: Option<u64>,
}

fn apply_steps(ctx: &QmpiRank, qs: &[qmpi::Qubit], steps: &[Step], clifford_only: bool) {
    for &step in steps {
        match step {
            Step::G(g, t) => {
                let g = if clifford_only && !g.is_clifford() {
                    // The stabilizer tableau cannot run T; substitute S so
                    // every backend executes the same step *count*.
                    Gate::S
                } else {
                    g
                };
                ctx.apply(g, &qs[t % N_QUBITS]).unwrap();
            }
            Step::Cnot(c, t) if c % N_QUBITS != t % N_QUBITS => {
                ctx.cnot(&qs[c % N_QUBITS], &qs[t % N_QUBITS]).unwrap();
            }
            Step::Cz(a, b) if a % N_QUBITS != b % N_QUBITS => {
                ctx.cz(&qs[a % N_QUBITS], &qs[b % N_QUBITS]).unwrap();
            }
            Step::Swap(a, b) if a % N_QUBITS != b % N_QUBITS => {
                ctx.swap(&qs[a % N_QUBITS], &qs[b % N_QUBITS]).unwrap();
            }
            Step::Flush => ctx.flush().unwrap(),
            _ => {}
        }
    }
}

/// Runs `steps` on one rank of `kind` with batching on or off and captures
/// every observable the backend exposes.
fn run_circuit(kind: BackendKind, batching: bool, steps: Vec<Step>, noise: NoiseModel) -> Outcome {
    let cfg = QmpiConfig::new()
        .seed(42)
        .backend(kind)
        .noise(noise)
        .batching(batching);
    let clifford_only = kind == BackendKind::Stabilizer;
    let out = run_with_config(1, cfg, move |ctx| {
        let qs = ctx.alloc_qmem(N_QUBITS);
        apply_steps(ctx, &qs, &steps, clifford_only);
        // Dense snapshot (flushes via backend()); engines without
        // amplitudes report none.
        let ids: Vec<qsim::QubitId> = qs.iter().map(|q| q.id()).collect();
        let amps = match ctx.backend().state_vector(&ids) {
            Ok(st) => (0..st.len())
                .map(|i| {
                    let a = st.amplitude(i);
                    (a.re.to_bits(), a.im.to_bits())
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        let mut expectations: Vec<u64> = qs
            .iter()
            .map(|q| ctx.expectation(&[(q, Pauli::Z)]).unwrap().to_bits())
            .collect();
        expectations.push(
            ctx.expectation(&[(&qs[0], Pauli::Z), (&qs[N_QUBITS - 1], Pauli::Z)])
                .unwrap()
                .to_bits(),
        );
        let fidelity = ctx.backend().modeled_fidelity().map(f64::to_bits);
        let outcomes: Vec<bool> = qs
            .into_iter()
            .map(|q| ctx.measure_and_free(q).unwrap())
            .collect();
        let counts = ctx.backend().counts();
        Outcome {
            amps,
            expectations,
            outcomes,
            counts: (counts.gates, counts.measurements),
            fidelity,
        }
    });
    out.into_iter().next().unwrap()
}

fn all_kinds() -> [BackendKind; 5] {
    [
        BackendKind::StateVector,
        BackendKind::Stabilizer,
        BackendKind::Trace,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 4 },
    ]
}

fn assert_batched_matches_eager(steps: &[Step], noise: NoiseModel) {
    for kind in all_kinds() {
        let eager = run_circuit(kind, false, steps.to_vec(), noise);
        let batched = run_circuit(kind, true, steps.to_vec(), noise);
        assert_eq!(
            eager, batched,
            "{kind}: batched run must be bit-identical to eager"
        );
        assert!(
            !matches!(kind, BackendKind::StateVector) || !eager.amps.is_empty(),
            "dense engines must actually compare amplitudes"
        );
    }
}

#[test]
fn fixed_circuit_with_flushes_matches_eager_on_all_backends() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        G(Gate::H, 5),
        Cnot(0, 5),
        Flush,
        G(Gate::T, 2),
        Swap(1, 5),
        Cz(2, 4),
        G(Gate::S, 3),
        Flush,
        Flush, // double flush: second must be a no-op
        Cnot(5, 0),
        Swap(3, 4),
    ];
    assert_batched_matches_eager(&steps, NoiseModel::ideal());
}

#[test]
fn fixed_circuit_with_flushes_matches_eager_under_pauli_noise() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        Cnot(0, 4),
        G(Gate::T, 1),
        Flush,
        Swap(0, 5),
        Cz(1, 3),
        Cnot(4, 2),
        G(Gate::Y, 5),
    ];
    let noise =
        NoiseModel::depolarizing(0.2).with_measurement(qsim::NoiseChannel::Dephasing { p: 0.25 });
    assert_batched_matches_eager(&steps, noise);
}

/// Amplitude damping is state-dependent, so batching engines fall back to
/// eager per-gate dispatch internally — the observable contract is the
/// same: identical trajectories per seed.
#[test]
fn amplitude_damping_falls_back_to_identical_trajectories() {
    use Step::*;
    let steps = [
        G(Gate::H, 0),
        G(Gate::X, 1),
        Cnot(0, 2),
        Flush,
        G(Gate::Ry(0.9), 1),
        Swap(2, 5),
    ];
    let noise = NoiseModel::amplitude_damping(0.2);
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 4 },
    ] {
        let eager = run_circuit(kind, false, steps.to_vec(), noise);
        let batched = run_circuit(kind, true, steps.to_vec(), noise);
        assert_eq!(eager, batched, "{kind}");
    }
}

/// Structural gate errors must surface at the call site with batching on —
/// never as a panic at a later flush point (barrier, teardown).
#[test]
fn duplicate_qubit_errors_surface_at_the_call_site() {
    for kind in all_kinds() {
        let cfg = QmpiConfig::new().seed(1).backend(kind).batching(true);
        let out = run_with_config(1, cfg, |ctx| {
            let q = ctx.alloc_one();
            let a = ctx.alloc_one();
            let cnot_err = ctx.cnot(&q, &q).unwrap_err();
            let cz_err = ctx.cz(&q, &q).unwrap_err();
            let ctrl_err = ctx.controlled(&[&q], qsim::Gate::X, &q).unwrap_err();
            // A self-SWAP is a legal no-op everywhere.
            ctx.swap(&q, &q).unwrap();
            // The rank must still be fully usable afterwards.
            ctx.cnot(&q, &a).unwrap();
            ctx.measure_and_free(q).unwrap();
            ctx.measure_and_free(a).unwrap();
            [cnot_err, cz_err, ctrl_err]
                .iter()
                .all(|e| matches!(e, qmpi::QmpiError::Sim(qsim::SimError::DuplicateQubit(_))))
        });
        assert!(out[0], "{kind}: duplicate-qubit errors must be eager");
    }
}

/// Ops the stabilizer tableau cannot realize — Toffoli, controlled
/// rotations — must be rejected at the call site even though their base
/// gate is Clifford, not recorded and exploded at teardown.
#[test]
fn stabilizer_rejects_unsupported_controlled_ops_eagerly() {
    let cfg = QmpiConfig::new()
        .seed(1)
        .backend(BackendKind::Stabilizer)
        .batching(true);
    let out = run_with_config(1, cfg, |ctx| {
        let a = ctx.alloc_one();
        let b = ctx.alloc_one();
        let t = ctx.alloc_one();
        let toffoli_err = ctx.toffoli(&a, &b, &t).unwrap_err();
        let ch_err = ctx.controlled(&[&a], qsim::Gate::H, &t).unwrap_err();
        // The single-control X/Z spellings the tableau does realize still
        // batch fine.
        ctx.controlled(&[&a], qsim::Gate::X, &t).unwrap();
        ctx.controlled(&[&a], qsim::Gate::Z, &b).unwrap();
        for q in [a, b, t] {
            ctx.measure_and_free(q).unwrap();
        }
        [toffoli_err, ch_err]
            .iter()
            .all(|e| matches!(e, qmpi::QmpiError::Sim(qsim::SimError::Unsupported(_))))
    });
    assert!(
        out[0],
        "unsupported controlled ops must be rejected eagerly"
    );
}

/// A classical message is how a rank signals "my gates are done": the
/// sender's recorded gates must be visible (in the global counters) by the
/// time the receiver gets the message.
#[test]
fn classical_send_flushes_pending_gates_first() {
    let cfg = QmpiConfig::new()
        .seed(4)
        .backend(BackendKind::StateVector)
        .batching(true);
    let out = run_with_config(2, cfg, |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            ctx.h(&q).unwrap(); // recorded, not yet applied
            ctx.classical().send(&(), 1, 0); // flush point: both gates land here
            let _ = ctx.classical().recv::<()>(1, 1);
            ctx.measure_and_free(q).unwrap();
            0
        } else {
            let _ = ctx.classical().recv::<()>(0, 0);
            let gates = ctx.backend().gate_count();
            ctx.classical().send(&(), 0, 1);
            gates
        }
    });
    assert!(
        out[1] >= 2,
        "rank 0's recorded gates must land before its classical send, saw {}",
        out[1]
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (0usize..8, 0..N_QUBITS).prop_map(|(g, t)| {
                let gate = match g {
                    0 => Gate::H,
                    1 => Gate::S,
                    2 => Gate::Sdg,
                    3 => Gate::T,
                    4 => Gate::Tdg,
                    5 => Gate::X,
                    6 => Gate::Y,
                    _ => Gate::Z,
                };
                Step::G(gate, t)
            }),
            (0..N_QUBITS, 0..N_QUBITS).prop_map(|(c, t)| Step::Cnot(c, t)),
            (0..N_QUBITS, 0..N_QUBITS).prop_map(|(a, b)| Step::Cz(a, b)),
            (0..N_QUBITS, 0..N_QUBITS).prop_map(|(a, b)| Step::Swap(a, b)),
            Just(Step::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole acceptance property: random Clifford+T circuits
        /// with randomly placed flush points produce observables
        /// bit-identical to the eager path on all five backends.
        #[test]
        fn random_flush_points_are_bit_identical_to_eager(
            steps in proptest::collection::vec(arb_step(), 8..30),
        ) {
            assert_batched_matches_eager(&steps, NoiseModel::ideal());
        }

        /// The same property with the controller/engine drawing Pauli
        /// noise from the shared seeded stream along the way.
        #[test]
        fn random_flush_points_identical_under_pauli_noise(
            steps in proptest::collection::vec(arb_step(), 8..24),
            p in 0.0f64..0.4,
        ) {
            assert_batched_matches_eager(&steps, NoiseModel::depolarizing(p));
        }
    }
}
