//! Cross-crate integration: the Section 7 applications running end-to-end
//! on the full stack, checked against dense references and the SENDQ model.

use qalgo::tfim::{self, TfimParams};
use qmpi::{run_with_config, QmpiConfig};
use qsim::QubitId;

fn cfg(seed: u64) -> QmpiConfig {
    QmpiConfig::new().seed(seed)
}

/// Snapshot helper: fidelity of the live distributed state against a dense
/// reference, computed on rank 0.
fn fidelity_vs_reference(ctx: &qmpi::QmpiRank, my_ids: Vec<u64>, reference: &qsim::State) -> f64 {
    let gathered = ctx.classical().gather(&my_ids, 0);
    let f = if ctx.rank() == 0 {
        let all: Vec<QubitId> = gathered
            .unwrap()
            .into_iter()
            .flatten()
            .map(QubitId)
            .collect();
        let state = ctx.backend().state_vector(&all).unwrap();
        state.fidelity(reference)
    } else {
        0.0
    };
    ctx.barrier();
    f
}

#[test]
fn tfim_distributed_equals_dense_for_multiple_schedules() {
    for (n_ranks, local, steps) in [(2usize, 2usize, 2usize), (4, 1, 3), (3, 2, 1)] {
        let total = n_ranks * local;
        let params = TfimParams {
            j: 0.6,
            g: 0.7,
            time: 0.5,
            trotter_steps: steps,
        };
        let out = run_with_config(n_ranks, cfg(42), move |ctx| {
            let qubits = ctx.alloc_qmem(local);
            for q in &qubits {
                ctx.h(q).unwrap();
            }
            tfim::time_evolution(ctx, &qubits, &params).unwrap();
            ctx.barrier();
            let (ref_sim, ref_ids) = tfim::reference_evolution(total, &params, 7);
            let reference = ref_sim.state_vector(&ref_ids).unwrap();
            let ids: Vec<u64> = qubits.iter().map(|q| q.id().0).collect();
            let f = fidelity_vs_reference(ctx, ids, &reference);
            for q in qubits {
                ctx.measure_and_free(q).unwrap();
            }
            f
        });
        assert!(
            (out[0] - 1.0).abs() < 1e-8,
            "ranks={n_ranks} local={local} steps={steps}: fidelity {}",
            out[0]
        );
    }
}

#[test]
fn tfim_epr_usage_matches_model_count() {
    // Each Trotter step uses one EPR pair per ring-boundary edge = N pairs
    // (2 per node / 2 endpoints per pair).
    let n_ranks = 4;
    let steps = 3;
    let params = TfimParams {
        j: 0.4,
        g: 0.3,
        time: 0.3,
        trotter_steps: steps,
    };
    let out = run_with_config(n_ranks, cfg(11), move |ctx| {
        let qubits = ctx.alloc_qmem(2);
        for q in &qubits {
            ctx.h(q).unwrap();
        }
        let (delta, ()) = ctx.measure_resources(|| {
            tfim::time_evolution(ctx, &qubits, &params).unwrap();
        });
        for q in qubits {
            ctx.measure_and_free(q).unwrap();
        }
        delta
    });
    assert_eq!(out[0].epr_pairs as usize, n_ranks * steps);
}

#[test]
fn parity_methods_agree_pairwise_on_live_state() {
    // Apply method A then the inverse angle with method B: identity.
    type Method = fn(&qmpi::QmpiRank, &qmpi::Qubit, f64) -> qmpi::Result<()>;
    let pairs: [(Method, Method); 3] = [
        (qalgo::parity::in_place, qalgo::parity::out_of_place),
        (qalgo::parity::out_of_place, qalgo::parity::constant_depth),
        (qalgo::parity::constant_depth, qalgo::parity::in_place),
    ];
    for (idx, (a, b)) in pairs.into_iter().enumerate() {
        let out = run_with_config(4, cfg(idx as u64 + 30), move |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, 0.5 + ctx.rank() as f64 * 0.2).unwrap();
            let x0 = ctx.expectation(&[(&q, qsim::Pauli::X)]).unwrap();
            let z0 = ctx.expectation(&[(&q, qsim::Pauli::Z)]).unwrap();
            a(ctx, &q, 0.9).unwrap();
            b(ctx, &q, -0.9).unwrap();
            let x1 = ctx.expectation(&[(&q, qsim::Pauli::X)]).unwrap();
            let z1 = ctx.expectation(&[(&q, qsim::Pauli::Z)]).unwrap();
            ctx.measure_and_free(q).unwrap();
            (x0 - x1).abs() < 1e-8 && (z0 - z1).abs() < 1e-8
        });
        assert!(out.iter().all(|&ok| ok), "pair {idx}");
    }
}

#[test]
fn chemistry_trotter_term_executed_with_qmpi_matches_pauli_sum() {
    // Build the H2 Hamiltonian, take its largest 2-qubit ZZ Trotter factor,
    // and execute it distributed: the resulting state must match the dense
    // exponential of that single term.
    let mol = qchem::Molecule::hydrogen_chain(2, 0.7414);
    let h = qchem::molecular_hamiltonian(&mol, qchem::Encoding::JordanWigner);
    let terms = qchem::first_order_step(&h, 0.1);
    // Find a pure-Z two-qubit term (always present: z0 z1 coupling).
    let term = terms
        .iter()
        .find(|t| t.string.x == 0 && t.string.weight() == 2)
        .expect("ZZ term exists");
    let (q0, q1) = {
        let mut iter = (0..64u32).filter(|&q| term.string.axis_at(q).is_some());
        (iter.next().unwrap(), iter.next().unwrap())
    };
    assert!(q0 < 4 && q1 < 4, "indices within the 4-qubit register");
    let angle = term.angle;
    let out = run_with_config(2, cfg(55), move |ctx| {
        // Rank 0 holds the two involved qubits of the 4-qubit register...
        // distribute instead: rank 0 gets q0, rank 1 gets q1, and apply the
        // ZZ rotation via the distributed gadget.
        let q = ctx.alloc_one();
        ctx.h(&q).unwrap();
        if ctx.rank() == 0 {
            qalgo::gadgets::zz_rotation_local(ctx, &q, 1, 4).unwrap();
        } else {
            qalgo::gadgets::zz_rotation_remote(ctx, &q, angle, 0, 4).unwrap();
        }
        ctx.barrier();
        // Dense reference of exp(-i angle/2 ZZ) on |++>.
        let reference = {
            let mut sim = qsim::Simulator::new(0);
            let a = sim.alloc();
            let b = sim.alloc();
            sim.apply(qsim::Gate::H, a).unwrap();
            sim.apply(qsim::Gate::H, b).unwrap();
            sim.cnot(a, b).unwrap();
            sim.apply(qsim::Gate::Rz(angle), b).unwrap();
            sim.cnot(a, b).unwrap();
            sim.state_vector(&[a, b]).unwrap()
        };
        let ids: Vec<u64> = vec![q.id().0];
        let f = fidelity_vs_reference(ctx, ids, &reference);
        ctx.measure_and_free(q).unwrap();
        f
    });
    assert!((out[0] - 1.0).abs() < 1e-8, "fidelity {}", out[0]);
}

#[test]
fn maxcut_pipeline_optimum_on_bipartite_graph() {
    let graph = qalgo::Graph::cycle(4);
    let g = graph.clone();
    let out = run_with_config(2, cfg(99), move |ctx| {
        qalgo::maxcut::anneal_maxcut(ctx, &g, 45, 0.4).unwrap()
    });
    let assignment: Vec<bool> = out.into_iter().flatten().collect();
    let cut = graph.cut_value(&assignment);
    assert!(
        cut >= 3,
        "cycle-4 anneal reached cut {cut} ({assignment:?})"
    );
}

#[test]
fn fig7_shape_holds_on_small_ring() {
    // The Fig. 7 orderings on a laptop-sized instance: JW costs more than
    // BK in-place; const-depth costs less than in-place for JW.
    let h_jw = qchem::molecular_hamiltonian(
        &qchem::Molecule::hydrogen_ring(4, 1.0),
        qchem::Encoding::JordanWigner,
    );
    let h_bk = qchem::molecular_hamiltonian(
        &qchem::Molecule::hydrogen_ring(4, 1.0),
        qchem::Encoding::BravyiKitaev,
    );
    let layout = qchem::BlockLayout::new(8, 8);
    let jw_in = qchem::trotter_step_epr_cost(&h_jw, &layout, qchem::CircuitMethod::InPlace);
    let bk_in = qchem::trotter_step_epr_cost(&h_bk, &layout, qchem::CircuitMethod::InPlace);
    let jw_cat = qchem::trotter_step_epr_cost(&h_jw, &layout, qchem::CircuitMethod::ConstantDepth);
    assert!(jw_in > bk_in, "JW {jw_in} vs BK {bk_in}");
    assert!(jw_in > jw_cat, "in-place {jw_in} vs const-depth {jw_cat}");
}
