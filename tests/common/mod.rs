//! Helpers shared across the integration-test targets. Each target that
//! wants them declares `mod common;` — cargo compiles the module into that
//! target, so items unused by one suite are normal (hence the allow).
#![allow(dead_code)]

pub mod conformance;
