//! The shared cross-backend conformance oracle.
//!
//! Every suite that asserts "backend A is observably identical to backend
//! B per seed" goes through this module: one `Step` vocabulary for random
//! Clifford+T circuits with flush points, one `Outcome` capture of every
//! observable a backend exposes, one canonical float comparison, and one
//! dense-state-vector oracle assertion. The suites differ only in *which*
//! pair they compare (batched vs eager, in-process vs socket transport,
//! sparse/sharded/remote vs the dense oracle) — never in how they run the
//! circuit or read it out.
//!
//! ## Canonical comparison rule
//!
//! Floats are compared as bit patterns — the acceptance bar is
//! bit-identity, not tolerance — under exactly one equivalence: `-0.0` is
//! canonicalized to `+0.0` ([`canon_bits`]). That is the documented
//! freedom of the sparse engine (see `qsim::sparse`): a pruned exact zero
//! and a dense `-0.0` are the same physical amplitude. Everything else,
//! including the last ulp of every nonzero amplitude, expectation value,
//! and noise-perturbed trajectory, must match exactly.

use qmpi::{run_with_config, BackendKind, BatchPolicy, QmpiConfig, QmpiRank};
use qsim::{Gate, NoiseModel, Pauli};

/// One step of a circuit (indices reduced mod the qubit count).
#[derive(Clone, Copy, Debug)]
pub enum Step {
    G(Gate, usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    /// An explicit `QmpiRank::flush` — a no-op for program semantics, so
    /// sprinkling these anywhere must never change any observable.
    Flush,
}

/// Everything a backend lets us observe, in exactly-comparable form
/// (floats as canonicalized bit patterns, see the module docs).
#[derive(Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Dense amplitudes as bit patterns (empty on stabilizer/trace).
    pub amps: Vec<(u64, u64)>,
    /// Per-qubit <Z> (plus one joint string) as bit patterns.
    pub expectations: Vec<u64>,
    /// Final measurement outcome of every qubit.
    pub outcomes: Vec<bool>,
    /// (gates, measurements) from the backend counters.
    pub counts: (u64, u64),
    /// Trace engine's modeled error-free probability, as bits.
    pub fidelity: Option<u64>,
    /// (command rounds, exchange rounds) of a remote transport. Left
    /// `None` by [`run_circuit`]; the transport suite fills it in from
    /// [`TransportObs`] when the protocol schedule itself is under test.
    pub rounds: Option<(u64, u64)>,
}

/// Transport counters observed by a run on a process-separated backend.
pub struct TransportObs {
    pub wire_bytes: u64,
    pub respawns: u64,
    pub command_rounds: u64,
    pub exchange_rounds: u64,
}

/// Canonicalizes a float for bitwise comparison: `-0.0` and `+0.0` are
/// the same observable. Everything else compares exactly.
pub fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Points every engine in the calling test binary at the `qworker` binary
/// Cargo built alongside the suite (CI lanes that invoke a suite directly
/// set the variable themselves).
pub fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("QMPI_QWORKER_BIN").is_none() {
            std::env::set_var("QMPI_QWORKER_BIN", env!("CARGO_BIN_EXE_qworker"));
        }
    });
}

/// Drives `steps` through the rank. With `clifford_only` (the stabilizer
/// tableau), non-Clifford gates are substituted with `S` so every backend
/// executes the same step *count*.
pub fn apply_steps(ctx: &QmpiRank, qs: &[qmpi::Qubit], steps: &[Step], clifford_only: bool) {
    let n = qs.len();
    for &step in steps {
        match step {
            Step::G(g, t) => {
                let g = if clifford_only && !g.is_clifford() {
                    Gate::S
                } else {
                    g
                };
                ctx.apply(g, &qs[t % n]).unwrap();
            }
            Step::Cnot(c, t) if c % n != t % n => {
                ctx.cnot(&qs[c % n], &qs[t % n]).unwrap();
            }
            Step::Cz(a, b) if a % n != b % n => {
                ctx.cz(&qs[a % n], &qs[b % n]).unwrap();
            }
            Step::Swap(a, b) if a % n != b % n => {
                ctx.swap(&qs[a % n], &qs[b % n]).unwrap();
            }
            Step::Flush => ctx.flush().unwrap(),
            _ => {}
        }
    }
}

/// Runs `steps` on one rank under `cfg` and captures every observable the
/// backend exposes, plus transport counters when the backend has any.
pub fn run_circuit(
    cfg: QmpiConfig,
    n_qubits: usize,
    steps: &[Step],
    clifford_only: bool,
) -> (Outcome, Option<TransportObs>) {
    let steps = steps.to_vec();
    let out = run_with_config(1, cfg, move |ctx| {
        let qs = ctx.alloc_qmem(n_qubits);
        apply_steps(ctx, &qs, &steps, clifford_only);
        // Dense snapshot (flushes via backend()); engines without
        // amplitudes report none.
        let ids: Vec<qsim::QubitId> = qs.iter().map(|q| q.id()).collect();
        let amps = match ctx.backend().state_vector(&ids) {
            Ok(st) => (0..st.len())
                .map(|i| {
                    let a = st.amplitude(i);
                    (canon_bits(a.re), canon_bits(a.im))
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        let mut expectations: Vec<u64> = qs
            .iter()
            .map(|q| canon_bits(ctx.expectation(&[(q, Pauli::Z)]).unwrap()))
            .collect();
        expectations.push(canon_bits(
            ctx.expectation(&[(&qs[0], Pauli::Z), (&qs[n_qubits - 1], Pauli::Z)])
                .unwrap(),
        ));
        let fidelity = ctx.backend().modeled_fidelity().map(f64::to_bits);
        let outcomes: Vec<bool> = qs
            .into_iter()
            .map(|q| ctx.measure_and_free(q).unwrap())
            .collect();
        let counts = ctx.backend().counts();
        let transport = ctx.backend().transport_stats().map(|t| TransportObs {
            wire_bytes: t.wire_bytes,
            respawns: t.respawns,
            command_rounds: t.command_rounds,
            exchange_rounds: t.exchange_rounds,
        });
        (
            Outcome {
                amps,
                expectations,
                outcomes,
                counts: (counts.gates, counts.measurements),
                fidelity,
                rounds: None,
            },
            transport,
        )
    });
    out.into_iter().next().unwrap()
}

/// The cross-backend oracle: `kind` must produce an [`Outcome`]
/// bit-identical (under the canonical rule) to the dense state-vector
/// engine on the same seed, circuit, noise model, and [`BatchPolicy`] —
/// including with the plan-time optimizer on, where every backend
/// executes the same fused stream with the same per-amplitude arithmetic.
/// Only meaningful for amplitude-class backends — both sides must
/// actually expose amplitudes, and the helper enforces that.
pub fn assert_matches_dense_oracle(
    kind: BackendKind,
    n_qubits: usize,
    steps: &[Step],
    noise: NoiseModel,
    seed: u64,
    policy: BatchPolicy,
) {
    let cfg = |k: BackendKind| {
        QmpiConfig::new()
            .seed(seed)
            .backend(k)
            .noise(noise)
            .batch(policy)
    };
    let (dense, _) = run_circuit(cfg(BackendKind::StateVector), n_qubits, steps, false);
    let (other, _) = run_circuit(cfg(kind), n_qubits, steps, false);
    assert!(
        !dense.amps.is_empty() && !other.amps.is_empty(),
        "{kind}: the conformance oracle only applies to amplitude-class backends"
    );
    assert_eq!(
        dense, other,
        "{kind} diverged from the dense state-vector oracle (seed {seed}, {policy:?})"
    );
}

/// The fusion-vs-eager oracle: the same circuit run unfused-eager and
/// fused-batched on `kind` must agree on every amplitude and expectation
/// within `tol` (bitwise under the canonical rule when `tol == 0.0` —
/// permutation/phase circuits, whose fused kernels stay exact in IEEE
/// arithmetic), with identical measurement outcomes, while the fused run
/// applies *no more* kernel sweeps. `tol > 0.0` covers general Clifford+T
/// streams, where fusing re-associates floating-point matrix products.
pub fn assert_fused_matches_unfused(
    kind: BackendKind,
    n_qubits: usize,
    steps: &[Step],
    seed: u64,
    tol: f64,
) {
    let cfg = |policy: BatchPolicy| {
        QmpiConfig::new()
            .seed(seed)
            .backend(kind)
            .noise(NoiseModel::ideal())
            .batch(policy)
    };
    let (eager, _) = run_circuit(cfg(BatchPolicy::eager()), n_qubits, steps, false);
    let (fused, _) = run_circuit(cfg(BatchPolicy::default()), n_qubits, steps, false);
    assert!(
        !eager.amps.is_empty(),
        "{kind}: the fusion oracle only applies to amplitude-class backends"
    );
    assert!(
        fused.counts.0 <= eager.counts.0,
        "{kind}: fusion must never add kernel sweeps ({} fused vs {} eager)",
        fused.counts.0,
        eager.counts.0
    );
    assert_eq!(
        fused.outcomes, eager.outcomes,
        "{kind}: measurement trajectory diverged (seed {seed})"
    );
    assert_eq!(fused.counts.1, eager.counts.1, "{kind}: measurement count");
    if tol == 0.0 {
        assert_eq!(fused.amps, eager.amps, "{kind}: exact circuit diverged");
        assert_eq!(fused.expectations, eager.expectations, "{kind}");
    } else {
        for (i, (f, e)) in fused.amps.iter().zip(&eager.amps).enumerate() {
            let d_re = (f64::from_bits(f.0) - f64::from_bits(e.0)).abs();
            let d_im = (f64::from_bits(f.1) - f64::from_bits(e.1)).abs();
            assert!(
                d_re <= tol && d_im <= tol,
                "{kind}: amp[{i}] off by ({d_re:e}, {d_im:e}) > {tol:e}"
            );
        }
        for (i, (f, e)) in fused
            .expectations
            .iter()
            .zip(&eager.expectations)
            .enumerate()
        {
            let d = (f64::from_bits(*f) - f64::from_bits(*e)).abs();
            assert!(d <= tol, "{kind}: expectation[{i}] off by {d:e} > {tol:e}");
        }
    }
}

pub mod strategies {
    //! Proptest circuit generators shared across the suites.
    use super::Step;
    use proptest::prelude::*;
    use qsim::Gate;

    /// A random circuit step over `n` qubits: the full Clifford+T gate
    /// set plus fixed-angle rotations, 2q gates, and (optionally)
    /// explicit flush points.
    pub fn arb_step(n: usize, with_flush: bool) -> BoxedStrategy<Step> {
        let gate = (0usize..10, 0..n).prop_map(|(g, t)| {
            let gate = match g {
                0 => Gate::H,
                1 => Gate::S,
                2 => Gate::Sdg,
                3 => Gate::T,
                4 => Gate::Tdg,
                5 => Gate::X,
                6 => Gate::Y,
                7 => Gate::Z,
                8 => Gate::Ry(0.37),
                _ => Gate::Rz(1.1),
            };
            Step::G(gate, t)
        });
        let cnot = (0..n, 0..n).prop_map(|(c, t)| Step::Cnot(c, t));
        let cz = (0..n, 0..n).prop_map(|(a, b)| Step::Cz(a, b));
        let swap = (0..n, 0..n).prop_map(|(a, b)| Step::Swap(a, b));
        if with_flush {
            prop_oneof![gate, cnot, cz, swap, Just(Step::Flush)].boxed()
        } else {
            prop_oneof![gate, cnot, cz, swap].boxed()
        }
    }

    /// A whole random circuit of `len` steps.
    pub fn arb_steps(
        n: usize,
        with_flush: bool,
        len: std::ops::Range<usize>,
    ) -> impl Strategy<Value = Vec<Step>> {
        proptest::collection::vec(arb_step(n, with_flush), len)
    }
}
