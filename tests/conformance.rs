//! Cross-backend amplitude conformance suite: one harness, six backends.
//!
//! Every amplitude-class backend — sparse, lock-striped sharded (at one
//! and several shards), process-separated remote — must be bit-identical
//! to the dense state-vector oracle per seed, under the shared harness's
//! canonical rule (`-0.0 ≡ +0.0`, everything else exact): same
//! amplitudes, same expectation values, same measurement trajectory, same
//! counters, on random Clifford+T circuits with random flush points, with
//! and without batching, ideal and under Pauli / amplitude-damping noise.
//!
//! (The stabilizer and trace engines expose no amplitudes; their
//! conformance bar — batched-vs-eager self-identity on the observables
//! they do expose — lives in `tests/batching.rs`, driven by this same
//! harness.)
//!
//! The property module runs under the nightly stress lane's
//! `PROPTEST_CASES=320` sweep alongside the other in-tree proptest suites.

mod common;

use common::conformance::{assert_matches_dense_oracle, ensure_worker_bin, Step};
use qmpi::{BackendKind, BatchPolicy};
use qsim::{Gate, NoiseModel};

const N_QUBITS: usize = 10;

/// The batch-policy dimension of the sweep: eager dispatch, unfused
/// batching, coalescing off, and the full default — fusion-off stays
/// bit-identical to the pre-fusion engines, fusion-on must agree because
/// every backend executes the same optimized stream, and coalescing
/// on/off must agree because the window only *defers* a flush's dispatch
/// to the next synchronization point, never reorders it.
fn policies() -> [BatchPolicy; 4] {
    [
        BatchPolicy::eager(),
        BatchPolicy {
            fuse: false,
            ..BatchPolicy::default()
        },
        BatchPolicy {
            coalesce: false,
            ..BatchPolicy::default()
        },
        BatchPolicy::default(),
    ]
}

/// The in-process amplitude-class backends (cheap enough to sweep widely).
fn local_amplitude_kinds() -> [BackendKind; 3] {
    [
        BackendKind::Sparse,
        BackendKind::ShardedStateVector { shards: 1 },
        BackendKind::ShardedStateVector { shards: 8 },
    ]
}

fn fixed_circuit() -> Vec<Step> {
    use Step::*;
    vec![
        G(Gate::H, 0),
        Cnot(0, 1),
        Cnot(1, 2),
        G(Gate::T, 2),
        Flush,
        G(Gate::Ry(0.9), 7),
        Cz(2, 9),
        Swap(3, 8),
        G(Gate::Tdg, 5),
        Cnot(9, 4),
        Flush,
        G(Gate::Rz(1.1), 0),
        G(Gate::H, 6),
        Cz(6, 7),
    ]
}

#[test]
fn fixed_circuit_matches_dense_oracle_on_every_local_kind() {
    let steps = fixed_circuit();
    for kind in local_amplitude_kinds() {
        for policy in policies() {
            assert_matches_dense_oracle(kind, N_QUBITS, &steps, NoiseModel::ideal(), 42, policy);
        }
    }
}

#[test]
fn fixed_circuit_matches_dense_oracle_under_pauli_noise() {
    let steps = fixed_circuit();
    let noise =
        NoiseModel::depolarizing(0.25).with_measurement(qsim::NoiseChannel::Dephasing { p: 0.3 });
    for kind in local_amplitude_kinds() {
        for seed in [1u64, 7, 42] {
            assert_matches_dense_oracle(
                kind,
                N_QUBITS,
                &steps,
                noise,
                seed,
                BatchPolicy::default(),
            );
        }
    }
}

#[test]
fn fixed_circuit_matches_dense_oracle_under_amplitude_damping() {
    let steps = fixed_circuit();
    let noise = NoiseModel::amplitude_damping(0.2);
    for kind in local_amplitude_kinds() {
        for seed in [3u64, 19] {
            assert_matches_dense_oracle(
                kind,
                N_QUBITS,
                &steps,
                noise,
                seed,
                BatchPolicy::default(),
            );
        }
    }
}

/// The process-separated backend runs the fixed sweep too — it spawns
/// real worker children, so it gets its own (smaller) test.
#[test]
fn fixed_circuit_matches_dense_oracle_over_remote_workers() {
    ensure_worker_bin();
    let steps = fixed_circuit();
    let kind = BackendKind::RemoteSharded { shards: 2 };
    assert_matches_dense_oracle(
        kind,
        N_QUBITS,
        &steps,
        NoiseModel::ideal(),
        42,
        BatchPolicy::default(),
    );
    assert_matches_dense_oracle(
        kind,
        N_QUBITS,
        &steps,
        NoiseModel::depolarizing(0.2),
        7,
        BatchPolicy::default(),
    );
    // Coalescing off must land on the same amplitudes and trajectory —
    // the window never reorders a rank's stream, only defers its ship.
    assert_matches_dense_oracle(
        kind,
        N_QUBITS,
        &steps,
        NoiseModel::depolarizing(0.2),
        7,
        BatchPolicy {
            coalesce: false,
            ..BatchPolicy::default()
        },
    );
    assert_matches_dense_oracle(
        kind,
        N_QUBITS,
        &steps,
        NoiseModel::amplitude_damping(0.15),
        11,
        BatchPolicy::eager(),
    );
}

mod proptests {
    use super::*;
    use crate::common::conformance::strategies::arb_steps;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole acceptance property: on random 10-qubit
        /// Clifford+T circuits with random flush points, the sparse and
        /// sharded engines are bit-identical to the dense oracle, ideal
        /// and under depolarizing noise.
        #[test]
        fn random_circuits_match_dense_oracle(
            steps in arb_steps(N_QUBITS, true, 8..30),
            seed in 0u64..1000,
            p in 0.0f64..0.4,
            pol in 0usize..4,
        ) {
            let policy = policies()[pol];
            for kind in local_amplitude_kinds() {
                assert_matches_dense_oracle(kind, N_QUBITS, &steps, NoiseModel::ideal(), seed, policy);
                assert_matches_dense_oracle(kind, N_QUBITS, &steps, NoiseModel::depolarizing(p), seed, policy);
            }
        }

        /// Amplitude damping draws state-dependent Kraus trajectories —
        /// the harshest test of RNG-stream identity across engines.
        #[test]
        fn random_circuits_match_dense_under_amplitude_damping(
            steps in arb_steps(N_QUBITS, true, 8..24),
            seed in 0u64..1000,
            gamma in 0.0f64..0.35,
        ) {
            for kind in local_amplitude_kinds() {
                assert_matches_dense_oracle(
                    kind, N_QUBITS, &steps, NoiseModel::amplitude_damping(gamma), seed,
                    BatchPolicy::default(),
                );
            }
        }
    }

    proptest! {
        // Each case spawns worker processes; keep the default sweep small
        // (the nightly stress lane raises it via PROPTEST_CASES).
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Remote workers against the dense oracle on random circuits.
        #[test]
        fn remote_random_circuits_match_dense_oracle(
            steps in arb_steps(N_QUBITS, true, 6..20),
            seed in 0u64..1000,
            p in 0.0f64..0.3,
        ) {
            ensure_worker_bin();
            let kind = BackendKind::RemoteSharded { shards: 2 };
            assert_matches_dense_oracle(
                kind, N_QUBITS, &steps, NoiseModel::ideal(), seed, BatchPolicy::default(),
            );
            assert_matches_dense_oracle(
                kind, N_QUBITS, &steps, NoiseModel::depolarizing(p), seed, BatchPolicy::default(),
            );
        }
    }
}
