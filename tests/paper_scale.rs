//! Paper-scale acceptance on the sparse backend: *real amplitudes* at
//! rank counts where every dense engine is out of memory.
//!
//! The stabilizer suite already proves the protocols run at 64–96 ranks,
//! but a tableau has no amplitudes to show. The sparse engine stores only
//! the nonzero amplitudes, so a 128-rank GHZ chain is two map entries —
//! and these tests assert the actual numbers: both GHZ amplitudes are
//! `1/sqrt(2)`, the Z⊗128 and X⊗128 parities are exactly `+1`, and a
//! state teleported through 64 hops arrives with the analytically exact
//! complex amplitudes, not just the right expectation values.
//!
//! Each test carries a generous wall-clock bound: the point of the sparse
//! representation is that these runs take milliseconds of simulator time,
//! and an accidental O(2^n) fallback would blow the bound immediately.

use qmpi::{run_with_config, BackendKind, QmpiConfig, DIAG_RANK};
use qsim::{Pauli, QubitId};

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A 128-rank GHZ state built as a sequential entangled-copy chain (rank
/// r copies to rank r+1). The batched cat-state establishment is *not*
/// sparse-friendly — it creates all 127 EPR pairs before merging, a
/// 2^127-term product state — while the chain keeps the working set at a
/// handful of nonzero amplitudes throughout.
#[test]
fn sparse_carries_real_amplitudes_through_128_rank_ghz_chain() {
    const N: usize = 128;
    let start = std::time::Instant::now();
    let cfg = QmpiConfig::new().seed(9).backend(BackendKind::Sparse);
    let out = run_with_config(N, cfg, |ctx| {
        let me = ctx.rank();
        let q = if me == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            ctx.send(&q, 1, 0).unwrap();
            q
        } else {
            let q = ctx.recv(me - 1, 0).unwrap();
            if me + 1 < N {
                ctx.send(&q, me + 1, 0).unwrap();
            }
            q
        };
        // Rank 0 reads the global state while the shares are pinned
        // between the two barriers.
        let ids = ctx.classical().gather(&q.id().0, 0);
        let ghz_checks = ids.map(|raw| {
            let ids: Vec<QubitId> = raw.into_iter().map(QubitId).collect();
            assert_eq!(ids.len(), N);
            let b = ctx.backend();
            // The two basis states of the cat: |0...0> and |1...1>.
            let a_zeros = b.amplitude_of(DIAG_RANK, &[]).unwrap();
            let a_ones = b.amplitude_of(DIAG_RANK, &ids).unwrap();
            // Any third basis state must be an exact zero.
            let a_other = b.amplitude_of(DIAG_RANK, &ids[..1]).unwrap();
            let zs: Vec<(QubitId, Pauli)> = ids.iter().map(|&i| (i, Pauli::Z)).collect();
            let xs: Vec<(QubitId, Pauli)> = ids.iter().map(|&i| (i, Pauli::X)).collect();
            let z_parity = b.expectation(DIAG_RANK, &zs).unwrap();
            let x_parity = b.expectation(DIAG_RANK, &xs).unwrap();
            (a_zeros, a_ones, a_other, z_parity, x_parity)
        });
        ctx.barrier();
        let m = ctx.measure_and_free(q).unwrap();
        (m, ghz_checks)
    });
    let elapsed = start.elapsed();

    let (a_zeros, a_ones, a_other, z_parity, x_parity) =
        out[0].1.expect("rank 0 ran the amplitude checks");
    for (label, a) in [("<0...0|psi>", a_zeros), ("<1...1|psi>", a_ones)] {
        assert!(
            (a.re - FRAC_1_SQRT_2).abs() < 1e-9 && a.im.abs() < 1e-9,
            "{label} must be 1/sqrt(2), got {}+{}i",
            a.re,
            a.im
        );
    }
    assert_eq!(
        (a_other.re, a_other.im),
        (0.0, 0.0),
        "|10...0> carries no amplitude in a cat state"
    );
    assert!(
        (z_parity - 1.0).abs() < 1e-9,
        "<Z x128> must be +1 (128 is even), got {z_parity}"
    );
    assert!(
        (x_parity - 1.0).abs() < 1e-9,
        "<X x128> must be +1 on the cat state, got {x_parity}"
    );
    let m0 = out[0].0;
    assert!(
        out.iter().all(|&(m, _)| m == m0),
        "all 128 GHZ shares must collapse to the same value"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "128-rank GHZ chain took {elapsed:?}; the sparse working set must stay tiny"
    );
}

/// A non-Clifford single-qubit state teleported through a 64-hop chain
/// (65 ranks) arrives with analytically exact amplitudes — the hardest
/// end-to-end check that 64 rounds of EPR + measurement + Pauli fixups
/// reconstruct the state perfectly, at a rank count no dense engine can
/// represent alongside the protocol's ancillas.
#[test]
fn sparse_teleports_exact_amplitudes_through_64_hops() {
    const HOPS: usize = 64;
    const N: usize = HOPS + 1;
    let theta = 0.73_f64;
    let phi = -1.2_f64;
    let start = std::time::Instant::now();
    let cfg = QmpiConfig::new().seed(31).backend(BackendKind::Sparse);
    let out = run_with_config(N, cfg, move |ctx| {
        let me = ctx.rank();
        if me == 0 {
            let q = ctx.alloc_one();
            ctx.ry(&q, theta).unwrap();
            ctx.rz(&q, phi).unwrap();
            ctx.send_move(q, 1, 0).unwrap();
            None
        } else {
            let q = ctx.recv_move(me - 1, 0).unwrap();
            if me < HOPS {
                ctx.send_move(q, me + 1, 0).unwrap();
                None
            } else {
                // The last rank owns the only live qubit in the machine:
                // probe both amplitudes and the Bloch components.
                let b = ctx.backend();
                let alpha = b.amplitude_of(me, &[]).unwrap();
                let beta = b.amplitude_of(me, &[q.id()]).unwrap();
                let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                let y = ctx.expectation(&[(&q, Pauli::Y)]).unwrap();
                ctx.measure_and_free(q).unwrap();
                Some((alpha, beta, z, x, y))
            }
        }
    });
    let elapsed = start.elapsed();

    let (alpha, beta, z, x, y) = out[HOPS].expect("the last hop reports the state");
    // Ry(theta) then Rz(phi) on |0>:
    //   alpha = cos(theta/2) e^{-i phi/2},  beta = sin(theta/2) e^{+i phi/2}.
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let (pc, ps) = ((phi / 2.0).cos(), (phi / 2.0).sin());
    for (label, got, want) in [
        ("Re(alpha)", alpha.re, c * pc),
        ("Im(alpha)", alpha.im, -c * ps),
        ("Re(beta)", beta.re, s * pc),
        ("Im(beta)", beta.im, s * ps),
        ("<Z>", z, theta.cos()),
        ("<X>", x, theta.sin() * phi.cos()),
        ("<Y>", y, theta.sin() * phi.sin()),
    ] {
        assert!(
            (got - want).abs() < 1e-9,
            "{label} after 64 teleport hops: got {got}, want {want}"
        );
    }
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "64-hop teleport chain took {elapsed:?}; the sparse working set must stay tiny"
    );
}
