//! Qubit-to-node layout and per-term EPR costs (Fig. 7).
//!
//! "The spin-orbitals are fixed to a specific node for the full duration"
//! (Fig. 7 caption) — we use the natural block distribution. For each
//! Trotter term (a Pauli string), the EPR cost of the Fig. 6 circuit
//! methods depends on how the term's support spreads over nodes:
//!
//! * **in-place** (Fig. 6a): a balanced binary fan-in tree of CNOTs over
//!   the support, paid twice (compute + uncompute); only cross-node CNOTs
//!   cost an EPR pair. All-distinct-nodes cost: `2(k-1)`.
//! * **out-of-place** (Fig. 6b): one CNOT per support qubit into an
//!   ancilla (placed on the node holding the most support); uncompute is
//!   classical. All-distinct cost: `k`.
//! * **constant-depth** (Fig. 6c): a cat state over the `m` involved
//!   nodes, ancilla on one of them (the caption's assumption): `m - 1`.

use crate::pauli::PauliSum;

/// Block distribution of `n_qubits` over `n_nodes`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockLayout {
    /// Total qubits (spin-orbitals).
    pub n_qubits: usize,
    /// Number of nodes.
    pub n_nodes: usize,
}

impl BlockLayout {
    /// Creates a layout; `n_qubits` must be divisible by `n_nodes`.
    pub fn new(n_qubits: usize, n_nodes: usize) -> Self {
        assert!(n_nodes >= 1 && n_qubits >= n_nodes, "invalid layout");
        assert_eq!(n_qubits % n_nodes, 0, "block layout needs divisible sizes");
        BlockLayout { n_qubits, n_nodes }
    }

    /// Qubits per node.
    pub fn block(&self) -> usize {
        self.n_qubits / self.n_nodes
    }

    /// The node hosting `qubit`.
    #[inline]
    pub fn node_of(&self, qubit: u32) -> usize {
        qubit as usize / self.block()
    }

    /// Distinct nodes touched by a support mask.
    pub fn nodes_of_support(&self, support: u64) -> Vec<usize> {
        let mut nodes = Vec::new();
        let mut m = support;
        while m != 0 {
            let q = m.trailing_zeros();
            let node = self.node_of(q);
            if nodes.last() != Some(&node) {
                nodes.push(node);
            }
            m &= m - 1;
        }
        nodes.dedup();
        nodes
    }
}

/// The Fig. 6 circuit methods (mirrors `sendq::ParityMethod`; duplicated
/// here so the chemistry crate stays substrate-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitMethod {
    /// Fig. 6(a) — in-place binary tree.
    InPlace,
    /// Fig. 6(b) — out-of-place serial CNOTs.
    OutOfPlace,
    /// Fig. 6(c) — constant-depth cat state.
    ConstantDepth,
}

/// EPR pairs needed to execute one term with the given support under the
/// given method.
pub fn term_epr_cost(layout: &BlockLayout, support: u64, method: CircuitMethod) -> u64 {
    let k = support.count_ones() as usize;
    if k <= 1 {
        return 0;
    }
    match method {
        CircuitMethod::InPlace => 2 * in_place_cross_edges(layout, support),
        CircuitMethod::OutOfPlace => out_of_place_remote_qubits(layout, support),
        CircuitMethod::ConstantDepth => {
            let m = layout.nodes_of_support(support).len() as u64;
            m.saturating_sub(1)
        }
    }
}

/// Cross-node edges of a balanced fan-in tree over the support qubits
/// (sorted by index; groups represented by their first qubit).
fn in_place_cross_edges(layout: &BlockLayout, support: u64) -> u64 {
    let mut qubits: Vec<u32> = Vec::with_capacity(support.count_ones() as usize);
    let mut m = support;
    while m != 0 {
        qubits.push(m.trailing_zeros());
        m &= m - 1;
    }
    let k = qubits.len();
    let mut cross = 0u64;
    let mut stride = 1usize;
    while stride < k {
        let mut i = 0;
        while i + stride < k {
            let a = qubits[i];
            let b = qubits[i + stride];
            if layout.node_of(a) != layout.node_of(b) {
                cross += 1;
            }
            i += 2 * stride;
        }
        stride *= 2;
    }
    cross
}

/// Support qubits not co-located with the ancilla, which is placed on the
/// node holding the largest share of the support.
fn out_of_place_remote_qubits(layout: &BlockLayout, support: u64) -> u64 {
    let mut per_node = vec![0u64; layout.n_nodes];
    let mut m = support;
    let mut total = 0u64;
    while m != 0 {
        let q = m.trailing_zeros();
        per_node[layout.node_of(q)] += 1;
        total += 1;
        m &= m - 1;
    }
    let best = per_node.iter().copied().max().unwrap_or(0);
    total - best
}

/// Total EPR pairs for one first-order Trotter step of a Hamiltonian: each
/// non-identity term is executed once (the Fig. 7 quantity).
pub fn trotter_step_epr_cost(h: &PauliSum, layout: &BlockLayout, method: CircuitMethod) -> u64 {
    h.iter()
        .filter(|(s, _)| s.support() != 0)
        .map(|(s, _)| term_epr_cost(layout, s.support(), method))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{PauliString, C64};

    #[test]
    fn block_assignment() {
        let l = BlockLayout::new(8, 4);
        assert_eq!(l.block(), 2);
        assert_eq!(l.node_of(0), 0);
        assert_eq!(l.node_of(1), 0);
        assert_eq!(l.node_of(2), 1);
        assert_eq!(l.node_of(7), 3);
    }

    #[test]
    fn nodes_of_support_dedups() {
        let l = BlockLayout::new(8, 4);
        assert_eq!(l.nodes_of_support(0b0000_0011), vec![0]);
        assert_eq!(l.nodes_of_support(0b1100_0011), vec![0, 3]);
        assert_eq!(l.nodes_of_support(0b1111_1111), vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_terms_are_free() {
        let l = BlockLayout::new(8, 2);
        for m in [
            CircuitMethod::InPlace,
            CircuitMethod::OutOfPlace,
            CircuitMethod::ConstantDepth,
        ] {
            assert_eq!(term_epr_cost(&l, 0b0000_1111, m), 0, "{m:?}");
            assert_eq!(term_epr_cost(&l, 0b1, m), 0, "{m:?}");
        }
    }

    #[test]
    fn all_distinct_nodes_match_paper_formulas() {
        // k = 4 qubits, one per node: in-place 2(k-1) = 6, out-of-place
        // k - 1 = 3 (ancilla co-located with one qubit), const-depth m-1 = 3.
        let l = BlockLayout::new(4, 4);
        let support = 0b1111u64;
        assert_eq!(term_epr_cost(&l, support, CircuitMethod::InPlace), 6);
        assert_eq!(term_epr_cost(&l, support, CircuitMethod::OutOfPlace), 3);
        assert_eq!(term_epr_cost(&l, support, CircuitMethod::ConstantDepth), 3);
    }

    #[test]
    fn in_place_tree_counts_only_cross_edges() {
        // 4 qubits on 2 nodes (2 each): tree edges (0,1),(2,3),(0,2):
        // (0,1) local, (2,3) local, (0,2) cross => cost 2*1 = 2.
        let l = BlockLayout::new(4, 2);
        assert_eq!(term_epr_cost(&l, 0b1111, CircuitMethod::InPlace), 2);
    }

    #[test]
    fn const_depth_counts_nodes_not_qubits() {
        // 4 support qubits on 2 of 4 nodes => m-1 = 1 regardless of k.
        let l = BlockLayout::new(8, 4);
        let support = 0b0000_0011 | 0b1100_0000;
        assert_eq!(
            term_epr_cost(&l, support, CircuitMethod::ConstantDepth),
            2 - 1
        );
        // Spanning three nodes => 2.
        let support3 = 0b0000_0011 | 0b0011_0000 | 0b1100_0000;
        assert_eq!(
            term_epr_cost(&l, support3, CircuitMethod::ConstantDepth),
            3 - 1
        );
    }

    #[test]
    fn single_node_layout_is_always_free() {
        let l = BlockLayout::new(8, 1);
        for m in [
            CircuitMethod::InPlace,
            CircuitMethod::OutOfPlace,
            CircuitMethod::ConstantDepth,
        ] {
            assert_eq!(term_epr_cost(&l, 0b1111_1111, m), 0, "{m:?}");
        }
    }

    #[test]
    fn trotter_cost_sums_terms() {
        let mut h = PauliSum::zero();
        h.add_term(PauliString::IDENTITY, C64::real(1.0)); // skipped
        h.add_term(PauliString::z_mask(0b11), C64::real(0.5)); // local on node 0
        h.add_term(PauliString::z_mask(0b1001), C64::real(0.5)); // cross
        let l = BlockLayout::new(4, 2);
        let cost = trotter_step_epr_cost(&h, &l, CircuitMethod::ConstantDepth);
        assert_eq!(cost, 1);
    }

    #[test]
    fn more_nodes_cannot_reduce_const_depth_below_in_place_ratio() {
        // Sanity on the Fig. 7 ordering: for a full-weight term the
        // constant-depth method uses about half the pairs of in-place.
        let l = BlockLayout::new(64, 64);
        let support = u64::MAX;
        let inp = term_epr_cost(&l, support, CircuitMethod::InPlace);
        let cat = term_epr_cost(&l, support, CircuitMethod::ConstantDepth);
        assert_eq!(inp, 2 * 63);
        assert_eq!(cat, 63);
    }
}
