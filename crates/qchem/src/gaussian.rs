//! Contracted s-type Gaussian basis functions (STO-3G for hydrogen).
//!
//! Hydrogen's STO-3G basis has a single 1s orbital expanded in three
//! primitive Gaussians, which keeps every molecular integral in closed form
//! (only s-functions appear). Exponents/coefficients are the standard
//! STO-3G values for H (zeta = 1.24 scaling already applied).

/// One primitive Gaussian `d * N(alpha) * exp(-alpha r^2)` where `N` is the
/// s-type normalization `(2 alpha / pi)^{3/4}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Primitive {
    /// Exponent `alpha` (bohr^-2).
    pub alpha: f64,
    /// Contraction coefficient (times primitive normalization).
    pub coeff: f64,
}

/// A contracted s-type Gaussian centered somewhere in space.
#[derive(Clone, Debug, PartialEq)]
pub struct ContractedGaussian {
    /// Center in bohr.
    pub center: [f64; 3],
    /// Primitives (normalized).
    pub primitives: Vec<Primitive>,
}

/// STO-3G exponents for hydrogen 1s (bohr^-2).
pub const STO3G_H_EXPONENTS: [f64; 3] = [3.425_250_91, 0.623_913_73, 0.168_855_40];
/// STO-3G contraction coefficients for hydrogen 1s.
pub const STO3G_H_COEFFS: [f64; 3] = [0.154_328_97, 0.535_328_14, 0.444_634_54];

impl ContractedGaussian {
    /// The STO-3G hydrogen 1s orbital at `center` (bohr).
    pub fn sto3g_hydrogen(center: [f64; 3]) -> Self {
        let primitives = STO3G_H_EXPONENTS
            .iter()
            .zip(STO3G_H_COEFFS.iter())
            .map(|(&alpha, &d)| Primitive {
                alpha,
                // Fold the s-primitive normalization into the coefficient.
                coeff: d * (2.0 * alpha / std::f64::consts::PI).powf(0.75),
            })
            .collect();
        ContractedGaussian { center, primitives }
    }

    /// Evaluates the orbital at a point (bohr) — used in tests.
    pub fn evaluate(&self, r: [f64; 3]) -> f64 {
        let dr2 = dist2(self.center, r);
        self.primitives
            .iter()
            .map(|p| p.coeff * (-p.alpha * dr2).exp())
            .sum()
    }
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// Gaussian product center `(alpha*A + beta*B)/(alpha+beta)`.
#[inline]
pub fn product_center(alpha: f64, a: [f64; 3], beta: f64, b: [f64; 3]) -> [f64; 3] {
    let p = alpha + beta;
    [
        (alpha * a[0] + beta * b[0]) / p,
        (alpha * a[1] + beta * b[1]) / p,
        (alpha * a[2] + beta * b[2]) / p,
    ]
}

/// 1 angstrom in bohr.
pub const ANGSTROM: f64 = 1.889_726_124_625_157;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sto3g_h_has_three_primitives() {
        let g = ContractedGaussian::sto3g_hydrogen([0.0; 3]);
        assert_eq!(g.primitives.len(), 3);
        for p in &g.primitives {
            assert!(p.alpha > 0.0 && p.coeff > 0.0);
        }
    }

    #[test]
    fn orbital_decays_with_distance() {
        let g = ContractedGaussian::sto3g_hydrogen([0.0; 3]);
        let v0 = g.evaluate([0.0; 3]);
        let v1 = g.evaluate([1.0, 0.0, 0.0]);
        let v3 = g.evaluate([3.0, 0.0, 0.0]);
        assert!(v0 > v1 && v1 > v3 && v3 > 0.0);
    }

    #[test]
    fn product_center_interpolates() {
        let c = product_center(1.0, [0.0; 3], 3.0, [4.0, 0.0, 0.0]);
        assert!((c[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn angstrom_constant() {
        assert!((ANGSTROM - 1.8897261246).abs() < 1e-9);
    }
}
