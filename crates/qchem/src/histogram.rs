//! Term-weight histograms — the quantity plotted in the paper's Fig. 5
//! ("The number of qubits involved in each term of the form defined by
//! Eq. (1) is plotted as a histogram").

use crate::pauli::PauliSum;

/// Histogram of Pauli-string weights. Index = number of qubits per term;
/// value = number of terms. The identity (weight 0) is excluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightHistogram {
    counts: Vec<usize>,
}

impl WeightHistogram {
    /// Builds the histogram of `sum` over `n_qubits` qubits.
    pub fn of(sum: &PauliSum, n_qubits: usize) -> Self {
        let mut counts = vec![0usize; n_qubits + 1];
        for (s, _) in sum.iter() {
            let w = s.weight() as usize;
            if w > 0 {
                counts[w] += 1;
            }
        }
        WeightHistogram { counts }
    }

    /// Number of terms with exactly `weight` qubits.
    pub fn count(&self, weight: usize) -> usize {
        self.counts.get(weight).copied().unwrap_or(0)
    }

    /// Total number of (non-identity) terms.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Largest weight with a nonzero count.
    pub fn max_weight(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean weight over all terms.
    pub fn mean_weight(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().enumerate().map(|(w, &c)| w * c).sum();
        sum as f64 / total as f64
    }

    /// `(weight, count)` pairs with nonzero counts, ascending.
    pub fn nonzero(&self) -> Vec<(usize, usize)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(w, &c)| (w, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{PauliString, PauliSum, C64};

    #[test]
    fn histogram_counts_weights() {
        let mut s = PauliSum::zero();
        s.add_term(PauliString::IDENTITY, C64::real(1.0));
        s.add_term(PauliString::z_mask(0b1), C64::real(1.0));
        s.add_term(PauliString::z_mask(0b11), C64::real(1.0));
        s.add_term(PauliString::z_mask(0b110), C64::real(1.0));
        let h = WeightHistogram::of(&s, 4);
        assert_eq!(h.count(0), 0, "identity excluded");
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_weight(), 2);
        assert!((h.mean_weight() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sum_histogram() {
        let h = WeightHistogram::of(&PauliSum::zero(), 4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_weight(), 0);
        assert_eq!(h.mean_weight(), 0.0);
        assert!(h.nonzero().is_empty());
    }
}
