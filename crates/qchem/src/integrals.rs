//! Molecular integrals over contracted s-type Gaussians.
//!
//! Closed-form s-function formulas (Szabo & Ostlund, appendix A):
//! overlap, kinetic energy, nuclear attraction, and two-electron repulsion
//! integrals, all reduced to the Boys function `F0`. This replaces the
//! PySCF dependency of the paper's Fig. 5/7 pipeline (DESIGN.md
//! substitution #3) — hydrogen rings only need s-orbitals, so the
//! structure of the Hamiltonian is reproduced exactly.

use crate::gaussian::{dist2, product_center, ContractedGaussian};
use crate::linalg::SymMatrix;
use crate::molecule::Molecule;

/// Error function accurate to ~1e-15, via its Maclaurin series for small
/// arguments and the continued-fraction complementary form for large ones.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 3.0 {
        // erf(x) = 2/sqrt(pi) * e^{-x^2} * sum_{n>=0} x^{2n+1} 2^n / (1*3*...*(2n+1))
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        let mut n = 0u32;
        loop {
            n += 1;
            term *= 2.0 * x2 / (2.0 * f64::from(n) + 1.0);
            let new = sum + term;
            if new == sum || n > 200 {
                break;
            }
            sum = new;
        }
        2.0 / std::f64::consts::PI.sqrt() * (-x2).exp() * sum
    } else {
        // Lentz continued fraction for erfc.
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function for x >= 3 via the classical continued
/// fraction `erfc(x) = e^{-x^2}/sqrt(pi) * 1/(x + (1/2)/(x + (2/2)/(x + ...)))`,
/// evaluated by backward recurrence (rapidly convergent in this regime).
fn erfc_cf(x: f64) -> f64 {
    let x2 = x * x;
    let mut t = 0.0f64;
    for k in (1..=120).rev() {
        t = (k as f64 * 0.5) / (x + t);
    }
    (-x2).exp() / std::f64::consts::PI.sqrt() / (x + t)
}

/// Boys function `F0(t) = (1/2) sqrt(pi/t) erf(sqrt(t))`, `F0(0) = 1`.
pub fn boys_f0(t: f64) -> f64 {
    if t < 1e-12 {
        // Series: F0(t) = 1 - t/3 + t^2/10 - ...
        1.0 - t / 3.0 + t * t / 10.0
    } else {
        0.5 * (std::f64::consts::PI / t).sqrt() * erf(t.sqrt())
    }
}

/// Overlap integral between two contracted s-Gaussians.
pub fn overlap(a: &ContractedGaussian, b: &ContractedGaussian) -> f64 {
    let r2 = dist2(a.center, b.center);
    let mut s = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let pref = (std::f64::consts::PI / p).powf(1.5);
            s += pa.coeff * pb.coeff * pref * (-pa.alpha * pb.alpha / p * r2).exp();
        }
    }
    s
}

/// Kinetic energy integral between two contracted s-Gaussians.
pub fn kinetic(a: &ContractedGaussian, b: &ContractedGaussian) -> f64 {
    let r2 = dist2(a.center, b.center);
    let mut t = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let mu = pa.alpha * pb.alpha / p;
            let s = (std::f64::consts::PI / p).powf(1.5) * (-mu * r2).exp();
            t += pa.coeff * pb.coeff * mu * (3.0 - 2.0 * mu * r2) * s;
        }
    }
    t
}

/// Nuclear attraction integral `<a| sum_C -Z_C/|r - C| |b>`.
pub fn nuclear(a: &ContractedGaussian, b: &ContractedGaussian, mol: &Molecule) -> f64 {
    let r2 = dist2(a.center, b.center);
    let mut v = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let cpre = -2.0 * std::f64::consts::PI / p * (-pa.alpha * pb.alpha / p * r2).exp();
            let pc = product_center(pa.alpha, a.center, pb.alpha, b.center);
            for atom in &mol.atoms {
                let t = p * dist2(pc, atom.position);
                v += pa.coeff * pb.coeff * cpre * atom.charge * boys_f0(t);
            }
        }
    }
    v
}

/// Two-electron repulsion integral in chemist notation `(ab|cd)`.
pub fn eri(
    a: &ContractedGaussian,
    b: &ContractedGaussian,
    c: &ContractedGaussian,
    d: &ContractedGaussian,
) -> f64 {
    let rab2 = dist2(a.center, b.center);
    let rcd2 = dist2(c.center, d.center);
    let mut g = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let kab = (-pa.alpha * pb.alpha / p * rab2).exp();
            let pp = product_center(pa.alpha, a.center, pb.alpha, b.center);
            for pc in &c.primitives {
                for pd in &d.primitives {
                    let q = pc.alpha + pd.alpha;
                    let kcd = (-pc.alpha * pd.alpha / q * rcd2).exp();
                    let qq = product_center(pc.alpha, c.center, pd.alpha, d.center);
                    let t = p * q / (p + q) * dist2(pp, qq);
                    let pref = 2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt());
                    g += pa.coeff * pb.coeff * pc.coeff * pd.coeff * pref * kab * kcd * boys_f0(t);
                }
            }
        }
    }
    g
}

/// All one- and two-electron integrals of a molecule over its (non-
/// orthogonal) AO basis, plus the overlap matrix.
pub struct AoIntegrals {
    /// Number of spatial orbitals.
    pub n_orbitals: usize,
    /// Overlap matrix S.
    pub overlap: SymMatrix,
    /// Core Hamiltonian h = T + V.
    pub core: SymMatrix,
    /// Two-electron integrals, chemist notation, full dense tensor
    /// `eri[((p*n + q)*n + r)*n + s] = (pq|rs)`.
    pub eri: Vec<f64>,
}

impl AoIntegrals {
    /// Computes all integrals for `mol`.
    pub fn compute(mol: &Molecule) -> Self {
        let basis = mol.basis();
        let n = basis.len();
        let mut s = SymMatrix::zeros(n);
        let mut h = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                s.set(i, j, overlap(&basis[i], &basis[j]));
                let t = kinetic(&basis[i], &basis[j]);
                let v = nuclear(&basis[i], &basis[j], mol);
                h.set(i, j, t + v);
            }
        }
        let mut g = vec![0.0f64; n * n * n * n];
        // Use 8-fold permutational symmetry of (pq|rs).
        for p in 0..n {
            for q in 0..=p {
                for r in 0..=p {
                    let s_max = if r == p { q } else { r };
                    for sidx in 0..=s_max {
                        let val = eri(&basis[p], &basis[q], &basis[r], &basis[sidx]);
                        for &(a, b, c, d) in &[
                            (p, q, r, sidx),
                            (q, p, r, sidx),
                            (p, q, sidx, r),
                            (q, p, sidx, r),
                            (r, sidx, p, q),
                            (sidx, r, p, q),
                            (r, sidx, q, p),
                            (sidx, r, q, p),
                        ] {
                            g[((a * n + b) * n + c) * n + d] = val;
                        }
                    }
                }
            }
        }
        AoIntegrals {
            n_orbitals: n,
            overlap: s,
            core: h,
            eri: g,
        }
    }

    /// ERI accessor `(pq|rs)`.
    #[inline]
    pub fn g(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        let n = self.n_orbitals;
        self.eri[((p * n + q) * n + r) * n + s]
    }

    /// Löwdin symmetric orthogonalization: transforms core and ERI into the
    /// orthonormal basis `X = S^{-1/2}` (the basis used for second
    /// quantization in place of post-HF molecular orbitals; see DESIGN.md).
    pub fn orthogonalized(&self) -> OrthoIntegrals {
        let n = self.n_orbitals;
        let x = self.overlap.inv_sqrt(1e-10);
        let core = self.core.congruence(&x);
        // Four-index transform, one index at a time: O(n^5).
        let idx = |a: usize, b: usize, c: usize, d: usize| ((a * n + b) * n + c) * n + d;
        let mut t1 = vec![0.0f64; n * n * n * n];
        for p in 0..n {
            for b in 0..n {
                for c in 0..n {
                    for d in 0..n {
                        let mut acc = 0.0;
                        for a in 0..n {
                            acc += x.get(a, p) * self.eri[idx(a, b, c, d)];
                        }
                        t1[idx(p, b, c, d)] = acc;
                    }
                }
            }
        }
        let mut t2 = vec![0.0f64; n * n * n * n];
        for p in 0..n {
            for q in 0..n {
                for c in 0..n {
                    for d in 0..n {
                        let mut acc = 0.0;
                        for b in 0..n {
                            acc += x.get(b, q) * t1[idx(p, b, c, d)];
                        }
                        t2[idx(p, q, c, d)] = acc;
                    }
                }
            }
        }
        let mut t3 = vec![0.0f64; n * n * n * n];
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for d in 0..n {
                        let mut acc = 0.0;
                        for c in 0..n {
                            acc += x.get(c, r) * t2[idx(p, q, c, d)];
                        }
                        t3[idx(p, q, r, d)] = acc;
                    }
                }
            }
        }
        let mut g = vec![0.0f64; n * n * n * n];
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let mut acc = 0.0;
                        for d in 0..n {
                            acc += x.get(d, s) * t3[idx(p, q, r, d)];
                        }
                        g[idx(p, q, r, s)] = acc;
                    }
                }
            }
        }
        OrthoIntegrals {
            n_orbitals: n,
            core,
            eri: g,
        }
    }
}

/// Integrals in an orthonormal orbital basis (valid for second
/// quantization).
pub struct OrthoIntegrals {
    /// Number of spatial orbitals.
    pub n_orbitals: usize,
    /// One-electron (core) integrals h_pq.
    pub core: SymMatrix,
    /// Two-electron integrals `(pq|rs)` (chemist notation), dense.
    pub eri: Vec<f64>,
}

impl OrthoIntegrals {
    /// ERI accessor `(pq|rs)`.
    #[inline]
    pub fn g(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        let n = self.n_orbitals;
        self.eri[((p * n + q) * n + r) * n + s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::ANGSTROM;
    use crate::molecule::Molecule;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun / standard references.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.5, 0.999_999_256_901_627_7),
            (5.0, 0.999_999_999_998_462_5),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-12, "odd symmetry at {x}");
        }
    }

    #[test]
    fn boys_limits() {
        assert!((boys_f0(0.0) - 1.0).abs() < 1e-12);
        // Large t: F0 -> sqrt(pi)/(2 sqrt(t)).
        let t = 400.0;
        let asym = 0.5 * (std::f64::consts::PI / t).sqrt();
        assert!((boys_f0(t) - asym).abs() < 1e-12);
        // Monotone decreasing.
        assert!(boys_f0(0.1) > boys_f0(0.2));
    }

    #[test]
    fn self_overlap_is_one() {
        let g = ContractedGaussian::sto3g_hydrogen([0.0; 3]);
        // STO-3G coefficients are normalized: <g|g> = 1 to ~1e-6 (tabulated
        // coefficients have limited precision).
        assert!((overlap(&g, &g) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn overlap_decays_with_distance() {
        let a = ContractedGaussian::sto3g_hydrogen([0.0; 3]);
        let b1 = ContractedGaussian::sto3g_hydrogen([1.0, 0.0, 0.0]);
        let b4 = ContractedGaussian::sto3g_hydrogen([4.0, 0.0, 0.0]);
        assert!(overlap(&a, &b1) > overlap(&a, &b4));
        assert!(overlap(&a, &b4) > 0.0);
    }

    #[test]
    fn h2_sto3g_reference_integrals() {
        // H2 at 1.4 bohr: classic textbook values (Szabo & Ostlund §3.5.2):
        // S12 ~ 0.6593, T11 ~ 0.7600, (11|11) ~ 0.7746.
        let mol = Molecule::hydrogen_chain(2, 1.4 / ANGSTROM);
        let basis = mol.basis();
        let s12 = overlap(&basis[0], &basis[1]);
        assert!((s12 - 0.6593).abs() < 2e-3, "S12 = {s12}");
        let t11 = kinetic(&basis[0], &basis[0]);
        assert!((t11 - 0.7600).abs() < 2e-3, "T11 = {t11}");
        let g1111 = eri(&basis[0], &basis[0], &basis[0], &basis[0]);
        assert!((g1111 - 0.7746).abs() < 2e-3, "(11|11) = {g1111}");
        let v11 = nuclear(&basis[0], &basis[0], &mol);
        // V11 = -1.8804 for H2 at 1.4 bohr (sum over both nuclei).
        assert!((v11 + 1.8804).abs() < 2e-3, "V11 = {v11}");
    }

    #[test]
    fn orthogonalized_overlap_is_identity() {
        let mol = Molecule::hydrogen_ring(4, 1.0);
        let ao = AoIntegrals::compute(&mol);
        let x = ao.overlap.inv_sqrt(1e-10);
        let id = ao.overlap.congruence(&x);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.get(i, j) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eri_has_8_fold_symmetry() {
        let mol = Molecule::hydrogen_ring(3, 1.0);
        let ao = AoIntegrals::compute(&mol);
        let (p, q, r, s) = (0, 1, 2, 0);
        let v = ao.g(p, q, r, s);
        for &(a, b, c, d) in &[
            (q, p, r, s),
            (p, q, s, r),
            (q, p, s, r),
            (r, s, p, q),
            (s, r, p, q),
            (r, s, q, p),
            (s, r, q, p),
        ] {
            assert!((ao.g(a, b, c, d) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn ortho_eri_is_dense_like_ao() {
        // The orthogonalized basis stays dense — the property Fig. 5/7
        // depend on.
        let mol = Molecule::hydrogen_ring(4, 1.0);
        let ortho = AoIntegrals::compute(&mol).orthogonalized();
        let mut nonzero = 0;
        let n = ortho.n_orbitals;
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        if ortho.g(p, q, r, s).abs() > 1e-10 {
                            nonzero += 1;
                        }
                    }
                }
            }
        }
        assert!(
            nonzero > n * n,
            "ortho basis must remain dense, got {nonzero}"
        );
    }
}
