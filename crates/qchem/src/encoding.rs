//! Fermion-to-qubit encodings: Jordan-Wigner and Bravyi-Kitaev.
//!
//! Both encodings are expressed through the ladder operators
//! `a_j` / `a†_j` as [`PauliSum`]s; any fermionic operator is then built by
//! operator multiplication. Correctness is pinned down by the canonical
//! anticommutation relations, which the tests verify exhaustively for small
//! mode counts:
//!
//! * `{a_i, a_j} = 0`
//! * `{a_i, a†_j} = δ_ij`
//!
//! Jordan-Wigner (Refs. [27, 42, 49] of the paper) stores occupations
//! directly and pays O(n)-weight Z strings; Bravyi-Kitaev (Ref. \[9\]) stores
//! partial occupation sums on a Fenwick tree and pays only O(log n) weight —
//! exactly the trade-off behind the paper's Fig. 5.

use crate::pauli::{PauliString, PauliSum, C64};

/// Which fermion-to-qubit encoding to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Jordan-Wigner: occupation qubits + parity Z-strings.
    JordanWigner,
    /// Bravyi-Kitaev: Fenwick-tree parity storage, O(log n) weights.
    BravyiKitaev,
}

impl Encoding {
    /// Annihilation operator `a_j` on `n` modes.
    pub fn lower(&self, j: usize, n: usize) -> PauliSum {
        match self {
            Encoding::JordanWigner => jw_ladder(j, n, true),
            Encoding::BravyiKitaev => bk_ladder(j, n, true),
        }
    }

    /// Creation operator `a†_j` on `n` modes.
    pub fn raise(&self, j: usize, n: usize) -> PauliSum {
        match self {
            Encoding::JordanWigner => jw_ladder(j, n, false),
            Encoding::BravyiKitaev => bk_ladder(j, n, false),
        }
    }

    /// Occupation-number operator `n_j = a†_j a_j`.
    pub fn number(&self, j: usize, n: usize) -> PauliSum {
        let mut s = self.raise(j, n).mul(&self.lower(j, n));
        s.prune(1e-14);
        s
    }

    /// Short name for reports ("JW" / "BK", as in the paper's Fig. 7).
    pub fn short_name(&self) -> &'static str {
        match self {
            Encoding::JordanWigner => "JW",
            Encoding::BravyiKitaev => "BK",
        }
    }
}

/// Jordan-Wigner ladder operator:
/// `a_j = Z_0 ... Z_{j-1} (X_j + i Y_j)/2` (lower), conjugate for raise.
fn jw_ladder(j: usize, n: usize, lower: bool) -> PauliSum {
    assert!(j < n && n <= 64, "mode index out of range");
    let zmask = (1u64 << j) - 1;
    let mut sum = PauliSum::zero();
    let x_string = PauliString {
        x: 1 << j,
        z: zmask,
    };
    let y_string = PauliString {
        x: 1 << j,
        z: zmask | (1 << j),
    };
    sum.add_term(x_string, C64::real(0.5));
    let sign = if lower { 0.5 } else { -0.5 };
    sum.add_term(y_string, C64::new(0.0, sign));
    sum
}

/// The three index sets of the Bravyi-Kitaev transform over a Fenwick tree
/// with `n` nodes (Seeley-Richard-Love construction).
pub struct BkSets {
    /// Update set U(j): ancestors storing partial sums that include mode j.
    pub update: u64,
    /// Parity set P(j): qubits whose sum gives the parity of modes < j.
    pub parity: u64,
    /// Flip set F(j): children of j that determine whether qubit j's stored
    /// value is flipped relative to the occupation of mode j.
    pub flip: u64,
}

/// Computes U(j), P(j), F(j) for mode `j` (0-based) among `n` modes.
pub fn bk_sets(j: usize, n: usize) -> BkSets {
    assert!(j < n && n <= 64);
    // Fenwick tree over 1-based indices 1..=n.
    // Update set: ancestors on the Fenwick update path.
    let mut update = 0u64;
    let mut u = (j + 1) as u64;
    loop {
        u += u & u.wrapping_neg();
        if u as usize > n {
            break;
        }
        update |= 1 << (u - 1);
    }
    // Parity set: the Fenwick query path for prefix [1, j].
    let mut parity = 0u64;
    let mut p = j as u64;
    while p > 0 {
        parity |= 1 << (p - 1);
        p -= p & p.wrapping_neg();
    }
    // Flip set: children of node j+1 in the Fenwick tree. Node u covers
    // (u - lowbit(u), u]; its children are u - 2^k for 2^k < lowbit(u).
    let mut flip = 0u64;
    let u = (j + 1) as u64;
    let lowbit = u & u.wrapping_neg();
    let mut step = 1u64;
    while step < lowbit {
        flip |= 1 << (u - step - 1);
        step <<= 1;
    }
    BkSets {
        update,
        parity,
        flip,
    }
}

/// Bravyi-Kitaev ladder operator (Seeley-Richard-Love):
/// `a_j = X_{U(j)} (X_j Z_{P(j)} + i Y_j Z_{R(j)}) / 2`, `R = P \ F`,
/// conjugate (−i) for the raising operator.
fn bk_ladder(j: usize, n: usize, lower: bool) -> PauliSum {
    let sets = bk_sets(j, n);
    let rho = sets.parity & !sets.flip;
    let mut sum = PauliSum::zero();
    let x_term = PauliString {
        x: sets.update | (1 << j),
        z: sets.parity,
    };
    let y_term = PauliString {
        x: sets.update | (1 << j),
        z: rho | (1 << j),
    };
    sum.add_term(x_term, C64::real(0.5));
    let sign = if lower { 0.5 } else { -0.5 };
    sum.add_term(y_term, C64::new(0.0, sign));
    sum
}

/// Anticommutator `{A, B} = AB + BA`, pruned.
pub fn anticommutator(a: &PauliSum, b: &PauliSum) -> PauliSum {
    let mut s = a.mul(b);
    s.add_scaled(&b.mul(a), C64::real(1.0));
    s.prune(1e-12);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{Axis, PauliString};

    fn check_car(enc: Encoding, n: usize) {
        // {a_i, a_j} = 0 for all i, j.
        for i in 0..n {
            for j in 0..n {
                let ai = enc.lower(i, n);
                let aj = enc.lower(j, n);
                let anti = anticommutator(&ai, &aj);
                assert!(
                    anti.is_empty(),
                    "{enc:?} n={n}: {{a_{i}, a_{j}}} != 0 ({} terms)",
                    anti.len()
                );
            }
        }
        // {a_i, a†_j} = delta_ij.
        for i in 0..n {
            for j in 0..n {
                let ai = enc.lower(i, n);
                let adj = enc.raise(j, n);
                let anti = anticommutator(&ai, &adj);
                if i == j {
                    assert_eq!(
                        anti.len(),
                        1,
                        "{enc:?} n={n}: {{a_{i}, a†_{i}}} must be identity"
                    );
                    let c = anti.coeff(&PauliString::IDENTITY);
                    assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
                } else {
                    assert!(anti.is_empty(), "{enc:?} n={n}: {{a_{i}, a†_{j}}} != 0");
                }
            }
        }
    }

    #[test]
    fn jw_canonical_anticommutation() {
        for n in [1usize, 2, 3, 4, 5, 8] {
            check_car(Encoding::JordanWigner, n);
        }
    }

    #[test]
    fn bk_canonical_anticommutation() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 12, 16] {
            check_car(Encoding::BravyiKitaev, n);
        }
    }

    #[test]
    fn number_operator_is_projector() {
        // n_j^2 = n_j (projector onto occupied).
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            for n in [2usize, 4, 6] {
                for j in 0..n {
                    let num = enc.number(j, n);
                    let mut sq = num.mul(&num);
                    sq.add_scaled(&num, C64::real(-1.0));
                    sq.prune(1e-12);
                    assert!(sq.is_empty(), "{enc:?} n={n} j={j}: n^2 != n");
                }
            }
        }
    }

    #[test]
    fn jw_number_operator_form() {
        // JW: n_j = (I - Z_j)/2.
        let num = Encoding::JordanWigner.number(2, 4);
        assert_eq!(num.len(), 2);
        let id = num.coeff(&PauliString::IDENTITY);
        let z = num.coeff(&PauliString::single(Axis::Z, 2));
        assert!((id.re - 0.5).abs() < 1e-12);
        assert!((z.re + 0.5).abs() < 1e-12);
    }

    #[test]
    fn jw_weight_grows_linearly() {
        let a = Encoding::JordanWigner.lower(7, 8);
        let max_w = a.iter().map(|(s, _)| s.weight()).max().unwrap();
        assert_eq!(max_w, 8, "JW a_7 touches all 8 qubits");
    }

    #[test]
    fn bk_weight_is_logarithmic() {
        // For n = 16, every BK ladder operator has weight O(log n) — at
        // most ~2 log2(n) qubits, far below n.
        let n = 16;
        for j in 0..n {
            let a = Encoding::BravyiKitaev.lower(j, n);
            let max_w = a.iter().map(|(s, _)| s.weight()).max().unwrap();
            assert!(max_w <= 9, "BK a_{j} weight {max_w} too large for n={n}");
        }
    }

    #[test]
    fn bk_sets_known_values_n8() {
        // Reference values for the n=8 Fenwick tree (Seeley-Richard-Love
        // Table 1/2, converted to 0-based indices).
        // Mode 0 (1-based node 1): U = {1,3,7}, P = {}, F = {}.
        let s = bk_sets(0, 8);
        assert_eq!(s.update, 0b1000_1010);
        assert_eq!(s.parity, 0);
        assert_eq!(s.flip, 0);
        // Mode 1 (node 2): U = {3,7}, P = {0}, F = {0}.
        let s = bk_sets(1, 8);
        assert_eq!(s.update, 0b1000_1000);
        assert_eq!(s.parity, 0b1);
        assert_eq!(s.flip, 0b1);
        // Mode 3 (node 4): U = {7}, P = {0,1,2}... P(3) = prefix of 3 modes:
        // query path of 3: 3 -> 2 -> 0: qubits {2,1} (1-based 3 covers...,
        // computed: indices 3-1=2 and 2-1=1).
        let s = bk_sets(3, 8);
        assert_eq!(s.update, 0b1000_0000);
        assert_eq!(s.parity, 0b110);
        assert_eq!(s.flip, 0b110);
        // Mode 4 (node 5): U = {5,7} (1-based 6, 8), P = {3}, F = {}.
        let s = bk_sets(4, 8);
        assert_eq!(s.update, 0b1010_0000);
        assert_eq!(s.parity, 0b1000);
        assert_eq!(s.flip, 0);
        // Mode 7 (node 8): U = {}, P = {3, 5, 6}, F = {3, 5, 6}.
        let s = bk_sets(7, 8);
        assert_eq!(s.update, 0);
        assert_eq!(s.parity, 0b0110_1000);
        assert_eq!(s.flip, 0b0110_1000);
    }

    #[test]
    fn encodings_agree_on_vacuum_number_expectation() {
        // <vac| n_j |vac> = 0 in both encodings: the coefficient structure
        // must make the (I - Z...)/2 pattern hold on the all-zeros state.
        // Evaluate by computing the diagonal entry 0 of the operator.
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            for j in 0..6 {
                let num = enc.number(j, 6);
                // Diagonal element <0...0| O |0...0>: only X-free strings
                // contribute, with +1 sign.
                let diag0: f64 = num
                    .iter()
                    .filter(|(s, _)| s.x == 0)
                    .map(|(_, c)| c.re)
                    .sum();
                assert!(
                    diag0.abs() < 1e-12,
                    "{enc:?} j={j}: vacuum occupation {diag0}"
                );
            }
        }
    }
}
