//! Second-quantized molecular Hamiltonians and their qubit images.
//!
//! `H = Σ_{pq,σ} h_pq a†_{pσ} a_{qσ}
//!    + 1/2 Σ_{pqrs,στ} (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}`
//!
//! with `(pq|rs)` in chemist notation over an orthonormal spatial-orbital
//! basis, spin-orbitals interleaved as `2p` (alpha) / `2p+1` (beta). The
//! qubit image under a chosen [`Encoding`] is the object whose term-weight
//! histogram the paper plots in Fig. 5 and whose Trotter-step EPR cost it
//! plots in Fig. 7.

use crate::encoding::Encoding;
use crate::integrals::OrthoIntegrals;
use crate::pauli::{PauliSum, C64};

/// Threshold below which integrals are dropped (numerically zero).
pub const INTEGRAL_TOL: f64 = 1e-10;
/// Threshold below which final Pauli coefficients are dropped.
pub const COEFF_TOL: f64 = 1e-9;

/// Builds the qubit Hamiltonian of `ints` under `encoding`.
///
/// Returns a [`PauliSum`] over `2 * n_orbitals` qubits with real
/// coefficients (asserted), including the identity (constant) term.
pub fn qubit_hamiltonian(ints: &OrthoIntegrals, encoding: Encoding) -> PauliSum {
    let m = ints.n_orbitals;
    let n_spin = 2 * m;
    assert!(n_spin <= 64, "at most 64 spin-orbitals supported");
    // Cache ladder operators per spin-orbital.
    let lowers: Vec<PauliSum> = (0..n_spin).map(|j| encoding.lower(j, n_spin)).collect();
    let raises: Vec<PauliSum> = (0..n_spin).map(|j| encoding.raise(j, n_spin)).collect();
    let mut h = PauliSum::zero();
    // One-body part.
    for p in 0..m {
        for q in 0..m {
            let hpq = ints.core.get(p, q);
            if hpq.abs() < INTEGRAL_TOL {
                continue;
            }
            for spin in 0..2 {
                let i = 2 * p + spin;
                let j = 2 * q + spin;
                raises[i].mul_into(&lowers[j], C64::real(hpq), &mut h);
            }
        }
    }
    // Two-body part: 1/2 (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}.
    for p in 0..m {
        for q in 0..m {
            for r in 0..m {
                for s in 0..m {
                    let g = ints.g(p, q, r, s);
                    if g.abs() < INTEGRAL_TOL {
                        continue;
                    }
                    for sigma in 0..2 {
                        for tau in 0..2 {
                            let i1 = 2 * p + sigma;
                            let i2 = 2 * r + tau;
                            let i3 = 2 * s + tau;
                            let i4 = 2 * q + sigma;
                            if i1 == i2 || i3 == i4 {
                                // a†a† or aa on the same spin-orbital is 0.
                                continue;
                            }
                            let prod = raises[i1]
                                .mul(&raises[i2])
                                .mul(&lowers[i3])
                                .mul(&lowers[i4]);
                            h.add_scaled(&prod, C64::real(0.5 * g));
                        }
                    }
                }
            }
        }
    }
    h.prune(COEFF_TOL);
    debug_assert!(
        h.is_real(1e-8),
        "Hermitian Hamiltonian from real integrals must be real"
    );
    h
}

/// Convenience: full pipeline molecule -> orthogonalized integrals ->
/// qubit Hamiltonian.
pub fn molecular_hamiltonian(mol: &crate::molecule::Molecule, encoding: Encoding) -> PauliSum {
    let ao = crate::integrals::AoIntegrals::compute(mol);
    let ortho = ao.orthogonalized();
    qubit_hamiltonian(&ortho, encoding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::ground_energy;
    use crate::gaussian::ANGSTROM;
    use crate::molecule::Molecule;

    #[test]
    fn h2_hamiltonian_is_real_and_small() {
        let mol = Molecule::hydrogen_chain(2, 0.7414);
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            let h = molecular_hamiltonian(&mol, enc);
            assert!(h.is_real(1e-8), "{enc:?}");
            // H2/STO-3G has 15 distinct Pauli terms in the MO basis; the
            // Löwdin basis used here produces a few more (27 under JW)
            // because it is not the natural-symmetry orbital basis.
            assert!(h.len() >= 10 && h.len() <= 40, "{enc:?}: {} terms", h.len());
        }
    }

    #[test]
    fn h2_ground_energy_matches_fci_reference() {
        // H2 at the equilibrium distance 0.7414 A in STO-3G: the FCI total
        // energy is -1.1373 hartree (electronic -1.8572 + nuclear 0.7199...
        // nuclear repulsion at 1.4011 bohr = 0.7138). Basis-set invariant,
        // so the Löwdin-orthogonalized basis reproduces it exactly.
        let mol = Molecule::hydrogen_chain(2, 0.7414);
        let h = molecular_hamiltonian(&mol, Encoding::JordanWigner);
        let e_elec = ground_energy(&h, 4);
        let e_total = e_elec + mol.nuclear_repulsion();
        assert!(
            (e_total + 1.1373).abs() < 2e-3,
            "E_total = {e_total}, expected about -1.1373 hartree"
        );
    }

    #[test]
    fn jw_and_bk_have_identical_spectra() {
        // The two encodings are related by a basis permutation/Clifford, so
        // the spectra must agree exactly.
        let mol = Molecule::hydrogen_chain(2, 0.9);
        let h_jw = molecular_hamiltonian(&mol, Encoding::JordanWigner);
        let h_bk = molecular_hamiltonian(&mol, Encoding::BravyiKitaev);
        let e_jw = ground_energy(&h_jw, 4);
        let e_bk = ground_energy(&h_bk, 4);
        assert!((e_jw - e_bk).abs() < 1e-8, "JW {e_jw} vs BK {e_bk}");
    }

    #[test]
    fn h3_ring_encodings_agree() {
        let mol = Molecule::hydrogen_ring(3, 1.0);
        let h_jw = molecular_hamiltonian(&mol, Encoding::JordanWigner);
        let h_bk = molecular_hamiltonian(&mol, Encoding::BravyiKitaev);
        let e_jw = ground_energy(&h_jw, 6);
        let e_bk = ground_energy(&h_bk, 6);
        assert!((e_jw - e_bk).abs() < 1e-7, "JW {e_jw} vs BK {e_bk}");
    }

    #[test]
    fn dissociated_h2_energy_above_equilibrium() {
        let eq = {
            let mol = Molecule::hydrogen_chain(2, 0.7414);
            let h = molecular_hamiltonian(&mol, Encoding::JordanWigner);
            ground_energy(&h, 4) + mol.nuclear_repulsion()
        };
        let stretched = {
            let mol = Molecule::hydrogen_chain(2, 2.0);
            let h = molecular_hamiltonian(&mol, Encoding::JordanWigner);
            ground_energy(&h, 4) + mol.nuclear_repulsion()
        };
        assert!(stretched > eq, "stretched {stretched} vs equilibrium {eq}");
    }

    #[test]
    fn bond_length_in_bohr_sanity() {
        let mol = Molecule::hydrogen_chain(2, 0.7414);
        let d = crate::gaussian::dist2(mol.atoms[0].position, mol.atoms[1].position).sqrt();
        assert!((d - 0.7414 * ANGSTROM).abs() < 1e-10);
    }
}
