//! Sparse Pauli-string algebra over up to 64 qubits.
//!
//! A Pauli string is stored as an `(x, z)` bitmask pair: qubit `i` carries
//! X iff bit `i` of `x` is set, Z iff bit `i` of `z`, Y iff both. This makes
//! string multiplication a pair of XORs plus a symplectic phase — fast
//! enough to push the full 64-spin-orbital hydrogen-ring Hamiltonian
//! (hundreds of thousands of terms, tens of millions of intermediate
//! products) through the Jordan-Wigner and Bravyi-Kitaev transforms in
//! seconds.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimal complex number for operator coefficients.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Constructs a complex coefficient.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Purely real coefficient.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `|c|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiplies by `i^k` (k mod 4).
    pub fn mul_i_pow(self, k: u8) -> Self {
        match k & 3 {
            0 => self,
            1 => C64 {
                re: -self.im,
                im: self.re,
            },
            2 => C64 {
                re: -self.re,
                im: -self.im,
            },
            _ => C64 {
                re: self.im,
                im: -self.re,
            },
        }
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, r: C64) -> C64 {
        C64 {
            re: self.re + r.re,
            im: self.im + r.im,
        }
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, r: C64) -> C64 {
        C64 {
            re: self.re * r.re - self.im * r.im,
            im: self.re * r.im + self.im * r.re,
        }
    }
}

impl std::ops::Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, r: f64) -> C64 {
        C64 {
            re: self.re * r,
            im: self.im * r,
        }
    }
}

/// One of the single-qubit Pauli operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A Pauli string (tensor product of named Paulis; identity elsewhere).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    /// X-component mask.
    pub x: u64,
    /// Z-component mask.
    pub z: u64,
}

impl PauliString {
    /// The identity string.
    pub const IDENTITY: PauliString = PauliString { x: 0, z: 0 };

    /// Single-qubit Pauli at `qubit`.
    pub fn single(axis: Axis, qubit: u32) -> Self {
        let bit = 1u64 << qubit;
        match axis {
            Axis::X => PauliString { x: bit, z: 0 },
            Axis::Y => PauliString { x: bit, z: bit },
            Axis::Z => PauliString { x: 0, z: bit },
        }
    }

    /// A Z-string over the given mask.
    pub fn z_mask(mask: u64) -> Self {
        PauliString { x: 0, z: mask }
    }

    /// Number of non-identity tensor factors — the "number of qubits per
    /// term" plotted in the paper's Fig. 5.
    pub fn weight(&self) -> u32 {
        (self.x | self.z).count_ones()
    }

    /// Support mask (qubits acted on non-trivially).
    pub fn support(&self) -> u64 {
        self.x | self.z
    }

    /// The operator on `qubit`, if non-identity.
    pub fn axis_at(&self, qubit: u32) -> Option<Axis> {
        let bit = 1u64 << qubit;
        match (self.x & bit != 0, self.z & bit != 0) {
            (false, false) => None,
            (true, false) => Some(Axis::X),
            (true, true) => Some(Axis::Y),
            (false, true) => Some(Axis::Z),
        }
    }

    /// Number of Y factors.
    pub fn y_count(&self) -> u32 {
        (self.x & self.z).count_ones()
    }

    /// Multiplies `self * other`, returning `(k, product)` such that the
    /// named-operator product equals `i^k * product`.
    ///
    /// Derivation: a named string equals `i^{|x&z|} X^x Z^z`; commuting
    /// `Z^{z1}` past `X^{x2}` costs `(-1)^{|z1 & x2|}`.
    pub fn mul(&self, other: &PauliString) -> (u8, PauliString) {
        let x3 = self.x ^ other.x;
        let z3 = self.z ^ other.z;
        let k = (self.x & self.z).count_ones()
            + (other.x & other.z).count_ones()
            + 2 * (self.z & other.x).count_ones()
            // i^{-|x3 & z3|} = i^{3 * |x3 & z3|} (mod 4)
            + 3 * (x3 & z3).count_ones();
        ((k & 3) as u8, PauliString { x: x3, z: z3 })
    }

    /// Whether two strings commute.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let anti = (self.x & other.z).count_ones() + (self.z & other.x).count_ones();
        anti.is_multiple_of(2)
    }

    /// Human-readable form like `"X0 Z3 Y5"` (identity => `"I"`).
    pub fn to_label(&self) -> String {
        if self.support() == 0 {
            return "I".into();
        }
        let mut parts = Vec::new();
        for q in 0..64u32 {
            if let Some(a) = self.axis_at(q) {
                parts.push(format!("{a:?}{q}"));
            }
        }
        parts.join(" ")
    }
}

/// Fast multiply-xor hasher for `(x, z)` masks (hashing dominates the
/// encoding transforms; SipHash would triple their runtime).
#[derive(Default)]
pub struct MaskHasher(u64);

impl Hasher for MaskHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        // fxhash-style combine.
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

type MaskMap<V> = HashMap<PauliString, V, BuildHasherDefault<MaskHasher>>;

/// A linear combination of Pauli strings — an operator on <= 64 qubits.
#[derive(Clone, Debug, Default)]
pub struct PauliSum {
    terms: MaskMap<C64>,
}

impl PauliSum {
    /// The zero operator.
    pub fn zero() -> Self {
        PauliSum::default()
    }

    /// The identity times `c`.
    pub fn constant(c: C64) -> Self {
        let mut s = Self::zero();
        s.add_term(PauliString::IDENTITY, c);
        s
    }

    /// A single term.
    pub fn term(string: PauliString, coeff: C64) -> Self {
        let mut s = Self::zero();
        s.add_term(string, coeff);
        s
    }

    /// Adds `coeff * string`.
    pub fn add_term(&mut self, string: PauliString, coeff: C64) {
        let e = self.terms.entry(string).or_default();
        *e = *e + coeff;
    }

    /// Adds another sum, scaled.
    pub fn add_scaled(&mut self, other: &PauliSum, scale: C64) {
        for (s, c) in &other.terms {
            self.add_term(*s, *c * scale);
        }
    }

    /// Multiplies `self * other` (operator product).
    pub fn mul(&self, other: &PauliSum) -> PauliSum {
        let mut out = PauliSum::zero();
        for (s1, c1) in &self.terms {
            for (s2, c2) in &other.terms {
                let (k, s3) = s1.mul(s2);
                out.add_term(s3, (*c1 * *c2).mul_i_pow(k));
            }
        }
        out
    }

    /// Multiplies `self * other` and accumulates `scale * result` into an
    /// accumulator without allocating an intermediate sum.
    pub fn mul_into(&self, other: &PauliSum, scale: C64, acc: &mut PauliSum) {
        for (s1, c1) in &self.terms {
            for (s2, c2) in &other.terms {
                let (k, s3) = s1.mul(s2);
                acc.add_term(s3, (*c1 * *c2).mul_i_pow(k) * scale);
            }
        }
    }

    /// Removes terms with |coeff| <= `tol`.
    pub fn prune(&mut self, tol: f64) {
        self.terms.retain(|_, c| c.norm_sqr() > tol * tol);
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms remain.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(string, coeff)`.
    pub fn iter(&self) -> impl Iterator<Item = (&PauliString, &C64)> {
        self.terms.iter()
    }

    /// Coefficient of a string (zero if absent).
    pub fn coeff(&self, s: &PauliString) -> C64 {
        self.terms.get(s).copied().unwrap_or_default()
    }

    /// Largest |coeff| in the sum.
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms
            .values()
            .map(|c| c.norm_sqr().sqrt())
            .fold(0.0, f64::max)
    }

    /// True if every coefficient is (numerically) real — expected for
    /// Hermitian Hamiltonians from real integrals.
    pub fn is_real(&self, tol: f64) -> bool {
        self.terms.values().all(|c| c.im.abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_products() {
        let x = PauliString::single(Axis::X, 0);
        let y = PauliString::single(Axis::Y, 0);
        let z = PauliString::single(Axis::Z, 0);
        // X*Y = iZ
        let (k, s) = x.mul(&y);
        assert_eq!((k, s), (1, z));
        // Y*X = -iZ
        let (k, s) = y.mul(&x);
        assert_eq!((k, s), (3, z));
        // Z*X = iY
        let (k, s) = z.mul(&x);
        assert_eq!((k, s), (1, y));
        // X*Z = -iY
        let (k, s) = x.mul(&z);
        assert_eq!((k, s), (3, y));
        // Y*Z = iX
        let (k, s) = y.mul(&z);
        assert_eq!((k, s), (1, x));
        // X*X = I
        let (k, s) = x.mul(&x);
        assert_eq!((k, s), (0, PauliString::IDENTITY));
        // Y*Y = I
        let (k, s) = y.mul(&y);
        assert_eq!((k, s), (0, PauliString::IDENTITY));
    }

    #[test]
    fn multi_qubit_product_phases() {
        // (X0 Y1) * (Y0 Y1) = (X Y)⊗(Y Y) = (iZ)⊗(I) = i Z0.
        let a = {
            let (k, s) = PauliString::single(Axis::X, 0).mul(&PauliString::single(Axis::Y, 1));
            assert_eq!(k, 0);
            s
        };
        let b = {
            let (k, s) = PauliString::single(Axis::Y, 0).mul(&PauliString::single(Axis::Y, 1));
            assert_eq!(k, 0);
            s
        };
        let (k, s) = a.mul(&b);
        assert_eq!(k, 1);
        assert_eq!(s, PauliString::single(Axis::Z, 0));
    }

    #[test]
    fn commutation_rules() {
        let x0 = PauliString::single(Axis::X, 0);
        let z0 = PauliString::single(Axis::Z, 0);
        let z1 = PauliString::single(Axis::Z, 1);
        assert!(!x0.commutes_with(&z0));
        assert!(x0.commutes_with(&z1));
        // XX vs ZZ commute (two anticommuting sites).
        let xx = PauliString { x: 0b11, z: 0 };
        let zz = PauliString { x: 0, z: 0b11 };
        assert!(xx.commutes_with(&zz));
    }

    #[test]
    fn weight_and_support() {
        let s = PauliString { x: 0b101, z: 0b110 };
        assert_eq!(s.weight(), 3);
        assert_eq!(s.support(), 0b111);
        assert_eq!(s.axis_at(0), Some(Axis::X));
        assert_eq!(s.axis_at(1), Some(Axis::Z));
        assert_eq!(s.axis_at(2), Some(Axis::Y));
        assert_eq!(s.axis_at(3), None);
        assert_eq!(s.y_count(), 1);
    }

    #[test]
    fn label_rendering() {
        let s = PauliString { x: 0b101, z: 0b110 };
        assert_eq!(s.to_label(), "X0 Z1 Y2");
        assert_eq!(PauliString::IDENTITY.to_label(), "I");
    }

    #[test]
    fn sum_accumulates_and_prunes() {
        let mut s = PauliSum::zero();
        let x0 = PauliString::single(Axis::X, 0);
        s.add_term(x0, C64::real(0.5));
        s.add_term(x0, C64::real(-0.5));
        s.add_term(PauliString::single(Axis::Z, 1), C64::real(1.0));
        s.prune(1e-12);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sum_product_distributes() {
        // (X + Z)(X - Z) = X^2 - XZ + ZX - Z^2 = -XZ + ZX = -(-iY) + iY = 2iY.
        let x = PauliSum::term(PauliString::single(Axis::X, 0), C64::real(1.0));
        let mut a = x.clone();
        a.add_term(PauliString::single(Axis::Z, 0), C64::real(1.0));
        let mut b = x;
        b.add_term(PauliString::single(Axis::Z, 0), C64::real(-1.0));
        let mut p = a.mul(&b);
        p.prune(1e-12);
        assert_eq!(p.len(), 1);
        let c = p.coeff(&PauliString::single(Axis::Y, 0));
        assert!((c.re - 0.0).abs() < 1e-12 && (c.im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn anticommutator_of_x_and_z_vanishes() {
        // {X, Z} = XZ + ZX = 0.
        let x = PauliSum::term(PauliString::single(Axis::X, 0), C64::real(1.0));
        let z = PauliSum::term(PauliString::single(Axis::Z, 0), C64::real(1.0));
        let mut anti = x.mul(&z);
        anti.add_scaled(&z.mul(&x), C64::real(1.0));
        anti.prune(1e-12);
        assert!(anti.is_empty());
    }
}
