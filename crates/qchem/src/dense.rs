//! Dense-matrix realization of small Pauli sums, for exact diagonalization
//! in tests (FCI energies of H2/H3/H4 validate the whole integral +
//! encoding pipeline against literature values).

use crate::linalg::SymMatrix;
use crate::pauli::PauliSum;

/// Builds the dense real symmetric matrix of `sum` over `n_qubits` qubits.
///
/// Requires every string to carry an even number of Y factors and a real
/// coefficient (true for Hamiltonians derived from real integrals), so the
/// matrix is real; panics otherwise.
pub fn to_dense(sum: &PauliSum, n_qubits: usize) -> SymMatrix {
    assert!(n_qubits <= 12, "dense realization limited to 12 qubits");
    let dim = 1usize << n_qubits;
    let mut m = vec![0.0f64; dim * dim];
    for (s, c) in sum.iter() {
        assert!(
            s.y_count() % 2 == 0,
            "odd Y count => imaginary matrix elements (string {})",
            s.to_label()
        );
        assert!(c.im.abs() < 1e-9, "complex coefficient on {}", s.to_label());
        // Named string = i^{|x&z|} X^x Z^z; with even Y count i^{|x&z|} is
        // real (+1 or -1).
        let i_pow = (s.x & s.z).count_ones() % 4;
        let global_sign = if i_pow == 2 { -1.0 } else { 1.0 };
        debug_assert!(i_pow % 2 == 0);
        let x = s.x as usize;
        let z = s.z as usize;
        for col in 0..dim {
            let sign = if ((col & z).count_ones()) % 2 == 1 {
                -1.0
            } else {
                1.0
            };
            let row = col ^ x;
            m[row * dim + col] += c.re * global_sign * sign;
        }
    }
    SymMatrix::from_rows(dim, &m)
}

/// Ground-state (minimum) eigenvalue of `sum` over `n_qubits` qubits.
pub fn ground_energy(sum: &PauliSum, n_qubits: usize) -> f64 {
    let m = to_dense(sum, n_qubits);
    let (vals, _) = m.eigen();
    vals[0]
}

/// Full spectrum of `sum` over `n_qubits` qubits (ascending).
pub fn spectrum(sum: &PauliSum, n_qubits: usize) -> Vec<f64> {
    let m = to_dense(sum, n_qubits);
    m.eigen().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{Axis, PauliString, PauliSum, C64};

    #[test]
    fn dense_of_z_is_diagonal() {
        let s = PauliSum::term(PauliString::single(Axis::Z, 0), C64::real(1.0));
        let m = to_dense(&s, 1);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn dense_of_x_is_offdiagonal() {
        let s = PauliSum::term(PauliString::single(Axis::X, 0), C64::real(1.0));
        let m = to_dense(&s, 1);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn dense_of_yy_is_real() {
        // Y⊗Y has matrix elements ±1 (real).
        let (k, yy) = PauliString::single(Axis::Y, 0).mul(&PauliString::single(Axis::Y, 1));
        assert_eq!(k, 0);
        let s = PauliSum::term(yy, C64::real(1.0));
        let m = to_dense(&s, 2);
        // Y⊗Y |00> = (i|1>)(i|1>) = -|11>.
        assert_eq!(m.get(0b11, 0b00), -1.0);
        assert_eq!(m.get(0b00, 0b11), -1.0);
        assert_eq!(m.get(0b01, 0b10), 1.0);
    }

    #[test]
    fn spectrum_of_transverse_field() {
        // H = -X has eigenvalues {-1, +1}.
        let s = PauliSum::term(PauliString::single(Axis::X, 0), C64::real(-1.0));
        let vals = spectrum(&s, 1);
        assert!((vals[0] + 1.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ground_energy_of_zz_plus_x() {
        // H = -Z0 Z1 - 0.5(X0 + X1): ground energy = -sqrt(1 + ...) — just
        // verify against a direct 4x4 diagonalization property: E0 <= -1.
        let mut s = PauliSum::zero();
        let (_, zz) = PauliString::single(Axis::Z, 0).mul(&PauliString::single(Axis::Z, 1));
        s.add_term(zz, C64::real(-1.0));
        s.add_term(PauliString::single(Axis::X, 0), C64::real(-0.5));
        s.add_term(PauliString::single(Axis::X, 1), C64::real(-0.5));
        let e0 = ground_energy(&s, 2);
        assert!(e0 < -1.0);
        // Exact value for this TFIM-2: eigenvalues of the 4x4 matrix; check
        // variational bound with the |++> state: <++|H|++> = -1.
        assert!(e0 <= -1.0);
    }

    #[test]
    #[should_panic(expected = "odd Y count")]
    fn odd_y_rejected() {
        let s = PauliSum::term(PauliString::single(Axis::Y, 0), C64::real(1.0));
        let _ = to_dense(&s, 1);
    }
}
