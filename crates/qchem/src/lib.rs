//! # qchem — quantum-chemistry substrate for the QMPI reproduction
//!
//! Everything the paper's Section 7.3 evaluation needs, built from scratch
//! (replacing the PySCF + OpenFermion stack; DESIGN.md substitution #3):
//!
//! * STO-3G Gaussian integrals for hydrogen rings ([`integrals`]),
//!   validated against textbook H2 values and the H2 FCI energy;
//! * Löwdin orthogonalization via an in-repo Jacobi eigensolver
//!   ([`linalg`]);
//! * second-quantized Hamiltonians and their qubit images under the
//!   Jordan-Wigner and Bravyi-Kitaev encodings ([`encoding`],
//!   [`hamiltonian`]), verified through canonical anticommutation relations
//!   and encoding-independent spectra;
//! * the Fig. 5 term-weight histogram ([`histogram`]) and the Fig. 7
//!   per-term EPR cost model over block layouts ([`layout`]).

pub mod dense;
pub mod encoding;
pub mod gaussian;
pub mod hamiltonian;
pub mod histogram;
pub mod integrals;
pub mod layout;
pub mod linalg;
pub mod molecule;
pub mod pauli;
pub mod trotter;

pub use encoding::Encoding;
pub use hamiltonian::{molecular_hamiltonian, qubit_hamiltonian};
pub use histogram::WeightHistogram;
pub use layout::{term_epr_cost, trotter_step_epr_cost, BlockLayout, CircuitMethod};
pub use molecule::Molecule;
pub use pauli::{Axis, PauliString, PauliSum, C64};
pub use trotter::{first_order_step, rotations_per_step, TrotterTerm};

#[cfg(test)]
mod proptests {
    use crate::pauli::{PauliString, PauliSum, C64};
    use proptest::prelude::*;

    fn arb_string() -> impl Strategy<Value = PauliString> {
        (any::<u64>(), any::<u64>()).prop_map(|(x, z)| PauliString { x, z })
    }

    proptest! {
        #[test]
        fn string_multiplication_is_associative(a in arb_string(), b in arb_string(), c in arb_string()) {
            let (k1, ab) = a.mul(&b);
            let (k2, ab_c) = ab.mul(&c);
            let (k3, bc) = b.mul(&c);
            let (k4, a_bc) = a.mul(&bc);
            prop_assert_eq!(ab_c, a_bc);
            prop_assert_eq!((k1 + k2) & 3, (k3 + k4) & 3);
        }

        #[test]
        fn string_squares_to_identity(a in arb_string()) {
            let (k, sq) = a.mul(&a);
            prop_assert_eq!(sq, PauliString::IDENTITY);
            prop_assert_eq!(k, 0, "P^2 = +I for named Pauli strings");
        }

        #[test]
        fn commutation_matches_product_order(a in arb_string(), b in arb_string()) {
            let (k_ab, s_ab) = a.mul(&b);
            let (k_ba, s_ba) = b.mul(&a);
            prop_assert_eq!(s_ab, s_ba);
            if a.commutes_with(&b) {
                prop_assert_eq!(k_ab, k_ba);
            } else {
                prop_assert_eq!((k_ab + 2) & 3, k_ba & 3, "anticommuting strings differ by -1");
            }
        }

        #[test]
        fn weight_bounded_by_support(a in arb_string()) {
            prop_assert_eq!(a.weight(), a.support().count_ones());
            prop_assert!(a.y_count() <= a.weight());
        }

        #[test]
        fn sum_addition_commutes(xs in proptest::collection::vec((any::<u32>(), -5.0f64..5.0), 1..20) ) {
            let mut fwd = PauliSum::zero();
            for &(m, c) in &xs {
                fwd.add_term(PauliString::z_mask(m as u64), C64::real(c));
            }
            let mut rev = PauliSum::zero();
            for &(m, c) in xs.iter().rev() {
                rev.add_term(PauliString::z_mask(m as u64), C64::real(c));
            }
            for (s, c) in fwd.iter() {
                let c2 = rev.coeff(s);
                prop_assert!((c.re - c2.re).abs() < 1e-12);
            }
        }
    }
}
