//! Small dense symmetric linear algebra: Jacobi eigensolver, matrix
//! functions (S^{-1/2} for Löwdin orthogonalization), and helpers.
//!
//! Written in-repo (DESIGN.md §5) — the matrices here are at most a few
//! hundred rows (basis sets, qubit Hamiltonians of test molecules), where
//! the cyclic Jacobi method is simple, numerically robust, and fast enough.

/// A dense symmetric matrix stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major slice (must be symmetric; enforced in debug).
    pub fn from_rows(n: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), n * n);
        let m = SymMatrix {
            n,
            data: rows.to_vec(),
        };
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..i {
                debug_assert!(
                    (m.get(i, j) - m.get(j, i)).abs() < 1e-10,
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric element assignment (sets both (i,j) and (j,i)).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Frobenius norm of the off-diagonal part.
    pub fn offdiag_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j) * self.get(i, j);
                }
            }
        }
        s.sqrt()
    }

    /// Cyclic Jacobi eigendecomposition: returns `(eigenvalues, vectors)`
    /// with eigenvalues ascending and `vectors[k]` the k-th eigenvector.
    pub fn eigen(&self) -> (Vec<f64>, Vec<Vec<f64>>) {
        let n = self.n;
        let mut a = self.clone();
        // v holds the accumulated rotations: columns are eigenvectors.
        let mut v = vec![0.0f64; n * n];
        for i in 0..n {
            v[i * n + i] = 1.0;
        }
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            if a.offdiag_norm() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-14 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Textbook Jacobi update touching each symmetric pair
                    // exactly once (SymMatrix::set mirrors writes, so the
                    // two-phase row/column form would double-apply).
                    let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                    let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                    a.set(p, p, new_pp);
                    a.set(q, q, new_qq);
                    a.set(p, q, 0.0);
                    for k in 0..n {
                        if k == p || k == q {
                            continue;
                        }
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    // Accumulate rotation into v.
                    for vk in v.chunks_exact_mut(n) {
                        let vp = vk[p];
                        let vq = vk[q];
                        vk[p] = c * vp - s * vq;
                        vk[q] = s * vp + c * vq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
        let vectors: Vec<Vec<f64>> = pairs
            .iter()
            .map(|&(_, col)| (0..n).map(|row| v[row * n + col]).collect())
            .collect();
        (eigenvalues, vectors)
    }

    /// Matrix inverse square root `M^{-1/2}` via eigendecomposition; used
    /// for Löwdin symmetric orthogonalization of the overlap matrix.
    /// Requires all eigenvalues > `eps`.
    pub fn inv_sqrt(&self, eps: f64) -> SymMatrix {
        let (vals, vecs) = self.eigen();
        let n = self.n;
        let mut out = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for (k, &l) in vals.iter().enumerate() {
                    assert!(l > eps, "matrix not positive definite (eigenvalue {l})");
                    s += vecs[k][i] * vecs[k][j] / l.sqrt();
                }
                out.set(i, j, s);
            }
        }
        out
    }

    /// Congruence transform `X^T A X` (X symmetric here, so `X A X`).
    pub fn congruence(&self, x: &SymMatrix) -> SymMatrix {
        let n = self.n;
        assert_eq!(x.n, n);
        // tmp = A X
        let mut tmp = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.get(i, k) * x.get(k, j);
                }
                tmp[i * n + j] = s;
            }
        }
        // out = X tmp
        let mut out = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += x.get(i, k) * tmp[k * n + j];
                }
                out.set(i, j, s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let m = SymMatrix::from_rows(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, _) = m.eigen();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_of_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = SymMatrix::from_rows(2, &[2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = m.eigen();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        // Check A v = lambda v for the first eigenvector.
        let v = &vecs[0];
        let av0 = 2.0 * v[0] + v[1];
        assert!((av0 - vals[0] * v[0]).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = SymMatrix::from_rows(
            4,
            &[
                4.0, 1.0, 0.5, 0.2, 1.0, 3.0, 0.7, 0.1, 0.5, 0.7, 2.0, 0.3, 0.2, 0.1, 0.3, 1.0,
            ],
        );
        let (_, vecs) = m.eigen();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = vecs[i].iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}) dot = {dot}");
            }
        }
    }

    #[test]
    fn inv_sqrt_squares_to_inverse() {
        let m = SymMatrix::from_rows(2, &[2.0, 0.5, 0.5, 1.5]);
        let x = m.inv_sqrt(1e-12);
        // X M X should be the identity.
        let id = m.congruence(&x);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.get(i, j) - expect).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn congruence_with_identity_is_noop() {
        let m = SymMatrix::from_rows(2, &[2.0, 0.5, 0.5, 1.5]);
        let id = SymMatrix::identity(2);
        assert_eq!(m.congruence(&id), m);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = SymMatrix::from_rows(3, &[2.0, -1.0, 0.3, -1.0, 2.5, 0.4, 0.3, 0.4, 1.8]);
        let (vals, vecs) = m.eigen();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += vals[k] * vecs[k][i] * vecs[k][j];
                }
                assert!((s - m.get(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
    }
}
