//! Molecular geometries — hydrogen rings and chains.
//!
//! The paper's chemistry evaluation (Fig. 5, Fig. 7) uses "a hydrogen ring
//! with 32 atoms in the STO-3G basis set", i.e. 32 spatial orbitals / 64
//! spin-orbitals.

use crate::gaussian::{ContractedGaussian, ANGSTROM};

/// A point nucleus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Nuclear charge Z.
    pub charge: f64,
    /// Position in bohr.
    pub position: [f64; 3],
}

/// A molecule: nuclei plus an implied STO-3G basis (one 1s orbital per H).
#[derive(Clone, Debug, PartialEq)]
pub struct Molecule {
    /// The nuclei.
    pub atoms: Vec<Atom>,
}

impl Molecule {
    /// A ring of `n` hydrogen atoms with nearest-neighbor distance
    /// `bond_angstrom` (in angstrom), lying in the xy plane.
    pub fn hydrogen_ring(n: usize, bond_angstrom: f64) -> Self {
        assert!(n >= 2, "a ring needs at least two atoms");
        let bond = bond_angstrom * ANGSTROM;
        // Chord length bond => radius = bond / (2 sin(pi/n)).
        let radius = bond / (2.0 * (std::f64::consts::PI / n as f64).sin());
        let atoms = (0..n)
            .map(|k| {
                let phi = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Atom {
                    charge: 1.0,
                    position: [radius * phi.cos(), radius * phi.sin(), 0.0],
                }
            })
            .collect();
        Molecule { atoms }
    }

    /// A linear chain of `n` hydrogens with spacing `bond_angstrom`.
    pub fn hydrogen_chain(n: usize, bond_angstrom: f64) -> Self {
        let bond = bond_angstrom * ANGSTROM;
        let atoms = (0..n)
            .map(|k| Atom {
                charge: 1.0,
                position: [k as f64 * bond, 0.0, 0.0],
            })
            .collect();
        Molecule { atoms }
    }

    /// Number of spatial orbitals (one STO-3G 1s per hydrogen).
    pub fn n_orbitals(&self) -> usize {
        self.atoms.len()
    }

    /// Number of spin-orbitals (qubits after encoding).
    pub fn n_spin_orbitals(&self) -> usize {
        2 * self.n_orbitals()
    }

    /// Number of electrons (neutral molecule).
    pub fn n_electrons(&self) -> usize {
        self.atoms.iter().map(|a| a.charge as usize).sum()
    }

    /// The STO-3G basis set: one contracted 1s Gaussian per atom.
    pub fn basis(&self) -> Vec<ContractedGaussian> {
        self.atoms
            .iter()
            .map(|a| ContractedGaussian::sto3g_hydrogen(a.position))
            .collect()
    }

    /// Nuclear repulsion energy `sum_{i<j} Z_i Z_j / |R_i - R_j|` (hartree).
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in 0..i {
                let d =
                    crate::gaussian::dist2(self.atoms[i].position, self.atoms[j].position).sqrt();
                e += self.atoms[i].charge * self.atoms[j].charge / d;
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_equal_bonds() {
        let m = Molecule::hydrogen_ring(6, 1.0);
        let bond = 1.0 * ANGSTROM;
        for k in 0..6 {
            let a = m.atoms[k].position;
            let b = m.atoms[(k + 1) % 6].position;
            let d = crate::gaussian::dist2(a, b).sqrt();
            assert!((d - bond).abs() < 1e-10, "edge {k}: {d}");
        }
    }

    #[test]
    fn ring_counts() {
        let m = Molecule::hydrogen_ring(32, 1.0);
        assert_eq!(m.n_orbitals(), 32);
        assert_eq!(m.n_spin_orbitals(), 64);
        assert_eq!(m.n_electrons(), 32);
    }

    #[test]
    fn chain_spacing() {
        let m = Molecule::hydrogen_chain(3, 0.8);
        let d01 = crate::gaussian::dist2(m.atoms[0].position, m.atoms[1].position).sqrt();
        assert!((d01 - 0.8 * ANGSTROM).abs() < 1e-12);
    }

    #[test]
    fn h2_nuclear_repulsion() {
        // H2 at 1.4 bohr: E_nuc = 1/1.4 = 0.7142857.
        let m = Molecule::hydrogen_chain(2, 1.4 / ANGSTROM);
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-10);
    }
}
