//! The SENDQ parameter set (Section 5).
//!
//! SENDQ models a distributed quantum computer with two parameter groups:
//!
//! *Communication*: `S` (qubits buffering EPR pairs per node), `E` (time to
//! establish one EPR pair; a node participates in at most one establishment
//! at a time), `N` (number of nodes).
//!
//! *Local computation*: `D` (delay of local operations — refined here into
//! the rotation delay `D_R`, parity-measurement delay `D_M` and fixup delay
//! `D_F` used by Section 7), `Q` (logical compute qubits per node; `Q + S`
//! is constant per node).
//!
//! Classical communication is deliberately *not* modeled (Section 5: the
//! logical clock is slow enough to hide classical latency).

/// SENDQ model parameters. Times are in arbitrary consistent units
/// (logical cycles, microseconds, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SendqParams {
    /// `S`: EPR-buffer qubits per node.
    pub s: u32,
    /// `E`: time to establish one EPR pair with any other node.
    pub e: f64,
    /// `N`: number of nodes.
    pub n: usize,
    /// `Q`: logical compute qubits per node.
    pub q: u32,
    /// `D_R`: delay of a rotation gate (arbitrary-angle or T; the dominant
    /// local cost per Section 3 — magic-state distillation).
    pub d_r: f64,
    /// `D_M`: delay of a local two-qubit parity measurement.
    pub d_m: f64,
    /// `D_F`: delay of a Pauli fixup gate.
    pub d_f: f64,
}

impl SendqParams {
    /// A reasonable mid-term machine following Section 3's discussion:
    /// logical cycle 10 us, rotations ~100 cycles (distillation), EPR
    /// establishment ~10 logical cycles. Units: microseconds.
    pub fn midterm(n: usize) -> Self {
        SendqParams {
            s: 2,
            e: 100.0,
            n,
            q: 64,
            d_r: 1000.0,
            d_m: 10.0,
            d_f: 10.0,
        }
    }

    /// Per-node EPR injection bandwidth `E^{-1}` (Section 5.1).
    pub fn epr_bandwidth(&self) -> f64 {
        1.0 / self.e
    }

    /// Total qubits per node (`Q + S` is constant; Section 5.1).
    pub fn qubits_per_node(&self) -> u32 {
        self.q + self.s
    }

    /// Returns a copy with a different node count.
    pub fn with_nodes(&self, n: usize) -> Self {
        SendqParams { n, ..*self }
    }

    /// Returns a copy trading compute qubits for EPR buffer (Q + S const).
    pub fn with_buffer(&self, s: u32) -> Self {
        let total = self.qubits_per_node();
        assert!(s < total, "S must leave at least one compute qubit");
        SendqParams {
            s,
            q: total - s,
            ..*self
        }
    }
}

/// `⌈log2 n⌉` as f64 (0 for n <= 1) — the tree-depth helper used by
/// several closed forms.
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(64), 6);
    }

    #[test]
    fn buffer_tradeoff_preserves_total() {
        let p = SendqParams::midterm(8);
        let total = p.qubits_per_node();
        let p2 = p.with_buffer(10);
        assert_eq!(p2.qubits_per_node(), total);
        assert_eq!(p2.s, 10);
    }

    #[test]
    fn bandwidth_is_inverse_e() {
        let p = SendqParams::midterm(4);
        assert!((p.epr_bandwidth() * p.e - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one compute qubit")]
    fn buffer_cannot_consume_all_qubits() {
        let p = SendqParams::midterm(4);
        let _ = p.with_buffer(p.qubits_per_node());
    }
}
