//! Closed-form SENDQ analyses of the paper's Section 7 applications,
//! each validated against the discrete-event scheduler.

pub mod bcast;
pub mod chemistry;
pub mod tfim;
