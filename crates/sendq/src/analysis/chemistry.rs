//! Section 7.3 — SENDQ analysis of the three circuit methods for
//! `exp(-i t Z_{i1} ... Z_{ik})` (Fig. 6), assuming each involved qubit
//! lives on a different node and rotations dominate local cost:
//!
//! | method          | EPR pairs | delay                  | needs |
//! |-----------------|-----------|------------------------|-------|
//! | (a) in-place    | 2(k−1)    | `2E⌈log₂k⌉ + D_R`      | S=1   |
//! | (b) out-of-place| k         | `Ek + D_R`             | S=1   |
//! | (c) const-depth | k         | `2E + D_R`             | S≥2   |

use crate::event_sim::{EventSim, Schedule, TaskId};
use crate::model::{ceil_log2, SendqParams};

/// The three implementations of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParityMethod {
    /// Fig. 6(a): binary tree of distributed CNOTs, parity in place.
    InPlace,
    /// Fig. 6(b): serial distributed CNOTs into an auxiliary qubit;
    /// uncomputation is classical-only.
    OutOfPlace,
    /// Fig. 6(c): constant-depth via cat state / fanned-out control.
    ConstantDepth,
}

/// EPR pairs used by a method on a `k`-qubit term, all qubits on distinct
/// nodes (Section 7.3's accounting).
pub fn epr_pairs(method: ParityMethod, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    match method {
        ParityMethod::InPlace => 2 * (k - 1),
        ParityMethod::OutOfPlace => k,
        ParityMethod::ConstantDepth => k,
    }
}

/// Delay of a method on a `k`-qubit term (Section 7.3 closed forms).
/// For `k = 2` the cat-state chain has a single edge, so only one EPR
/// round is needed (the paper's `2E` covers the general case).
pub fn delay(method: ParityMethod, k: usize, p: &SendqParams) -> f64 {
    if k <= 1 {
        return p.d_r;
    }
    match method {
        ParityMethod::InPlace => 2.0 * p.e * f64::from(ceil_log2(k)) + p.d_r,
        ParityMethod::OutOfPlace => p.e * k as f64 + p.d_r,
        ParityMethod::ConstantDepth => {
            let rounds = if k > 2 { 2.0 } else { 1.0 };
            rounds * p.e + p.d_r
        }
    }
}

/// Minimum `S` a method needs (Section 7.3: constant depth requires S>=2).
pub fn min_s(method: ParityMethod) -> u32 {
    match method {
        ParityMethod::InPlace | ParityMethod::OutOfPlace => 1,
        ParityMethod::ConstantDepth => 2,
    }
}

/// Builds the event-sim schedule for a method on `k` distinct nodes and
/// returns it (used to validate the closed forms).
pub fn schedule(method: ParityMethod, k: usize, p: &SendqParams) -> Schedule {
    match method {
        ParityMethod::InPlace => in_place_schedule(k, p),
        ParityMethod::OutOfPlace => out_of_place_schedule(k, p),
        ParityMethod::ConstantDepth => constant_depth_schedule(k, p),
    }
}

/// Fig. 6(a): fan-in tree of distributed CNOTs (each = 1 EPR + classical),
/// rotation at the root, mirrored fan-out to uncompute.
fn in_place_schedule(k: usize, p: &SendqParams) -> Schedule {
    let mut sim = EventSim::new(k.max(1));
    if k <= 1 {
        sim.local(0, p.d_r, &[]);
        return sim.run();
    }
    // Fan-in: at level l (stride s = 2^l), node i receives parity from
    // node i + s for i % 2s == 0. A distributed CNOT between a and b is one
    // EPR pair plus classical fixups (zero time).
    let mut ready: Vec<Option<TaskId>> = vec![None; k];
    let mut levels: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut s = 1usize;
    while s < k {
        let mut level = Vec::new();
        let mut i = 0;
        while i + s < k {
            level.push((i, i + s));
            i += 2 * s;
        }
        levels.push(level);
        s *= 2;
    }
    for level in &levels {
        for &(a, b) in level {
            let deps: Vec<TaskId> = ready[a].into_iter().chain(ready[b]).collect();
            let e = sim.epr(a, b, p.e, &deps);
            // Both halves consumed immediately by the distributed CNOT.
            let c = sim.local_consuming(a, 0.0, 1, &[e]);
            let c2 = sim.local_consuming(b, 0.0, 1, &[e]);
            let j = sim.classical(&[c, c2]);
            ready[a] = Some(j);
            ready[b] = Some(j);
        }
    }
    // Rotation on the tree root (node 0).
    let rot_deps: Vec<TaskId> = ready[0].into_iter().collect();
    let rot = sim.local(0, p.d_r, &rot_deps);
    // Mirrored fan-out (uncompute): same tree in reverse, each again 1 EPR.
    let mut ready: Vec<Option<TaskId>> = vec![Some(rot); k];
    for level in levels.iter().rev() {
        for &(a, b) in level {
            let deps: Vec<TaskId> = ready[a].into_iter().chain(ready[b]).collect();
            let e = sim.epr(a, b, p.e, &deps);
            let c = sim.local_consuming(a, 0.0, 1, &[e]);
            let c2 = sim.local_consuming(b, 0.0, 1, &[e]);
            let j = sim.classical(&[c, c2]);
            ready[a] = Some(j);
            ready[b] = Some(j);
        }
    }
    sim.run()
}

/// Fig. 6(b): k serial distributed CNOTs into the aux node (node 0 hosts
/// the auxiliary qubit alongside q0), rotation, classical-only uncompute.
fn out_of_place_schedule(k: usize, p: &SendqParams) -> Schedule {
    let mut sim = EventSim::new(k.max(1));
    if k <= 1 {
        sim.local(0, p.d_r, &[]);
        return sim.run();
    }
    // The aux node's EPR engine serializes the k distributed CNOTs. The
    // paper counts k EPR pairs (one per involved qubit, aux co-located
    // with none of them conceptually; we host aux on an extra engine-view
    // of node 0 but still pay k pairs by including q0's).
    let mut last: Option<TaskId> = None;
    for src in 0..k {
        let partner = if src == 0 { 1 } else { src };
        let deps: Vec<TaskId> = last.into_iter().collect();
        // EPR between the aux node (0) and the source node. For src == 0 the
        // paper still counts a pair since aux is modeled on its own node;
        // we approximate with the engine of node 0 plus the src engine.
        let e = sim.epr(0, partner.max(1), p.e, &deps);
        let c = sim.local_consuming(0, 0.0, 1, &[e]);
        last = Some(c);
    }
    let rot = sim.local(0, p.d_r, &last.into_iter().collect::<Vec<_>>());
    // Uncompute: X-basis measurement + classical Z fixups — zero quantum time.
    sim.classical(&[rot]);
    sim.run()
}

/// Fig. 6(c): cat state across the k nodes (chain, 2 rounds), local CNOTs /
/// parity measurements, rotation, classical-only uncompute.
fn constant_depth_schedule(k: usize, p: &SendqParams) -> Schedule {
    let mut sim = EventSim::new(k.max(1));
    if k <= 1 {
        sim.local(0, p.d_r, &[]);
        return sim.run();
    }
    let mut edges = Vec::new();
    for i in (0..k - 1).step_by(2) {
        edges.push((i, sim.epr(i, i + 1, p.e, &[])));
    }
    for i in (1..k - 1).step_by(2) {
        edges.push((i, sim.epr(i, i + 1, p.e, &[])));
    }
    edges.sort_by_key(|&(i, _)| i);
    // Merges (zero-time locals consuming halves), then the rotation on the
    // node hosting the ancilla (node 0).
    let mut merge_deps = Vec::new();
    for v in 1..k - 1 {
        let l = edges[v - 1].1;
        let r = edges[v].1;
        merge_deps.push(sim.local_consuming(v, 0.0, 2, &[l, r]));
    }
    let own = sim.local_consuming(0, 0.0, 1, &[edges[0].1]);
    merge_deps.push(own);
    let sync = sim.classical(&merge_deps);
    sim.local(0, p.d_r, &[sync]);
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SendqParams {
        SendqParams {
            s: 2,
            e: 50.0,
            n: 64,
            q: 32,
            d_r: 500.0,
            d_m: 0.0,
            d_f: 0.0,
        }
    }

    #[test]
    fn epr_counts_match_paper() {
        assert_eq!(epr_pairs(ParityMethod::InPlace, 4), 6);
        assert_eq!(epr_pairs(ParityMethod::OutOfPlace, 4), 4);
        assert_eq!(epr_pairs(ParityMethod::ConstantDepth, 4), 4);
        assert_eq!(epr_pairs(ParityMethod::InPlace, 1), 0);
    }

    #[test]
    fn closed_forms_for_k4() {
        let p = params();
        assert_eq!(
            delay(ParityMethod::InPlace, 4, &p),
            2.0 * 50.0 * 2.0 + 500.0
        );
        assert_eq!(delay(ParityMethod::OutOfPlace, 4, &p), 50.0 * 4.0 + 500.0);
        assert_eq!(
            delay(ParityMethod::ConstantDepth, 4, &p),
            2.0 * 50.0 + 500.0
        );
    }

    #[test]
    fn in_place_schedule_matches_closed_form() {
        let p = params();
        for k in [2usize, 3, 4, 8, 16] {
            let sched = schedule(ParityMethod::InPlace, k, &p);
            let closed = delay(ParityMethod::InPlace, k, &p);
            assert!(
                (sched.makespan - closed).abs() < 1e-9,
                "k={k}: sim {} vs closed {closed}",
                sched.makespan
            );
        }
    }

    #[test]
    fn out_of_place_schedule_matches_closed_form() {
        let p = params();
        for k in [2usize, 4, 8] {
            let sched = schedule(ParityMethod::OutOfPlace, k, &p);
            let closed = delay(ParityMethod::OutOfPlace, k, &p);
            assert!(
                (sched.makespan - closed).abs() < 1e-9,
                "k={k}: sim {} vs closed {closed}",
                sched.makespan
            );
        }
    }

    #[test]
    fn constant_depth_schedule_matches_closed_form() {
        let p = params();
        for k in [3usize, 4, 8, 16, 32] {
            let sched = schedule(ParityMethod::ConstantDepth, k, &p);
            let closed = delay(ParityMethod::ConstantDepth, k, &p);
            assert!(
                (sched.makespan - closed).abs() < 1e-9,
                "k={k}: sim {} vs closed {closed}",
                sched.makespan
            );
        }
    }

    #[test]
    fn constant_depth_needs_s2() {
        let p = params();
        let sched = schedule(ParityMethod::ConstantDepth, 8, &p);
        assert_eq!(sched.max_buffer_peak(), 2);
        let sched = schedule(ParityMethod::InPlace, 8, &p);
        assert!(sched.max_buffer_peak() <= 1, "in-place runs with S=1");
    }

    #[test]
    fn method_ranking_by_k() {
        let p = params();
        // For k = 2 the single-edge cat state beats the in-place tree.
        assert!(delay(ParityMethod::ConstantDepth, 2, &p) < delay(ParityMethod::InPlace, 2, &p));
        // For large k, constant depth dominates.
        for k in [8usize, 16, 32] {
            assert!(
                delay(ParityMethod::ConstantDepth, k, &p) < delay(ParityMethod::InPlace, k, &p)
            );
            assert!(
                delay(ParityMethod::ConstantDepth, k, &p) < delay(ParityMethod::OutOfPlace, k, &p)
            );
        }
        // Out-of-place only beats in-place for small k / slow E... check one relation:
        assert!(delay(ParityMethod::InPlace, 16, &p) < delay(ParityMethod::OutOfPlace, 16, &p));
    }
}
