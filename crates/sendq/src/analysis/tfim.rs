//! Section 7.2 — SENDQ analysis of distributed TFIM time evolution.
//!
//! With `n` spins block-distributed over `N` nodes and rotations serialized
//! per node (T-factory limited), one first-order Trotter step costs
//! `D_Trotter = 2 (n/N) D_R` of local compute. Each node exchanges one
//! boundary qubit with each ring neighbor per step (2 EPR pairs per node
//! per step). The paper's results, which this module reproduces in closed
//! form *and* via the event simulator:
//!
//! * `S >= 2`: per-step delay `max(D_Trotter, 2E)`;
//! * `S = 1`: per-step delay `max(D_Trotter, 2E + 2 D_R)` — a buffer-starved
//!   node must interleave rotation + unreceive between EPR requests;
//! * communication is hidden when `E^{-1} n D_R >= N` (node-count rule).

use crate::event_sim::{EventSim, TaskId};
use crate::model::SendqParams;

/// Local compute per Trotter step: `2 (n/N) D_R` (Section 7.2).
pub fn d_trotter(p: &SendqParams, n_spins: usize) -> f64 {
    2.0 * (n_spins as f64 / p.n as f64) * p.d_r
}

/// Per-step delay with `S >= 2`: `max(D_Trotter, 2E)`.
pub fn step_delay_s2(p: &SendqParams, n_spins: usize) -> f64 {
    d_trotter(p, n_spins).max(2.0 * p.e)
}

/// Per-step delay with `S = 1`: `max(D_Trotter, 2E + 2 D_R)`.
pub fn step_delay_s1(p: &SendqParams, n_spins: usize) -> f64 {
    d_trotter(p, n_spins).max(2.0 * p.e + 2.0 * p.d_r)
}

/// The paper's node-count guidance: communication is not a bottleneck
/// (for `S >= 2`) as long as `E^{-1} n D_R >= N`.
pub fn max_nodes_without_bottleneck(p: &SendqParams, n_spins: usize) -> usize {
    (n_spins as f64 * p.d_r / p.e).floor() as usize
}

/// Relative overhead of S=1 vs S>=2 for the same machine.
pub fn s1_overhead(p: &SendqParams, n_spins: usize) -> f64 {
    step_delay_s1(p, n_spins) / step_delay_s2(p, n_spins)
}

/// Builds `steps` Trotter steps of the boundary-exchange pipeline for one
/// representative node in the event simulator and returns the measured
/// steady-state per-step delay.
///
/// Model (matching the optimized schedules of Section 7.2): per step the
/// node needs 2 EPR pairs (one per ring neighbor), performs
/// `2 n/N` serialized rotations, and un-receives the boundary qubits
/// (classical-only). With `s_is_1`, the second EPR request may only be
/// issued once the first buffered half has been consumed by its boundary
/// rotation; with `S >= 2` both establish back-to-back and overlap compute.
pub fn simulate_step_delay(p: &SendqParams, n_spins: usize, s_is_1: bool, steps: usize) -> f64 {
    assert!(steps >= 4, "need several steps to reach steady state");
    // Node 0 is the observed node; nodes 1 and 2 stand in for its two ring
    // neighbors (their own work is not modeled — we only constrain node 0).
    let mut sim = EventSim::new(3);
    let rotations_per_step = 2 * (n_spins / p.n);
    assert!(
        rotations_per_step >= 2,
        "need at least the two boundary rotations"
    );
    // The paper's optimized schedule halts/reorders local computation
    // around the communication gaps, so the bulk rotations are split into
    // two slabs that fill the windows while EPR pairs establish.
    let bulk = rotations_per_step - 2;
    let bulk1 = bulk / 2;
    let bulk2 = bulk - bulk1;
    let mut prev_r1: Option<TaskId> = None;
    let mut prev_r2: Option<TaskId> = None;
    let mut step_end_times: Vec<TaskId> = Vec::new();
    for _ in 0..steps {
        // EPR 1 (left neighbor). S=1: the single buffer slot frees only
        // when the *previous* step's second pair was consumed. S>=2: slot k
        // frees when pair k-2 was consumed (two slots, FIFO).
        let deps1: Vec<TaskId> = if s_is_1 {
            prev_r2.into_iter().collect()
        } else {
            prev_r1.into_iter().collect()
        };
        let e1 = sim.epr(0, 1, p.e, &deps1);
        for _ in 0..bulk1 {
            sim.local(0, p.d_r, &[]);
        }
        // Boundary rotation 1 consumes the received half (rotation, then
        // classical unreceive which frees the buffer).
        let r1 = sim.local_consuming(0, p.d_r, 1, &[e1]);
        // EPR 2 (right neighbor): S=1 must wait for the unreceive of
        // boundary 1; S>=2 waits for the slot freed by pair k-2.
        let deps2: Vec<TaskId> = if s_is_1 {
            vec![r1]
        } else {
            prev_r2.into_iter().collect()
        };
        let e2 = sim.epr(0, 2, p.e, &deps2);
        for _ in 0..bulk2 {
            sim.local(0, p.d_r, &[]);
        }
        let r2 = sim.local_consuming(0, p.d_r, 1, &[e2]);
        prev_r1 = Some(r1);
        prev_r2 = Some(r2);
        step_end_times.push(r2);
    }
    let sched = sim.run();
    // Steady-state delay: average spacing between the final steps' ends.
    let k0 = steps / 2;
    let t0 = sched.end(step_end_times[k0]);
    let t1 = sched.end(step_end_times[steps - 1]);
    (t1 - t0) / (steps - 1 - k0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n_nodes: usize, e: f64, d_r: f64) -> SendqParams {
        SendqParams {
            s: 2,
            e,
            n: n_nodes,
            q: 32,
            d_r,
            d_m: 1.0,
            d_f: 1.0,
        }
    }

    #[test]
    fn d_trotter_scales_inversely_with_nodes() {
        let p4 = params(4, 10.0, 5.0);
        let p8 = params(8, 10.0, 5.0);
        assert_eq!(d_trotter(&p4, 64), 2.0 * 16.0 * 5.0);
        assert_eq!(d_trotter(&p8, 64), 2.0 * 8.0 * 5.0);
    }

    #[test]
    fn compute_bound_regime_matches_sim() {
        // Large D_R: compute dominates; both S=1 and S>=2 hit D_Trotter.
        let p = params(4, 10.0, 100.0);
        let n_spins = 64;
        let closed = step_delay_s2(&p, n_spins);
        let sim_s2 = simulate_step_delay(&p, n_spins, false, 12);
        assert!(
            (sim_s2 - closed).abs() / closed < 1e-9,
            "sim {sim_s2} vs closed {closed}"
        );
        // S=1 also compute-bound here: 2E + 2D_R = 220 < 3200.
        let sim_s1 = simulate_step_delay(&p, n_spins, true, 12);
        assert!((sim_s1 - step_delay_s1(&p, n_spins)).abs() / closed < 1e-9);
    }

    #[test]
    fn communication_bound_regime_shows_s1_penalty() {
        // Large E: communication dominates. S>=2: 2E; S=1: 2E + 2 D_R.
        let p = params(16, 1000.0, 50.0);
        let n_spins = 64; // 4 spins per node -> D_Trotter = 400 << 2E
        let s2 = simulate_step_delay(&p, n_spins, false, 16);
        let s1 = simulate_step_delay(&p, n_spins, true, 16);
        assert!(
            (s2 - 2.0 * p.e).abs() / s2 < 1e-9,
            "S>=2: {s2} vs {}",
            2.0 * p.e
        );
        assert!(
            (s1 - (2.0 * p.e + 2.0 * p.d_r)).abs() / s1 < 1e-9,
            "S=1: {s1} vs {}",
            2.0 * p.e + 2.0 * p.d_r
        );
        assert!(s1 > s2, "the model predicts an S=1 overhead (Section 7.2)");
    }

    #[test]
    fn node_count_rule() {
        let p = params(4, 100.0, 10.0);
        // E^{-1} n D_R = 64*10/100 = 6.4 -> at most 6 nodes keep comm hidden.
        assert_eq!(max_nodes_without_bottleneck(&p, 64), 6);
        // Check consistency with the closed forms.
        let ok = params(6, 100.0, 10.0);
        assert!(
            d_trotter(&ok, 64) >= 2.0 * ok.e * (6.0 / 6.4),
            "close to the boundary"
        );
        let bad = params(8, 100.0, 10.0);
        assert!(
            d_trotter(&bad, 64) < 2.0 * bad.e,
            "beyond the rule, comm-bound"
        );
    }

    #[test]
    fn s1_overhead_is_at_least_one() {
        for e in [10.0, 100.0, 1000.0] {
            for d_r in [1.0, 50.0, 400.0] {
                let p = params(8, e, d_r);
                assert!(s1_overhead(&p, 64) >= 1.0);
            }
        }
    }

    #[test]
    fn crossover_between_regimes() {
        // Scan node counts: small N compute-bound, large N comm-bound.
        let n_spins = 64;
        let mut prev = f64::INFINITY;
        for n_nodes in [1usize, 2, 4, 8, 16, 32] {
            if n_spins / n_nodes < 1 {
                break;
            }
            let p = params(n_nodes, 200.0, 10.0);
            let d = step_delay_s2(&p, n_spins);
            assert!(
                d <= prev + 1e-9,
                "delay must be non-increasing until the comm floor"
            );
            prev = d;
        }
        // At N=32: D_Trotter = 2*2*10 = 40 < 2E = 400 -> floored at 400.
        let p = params(32, 200.0, 10.0);
        assert_eq!(step_delay_s2(&p, n_spins), 400.0);
    }
}
