//! Section 7.1 — optimizing `QMPI_Bcast` in the SENDQ model.
//!
//! Two implementations are compared:
//!
//! * **Binomial tree** of `QMPI_Send`/`Recv`: `S = 1` suffices and the
//!   runtime is `E ⌈log₂ N⌉`.
//! * **Cat state** (Fig. 4): EPR pairs along a chain spanning tree (two
//!   parallel rounds), local parity measurements, classical exscan fixup —
//!   quantum runtime `2E + D_M + D_F`, requires `S ≥ 2` on interior nodes.

use crate::event_sim::{EventSim, Schedule, TaskId};
use crate::model::{ceil_log2, SendqParams};

/// Closed form: tree broadcast runtime `E ⌈log₂ N⌉` (Section 7.1).
pub fn tree_bcast_time(p: &SendqParams) -> f64 {
    p.e * f64::from(ceil_log2(p.n))
}

/// Closed form: cat-state broadcast runtime `2E + D_M + D_F` (Section 7.1).
/// For `N = 2` a single EPR round suffices.
pub fn cat_bcast_time(p: &SendqParams) -> f64 {
    let rounds = if p.n > 2 { 2.0 } else { 1.0 };
    rounds * p.e + p.d_m + p.d_f
}

/// Node count above which the cat-state implementation wins.
pub fn crossover_n(p: &SendqParams) -> usize {
    for n in 2..=1 << 20 {
        let q = p.with_nodes(n);
        if cat_bcast_time(&q) < tree_bcast_time(&q) {
            return n;
        }
    }
    usize::MAX
}

/// Builds the binomial-tree broadcast schedule (root 0) in the event
/// simulator and returns it.
pub fn tree_bcast_schedule(p: &SendqParams) -> Schedule {
    let n = p.n;
    let mut sim = EventSim::new(n.max(1));
    // received[v] = the task after which node v holds the message.
    let mut received: Vec<Option<TaskId>> = vec![None; n];
    let mut step = 1usize;
    while step < n {
        for v in 0..step.min(n) {
            let dst = v + step;
            if dst < n {
                let deps: Vec<TaskId> = received[v].into_iter().collect();
                let e = sim.epr(v, dst, p.e, &deps);
                // The sender's half is measured immediately; the receiver's
                // half becomes the data qubit. Copy fixup is classical.
                let cs = sim.local_consuming(v, 0.0, 1, &[e]);
                let cr = sim.local_consuming(dst, 0.0, 1, &[e]);
                let c = sim.classical(&[cs, cr]);
                received[dst] = Some(c);
            }
        }
        step *= 2;
    }
    sim.run()
}

/// Builds the cat-state broadcast schedule (Fig. 4): chain EPR pairs (two
/// alternating rounds fall out of the per-node engine constraint), local
/// parity measurements, classical exscan, X fixups.
pub fn cat_bcast_schedule(p: &SendqParams) -> Schedule {
    let n = p.n;
    let mut sim = EventSim::new(n.max(1));
    if n < 2 {
        return sim.run();
    }
    // Chain EPR pairs; even edges first so the greedy scheduler packs them
    // into round one, odd edges into round two.
    let mut edge_tasks = Vec::with_capacity(n - 1);
    for k in (0..n - 1).step_by(2) {
        edge_tasks.push((k, sim.epr(k, k + 1, p.e, &[])));
    }
    for k in (1..n - 1).step_by(2) {
        edge_tasks.push((k, sim.epr(k, k + 1, p.e, &[])));
    }
    edge_tasks.sort_by_key(|&(k, _)| k);
    // Interior nodes merge with a parity measurement that consumes both
    // halves; ends keep theirs.
    let mut parities = Vec::new();
    for v in 1..n - 1 {
        let left = edge_tasks[v - 1].1;
        let right = edge_tasks[v].1;
        parities.push(sim.local_consuming(v, p.d_m, 2, &[left, right]));
    }
    // Root parity measurement folding the data qubit in.
    let root_deps = [edge_tasks[0].1];
    let root_parity = sim.local_consuming(0, p.d_m, 1, &root_deps);
    parities.push(root_parity);
    // Classical exscan of outcomes, then X fixups everywhere.
    let barrier = sim.classical(&parities);
    for v in 1..n {
        sim.local(v, p.d_f, &[barrier]);
    }
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize) -> SendqParams {
        SendqParams {
            s: 2,
            e: 100.0,
            n,
            q: 32,
            d_r: 1000.0,
            d_m: 10.0,
            d_f: 10.0,
        }
    }

    #[test]
    fn tree_closed_form_matches_event_sim() {
        for n in [2usize, 3, 4, 7, 8, 16, 33] {
            let p = params(n);
            let sched = tree_bcast_schedule(&p);
            assert!(
                (sched.makespan - tree_bcast_time(&p)).abs() < 1e-9,
                "n={n}: sim {} vs closed {}",
                sched.makespan,
                tree_bcast_time(&p)
            );
        }
    }

    #[test]
    fn tree_needs_only_s1() {
        for n in [2usize, 8, 16] {
            let sched = tree_bcast_schedule(&params(n));
            assert!(
                sched.max_buffer_peak() <= 1,
                "n={n}: tree bcast must run with S=1"
            );
        }
    }

    #[test]
    fn cat_closed_form_matches_event_sim() {
        for n in [2usize, 3, 4, 8, 16, 64] {
            let p = params(n);
            let sched = cat_bcast_schedule(&p);
            assert!(
                (sched.makespan - cat_bcast_time(&p)).abs() < 1e-9,
                "n={n}: sim {} vs closed {}",
                sched.makespan,
                cat_bcast_time(&p)
            );
        }
    }

    #[test]
    fn cat_needs_s2_on_interior_nodes() {
        let sched = cat_bcast_schedule(&params(8));
        assert_eq!(
            sched.max_buffer_peak(),
            2,
            "interior chain nodes hold two halves"
        );
    }

    #[test]
    fn cat_quantum_time_is_constant_in_n() {
        let t8 = cat_bcast_schedule(&params(8)).makespan;
        let t64 = cat_bcast_schedule(&params(64)).makespan;
        assert!((t8 - t64).abs() < 1e-9, "constant quantum depth");
    }

    #[test]
    fn tree_time_grows_logarithmically() {
        let p8 = params(8);
        let p64 = params(64);
        assert!((tree_bcast_time(&p8) - 3.0 * p8.e).abs() < 1e-12);
        assert!((tree_bcast_time(&p64) - 6.0 * p64.e).abs() < 1e-12);
    }

    #[test]
    fn crossover_is_where_log_exceeds_constant() {
        // With D_M = D_F = 10 and E = 100: cat = 220, tree = 100*ceil(log2 N);
        // tree < cat for N <= 4, cat wins from N = 5 (tree 300 > 220).
        let p = params(2);
        assert_eq!(crossover_n(&p), 5);
    }
}
