//! Discrete-event validation engine for SENDQ schedules.
//!
//! The closed forms of Section 7 (broadcast, TFIM, chemistry) are statements
//! about makespans of communication/computation schedules under the SENDQ
//! constraints:
//!
//! * a node participates in **at most one EPR establishment at a time**
//!   (one "EPR engine" per node);
//! * rotations serialize on a node's compute resource (T-factory limited,
//!   Section 7.2: "rotation gates cannot be executed in parallel");
//! * classical communication costs zero time (Section 5).
//!
//! This module schedules explicit task graphs under those constraints so
//! tests can assert `closed_form == simulated_makespan`.

use std::collections::HashMap;

/// Identifies a scheduled task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

/// What a task does and which resources it occupies.
#[derive(Clone, Debug)]
pub enum TaskKind {
    /// EPR establishment between two nodes: occupies both nodes' EPR
    /// engines for the duration; adds one buffered half to each node.
    EprPair {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// Local computation on one node (rotation, measurement, fixup):
    /// occupies the node's compute resource.
    Local {
        /// The node computing.
        node: usize,
        /// Number of buffered EPR halves this task consumes on `node`
        /// (freeing `S` budget when it completes).
        consumes_epr: u32,
    },
    /// Classical message or pure dependency: zero resources
    /// (classical latency is not modeled in SENDQ).
    Classical,
}

struct Task {
    kind: TaskKind,
    duration: f64,
    deps: Vec<TaskId>,
    label: String,
}

/// Result of scheduling a task graph.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Completion time of the whole graph.
    pub makespan: f64,
    /// Per-task `(start, end)` times.
    pub times: Vec<(f64, f64)>,
    /// Peak number of simultaneously buffered EPR halves per node — the
    /// minimum SENDQ `S` the schedule needs.
    pub buffer_peak: Vec<u32>,
}

impl Schedule {
    /// Start time of a task.
    pub fn start(&self, t: TaskId) -> f64 {
        self.times[t.0].0
    }

    /// End time of a task.
    pub fn end(&self, t: TaskId) -> f64 {
        self.times[t.0].1
    }

    /// Largest per-node buffer peak.
    pub fn max_buffer_peak(&self) -> u32 {
        self.buffer_peak.iter().copied().max().unwrap_or(0)
    }
}

/// A SENDQ task-graph builder and scheduler.
pub struct EventSim {
    n_nodes: usize,
    tasks: Vec<Task>,
}

impl EventSim {
    /// Creates a simulator over `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> Self {
        EventSim {
            n_nodes,
            tasks: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn push(
        &mut self,
        kind: TaskKind,
        duration: f64,
        deps: &[TaskId],
        label: impl Into<String>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependencies must be earlier tasks");
        }
        self.tasks.push(Task {
            kind,
            duration,
            deps: deps.to_vec(),
            label: label.into(),
        });
        id
    }

    /// Adds an EPR establishment of duration `e` between nodes `a` and `b`.
    pub fn epr(&mut self, a: usize, b: usize, e: f64, deps: &[TaskId]) -> TaskId {
        assert!(
            a < self.n_nodes && b < self.n_nodes && a != b,
            "invalid EPR endpoints"
        );
        self.push(TaskKind::EprPair { a, b }, e, deps, format!("epr({a},{b})"))
    }

    /// Adds a local operation of the given duration on `node`.
    pub fn local(&mut self, node: usize, duration: f64, deps: &[TaskId]) -> TaskId {
        assert!(node < self.n_nodes, "invalid node");
        self.push(
            TaskKind::Local {
                node,
                consumes_epr: 0,
            },
            duration,
            deps,
            format!("local({node})"),
        )
    }

    /// Adds a local operation that also consumes `consumes` buffered EPR
    /// halves on `node` when it completes.
    pub fn local_consuming(
        &mut self,
        node: usize,
        duration: f64,
        consumes: u32,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(node < self.n_nodes, "invalid node");
        self.push(
            TaskKind::Local {
                node,
                consumes_epr: consumes,
            },
            duration,
            deps,
            format!("local({node})-{consumes}"),
        )
    }

    /// Adds a zero-duration classical dependency node.
    pub fn classical(&mut self, deps: &[TaskId]) -> TaskId {
        self.push(TaskKind::Classical, 0.0, deps, "classical")
    }

    /// Greedy list-scheduling under the SENDQ resource constraints.
    /// Tasks are considered in insertion order (program order), which is
    /// also a topological order by construction.
    pub fn run(&self) -> Schedule {
        let mut epr_engine_free = vec![0.0f64; self.n_nodes];
        let mut compute_free = vec![0.0f64; self.n_nodes];
        let mut times = vec![(0.0f64, 0.0f64); self.tasks.len()];
        // Buffer tracking: record (+time, delta) events per node.
        let mut buffer_events: Vec<Vec<(f64, i64)>> = vec![Vec::new(); self.n_nodes];
        for (i, task) in self.tasks.iter().enumerate() {
            let dep_ready = task
                .deps
                .iter()
                .map(|d| times[d.0].1)
                .fold(0.0f64, f64::max);
            let (start, end) = match task.kind {
                TaskKind::EprPair { a, b } => {
                    let start = dep_ready.max(epr_engine_free[a]).max(epr_engine_free[b]);
                    let end = start + task.duration;
                    epr_engine_free[a] = end;
                    epr_engine_free[b] = end;
                    buffer_events[a].push((end, 1));
                    buffer_events[b].push((end, 1));
                    (start, end)
                }
                TaskKind::Local { node, consumes_epr } => {
                    let start = dep_ready.max(compute_free[node]);
                    let end = start + task.duration;
                    compute_free[node] = end;
                    if consumes_epr > 0 {
                        buffer_events[node].push((end, -(consumes_epr as i64)));
                    }
                    (start, end)
                }
                TaskKind::Classical => (dep_ready, dep_ready),
            };
            times[i] = (start, end);
        }
        let makespan = times.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
        let mut buffer_peak = vec![0u32; self.n_nodes];
        for (node, events) in buffer_events.iter_mut().enumerate() {
            events.sort_by(|x, y| {
                x.0.partial_cmp(&y.0)
                    .unwrap()
                    // Produce before consume at equal times: a half that is
                    // consumed the instant it exists still occupied a buffer
                    // slot.
                    .then(y.1.cmp(&x.1))
            });
            let mut level = 0i64;
            let mut peak = 0i64;
            for &(_, d) in events.iter() {
                level += d;
                peak = peak.max(level);
            }
            buffer_peak[node] = peak.max(0) as u32;
        }
        Schedule {
            makespan,
            times,
            buffer_peak,
        }
    }

    /// Task labels (diagnostics).
    pub fn labels(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.label.as_str()).collect()
    }

    /// Per-task metadata for debugging schedules.
    pub fn describe(&self, sched: &Schedule) -> String {
        let mut out = String::new();
        let mut rows: HashMap<usize, Vec<String>> = HashMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            let (s, e) = sched.times[i];
            let node = match t.kind {
                TaskKind::EprPair { a, .. } => a,
                TaskKind::Local { node, .. } => node,
                TaskKind::Classical => usize::MAX,
            };
            rows.entry(node)
                .or_default()
                .push(format!("{} [{s:.1},{e:.1}]", t.label));
        }
        let mut keys: Vec<_> = rows.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            if k == usize::MAX {
                out.push_str("classical: ");
            } else {
                out.push_str(&format!("node {k}: "));
            }
            out.push_str(&rows[&k].join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_eprs_on_disjoint_pairs_run_in_parallel() {
        let mut sim = EventSim::new(4);
        sim.epr(0, 1, 10.0, &[]);
        sim.epr(2, 3, 10.0, &[]);
        let s = sim.run();
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn shared_node_serializes_eprs() {
        // Node 1 is in both pairs: must serialize (SENDQ: at most one EPR
        // establishment per node at a time).
        let mut sim = EventSim::new(3);
        sim.epr(0, 1, 10.0, &[]);
        sim.epr(1, 2, 10.0, &[]);
        let s = sim.run();
        assert_eq!(s.makespan, 20.0);
    }

    #[test]
    fn chain_epr_needs_two_rounds() {
        // A chain of 5 nodes: 4 edges, alternating parallel rounds => 2E.
        // The scheduler is list-based in insertion order, so we insert the
        // even-edge round first (as the cat-state protocol does).
        let mut sim = EventSim::new(5);
        for k in (0..4).step_by(2) {
            sim.epr(k, k + 1, 7.0, &[]);
        }
        for k in (1..4).step_by(2) {
            sim.epr(k, k + 1, 7.0, &[]);
        }
        let s = sim.run();
        assert_eq!(s.makespan, 14.0, "chain establishes in exactly 2 rounds");
    }

    #[test]
    fn local_ops_serialize_per_node() {
        let mut sim = EventSim::new(2);
        sim.local(0, 5.0, &[]);
        sim.local(0, 5.0, &[]);
        sim.local(1, 5.0, &[]);
        let s = sim.run();
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn epr_overlaps_local_compute() {
        // EPR engine and compute are separate resources (Section 7.2: "The
        // EPR pairs could be established while applying the local
        // operations").
        let mut sim = EventSim::new(2);
        sim.local(0, 30.0, &[]);
        sim.epr(0, 1, 10.0, &[]);
        let s = sim.run();
        assert_eq!(s.makespan, 30.0);
    }

    #[test]
    fn dependencies_are_honored() {
        let mut sim = EventSim::new(2);
        let e = sim.epr(0, 1, 10.0, &[]);
        let r = sim.local(1, 3.0, &[e]);
        let c = sim.classical(&[r]);
        let z = sim.local(0, 1.0, &[c]);
        let s = sim.run();
        assert_eq!(s.end(z), 14.0);
        assert_eq!(s.makespan, 14.0);
    }

    #[test]
    fn buffer_peaks_tracked() {
        let mut sim = EventSim::new(2);
        let e1 = sim.epr(0, 1, 10.0, &[]);
        let e2 = sim.epr(0, 1, 10.0, &[]);
        // Consume both on node 0.
        sim.local_consuming(0, 1.0, 2, &[e1, e2]);
        let s = sim.run();
        assert_eq!(
            s.buffer_peak[0], 2,
            "two halves buffered before consumption"
        );
        assert_eq!(s.buffer_peak[1], 2);
    }

    #[test]
    fn classical_tasks_take_no_time() {
        let mut sim = EventSim::new(2);
        let a = sim.local(0, 4.0, &[]);
        let c = sim.classical(&[a]);
        let b = sim.local(1, 4.0, &[c]);
        let s = sim.run();
        assert_eq!(s.end(b), 8.0);
    }
}
