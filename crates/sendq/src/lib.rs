//! # sendq — the SENDQ performance model for distributed quantum computing
//!
//! Implements the machine-independent performance model of Section 5 of
//! *Distributed Quantum Computing with QMPI* (SC 2021), inspired by the
//! classical LogP model: parameters `S` (EPR buffer), `E` (EPR
//! establishment time), `N` (nodes), `D` (local delays, refined into
//! `D_R`/`D_M`/`D_F`), `Q` (compute qubits per node).
//!
//! Besides the closed forms the paper derives for broadcast (§7.1), TFIM
//! Trotter steps (§7.2) and the chemistry parity-rotation circuits (§7.3),
//! this crate ships a discrete-event scheduler ([`event_sim::EventSim`])
//! that enforces the model's resource constraints, so every closed form is
//! *checked* rather than merely restated.

pub mod analysis;
pub mod event_sim;
pub mod model;

pub use analysis::chemistry::ParityMethod;
pub use event_sim::{EventSim, Schedule, TaskId};
pub use model::{ceil_log2, SendqParams};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tree_bcast_sim_equals_closed_form(n in 2usize..200) {
            let p = SendqParams { s: 1, e: 10.0, n, q: 8, d_r: 1.0, d_m: 1.0, d_f: 1.0 };
            let sched = analysis::bcast::tree_bcast_schedule(&p);
            let closed = analysis::bcast::tree_bcast_time(&p);
            prop_assert!((sched.makespan - closed).abs() < 1e-9);
        }

        #[test]
        fn cat_bcast_sim_equals_closed_form(n in 2usize..200) {
            let p = SendqParams { s: 2, e: 10.0, n, q: 8, d_r: 1.0, d_m: 3.0, d_f: 2.0 };
            let sched = analysis::bcast::cat_bcast_schedule(&p);
            let closed = analysis::bcast::cat_bcast_time(&p);
            prop_assert!((sched.makespan - closed).abs() < 1e-9);
        }

        #[test]
        fn chemistry_schedules_match_closed_forms(k in 2usize..40, e in 1.0f64..100.0, d_r in 1.0f64..1000.0) {
            let p = SendqParams { s: 2, e, n: k, q: 8, d_r, d_m: 0.0, d_f: 0.0 };
            for m in [ParityMethod::InPlace, ParityMethod::OutOfPlace, ParityMethod::ConstantDepth] {
                let sched = analysis::chemistry::schedule(m, k, &p);
                let closed = analysis::chemistry::delay(m, k, &p);
                prop_assert!((sched.makespan - closed).abs() < 1e-6,
                    "{m:?} k={k}: sim {} vs closed {}", sched.makespan, closed);
            }
        }

        #[test]
        fn tfim_delays_bracket_compute_and_comm(nodes in 1usize..16, e in 1.0f64..500.0, d_r in 1.0f64..500.0) {
            let n_spins = 64usize;
            prop_assume!(n_spins.is_multiple_of(nodes) && n_spins / nodes >= 1);
            let p = SendqParams { s: 2, e, n: nodes, q: 8, d_r, d_m: 1.0, d_f: 1.0 };
            let d_t = analysis::tfim::d_trotter(&p, n_spins);
            let s2 = analysis::tfim::step_delay_s2(&p, n_spins);
            let s1 = analysis::tfim::step_delay_s1(&p, n_spins);
            prop_assert!(s2 >= d_t && s2 >= 2.0 * e);
            prop_assert!(s1 >= s2, "S=1 is never faster than S>=2");
        }
    }
}
