//! Criterion bench: job-service throughput under a storm of small
//! teleportation jobs — the `qserve` headline number.
//!
//! Both arms run the *identical* storm through the identical scheduler;
//! the only difference is where each job's process-separated engine gets
//! its workers:
//!
//! * `pooled` — jobs lease slots of one long-lived [`qserve`] worker pool
//!   (spawned once, outside the measurement);
//! * `spawn-per-job` — every job spawns and joins its own worker set
//!   (`BackendKind::RemoteSharded`), the pre-pool model.
//!
//! The gap is the per-job worker provisioning cost the pool amortizes:
//! thread spawns, world construction, and teardown joins, paid once per
//! *pool* instead of once per *job*. Divide the storm size by the
//! reported time for jobs/sec.
//!
//! `QMPI_BENCH_QUICK=1` shrinks the storm for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmpi::{BackendKind, QmpiRank};
use qserve::{JobBackend, JobServer, JobSpec, ServerConfig};

const SHARDS: usize = 2;

fn storm_size() -> usize {
    if std::env::var_os("QMPI_BENCH_QUICK").is_some() {
        8
    } else {
        32
    }
}

/// The per-job program: a 2-rank teleport of |1>.
fn teleport(ctx: &QmpiRank) -> bool {
    if ctx.rank() == 0 {
        let q = ctx.alloc_one();
        ctx.x(&q).unwrap();
        ctx.send_move(q, 1, 0).unwrap();
        true
    } else {
        let q = ctx.recv_move(0, 0).unwrap();
        ctx.measure_and_free(q).unwrap()
    }
}

/// Submits the whole storm (4 tenants interleaved) and waits it out.
fn run_storm(server: &JobServer, jobs: usize, backend: JobBackend) {
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            let spec = JobSpec::new(format!("tenant-{}", i % 4), 2)
                .seed(i as u64)
                .s_limit(2)
                .backend(backend);
            server.submit(spec, teleport).expect("storm fits capacity")
        })
        .collect();
    for handle in handles {
        let out = handle.wait().expect("storm job must succeed");
        assert!(out.results[1], "teleported |1> must arrive");
    }
}

fn bench_jobs_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/jobs_per_sec");
    group.sample_size(10);
    let jobs = storm_size();

    // The pool (and its worker threads) lives across iterations — that
    // amortization is precisely what the pooled arm measures.
    let pooled = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: 4,
        pool_slots: 4,
        pool_shards: SHARDS,
        ..ServerConfig::default()
    });
    group.bench_with_input(BenchmarkId::new("pooled", jobs), &jobs, |b, &jobs| {
        b.iter(|| run_storm(&pooled, jobs, JobBackend::Pooled));
    });
    drop(pooled);

    // Same scheduler, same concurrency — but every job provisions its own
    // worker set and tears it down again.
    let spawning = JobServer::new(ServerConfig {
        s_capacity: 64,
        max_concurrent: 4,
        pool_slots: 0,
        pool_shards: 0,
        ..ServerConfig::default()
    });
    let spawn = JobBackend::Spawn(BackendKind::RemoteSharded { shards: SHARDS });
    group.bench_with_input(
        BenchmarkId::new("spawn-per-job", jobs),
        &jobs,
        |b, &jobs| {
            b.iter(|| run_storm(&spawning, jobs, spawn));
        },
    );

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_jobs_per_sec
}
criterion_main!(benches);
