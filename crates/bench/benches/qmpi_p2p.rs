//! Criterion bench: QMPI point-to-point primitives — entangled copy
//! round-trips vs teleportation (the Table 1 primitives, end to end on the
//! simulation substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use qmpi::run;

fn bench_copy_roundtrip(c: &mut Criterion) {
    c.bench_function("qmpi/copy_uncopy", |b| {
        b.iter(|| {
            run(2, |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.h(&q).unwrap();
                    for _ in 0..10 {
                        ctx.send(&q, 1, 0).unwrap();
                        ctx.unsend(&q, 1, 0).unwrap();
                    }
                    ctx.measure_and_free(q).unwrap();
                } else {
                    for _ in 0..10 {
                        let copy = ctx.recv(0, 0).unwrap();
                        ctx.unrecv(copy, 0, 0).unwrap();
                    }
                }
            })
        });
    });
}

fn bench_teleport_pingpong(c: &mut Criterion) {
    c.bench_function("qmpi/teleport_pingpong", |b| {
        b.iter(|| {
            run(2, |ctx| {
                if ctx.rank() == 0 {
                    let mut q = ctx.alloc_one();
                    ctx.ry(&q, 0.8).unwrap();
                    for _ in 0..5 {
                        ctx.send_move(q, 1, 0).unwrap();
                        q = ctx.recv_move(1, 1).unwrap();
                    }
                    ctx.measure_and_free(q).unwrap();
                } else {
                    for _ in 0..5 {
                        let q = ctx.recv_move(0, 0).unwrap();
                        ctx.send_move(q, 0, 1).unwrap();
                    }
                }
            })
        });
    });
}

fn bench_epr_establishment(c: &mut Criterion) {
    c.bench_function("qmpi/prepare_epr", |b| {
        b.iter(|| {
            run(2, |ctx| {
                for i in 0..10u16 {
                    let q = ctx.alloc_one();
                    ctx.prepare_epr(&q, 1 - ctx.rank(), i).unwrap();
                    ctx.measure_and_free(q).unwrap();
                    ctx.ledger().buffer_dec(ctx.rank());
                }
            })
        });
    });
}

fn bench_persistent_starts(c: &mut Criterion) {
    // Section 4.7: after init, starts are classical-only — visibly cheaper
    // than fresh sends.
    c.bench_function("qmpi/persistent_start", |b| {
        b.iter(|| {
            run(2, |ctx| {
                if ctx.rank() == 0 {
                    let mut chan = ctx.send_init(1, 0, 10).unwrap();
                    let q = ctx.alloc_one();
                    for _ in 0..10 {
                        chan.start(ctx, &q).unwrap();
                    }
                    ctx.free_qmem(q).unwrap();
                    chan.free(ctx).unwrap();
                } else {
                    let mut chan = ctx.recv_init(0, 0, 10).unwrap();
                    for _ in 0..10 {
                        let q = chan.start(ctx).unwrap();
                        ctx.measure_and_free(q).unwrap();
                    }
                    chan.free(ctx).unwrap();
                }
            })
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_copy_roundtrip,
        bench_teleport_pingpong,
        bench_epr_establishment,
        bench_persistent_starts
}
criterion_main!(benches);
