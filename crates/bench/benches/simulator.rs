//! Criterion bench: state-vector simulator gate kernels vs register width
//! (the substrate cost that bounds how large a distributed program the
//! prototype can execute, Section 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{Gate, Simulator};

fn bench_single_qubit_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/h_layer");
    group.sample_size(10);
    for n in [8usize, 12, 16, 18] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = Simulator::new(1);
            let qs = sim.alloc_n(n);
            b.iter(|| {
                for &q in &qs {
                    sim.apply(Gate::H, q).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn bench_cnot_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/cnot_chain");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = Simulator::new(1);
            let qs = sim.alloc_n(n);
            b.iter(|| {
                for w in qs.windows(2) {
                    sim.cnot(w[0], w[1]).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/rz");
    group.sample_size(10);
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = Simulator::new(1);
            let qs = sim.alloc_n(n);
            b.iter(|| sim.apply(Gate::Rz(0.3), qs[n / 2]).unwrap());
        });
    }
    group.finish();
}

fn bench_alloc_free(c: &mut Criterion) {
    c.bench_function("sim/alloc_measure_free", |b| {
        let mut sim = Simulator::new(1);
        let _anchor = sim.alloc_n(8);
        b.iter(|| {
            let q = sim.alloc();
            sim.apply(Gate::H, q).unwrap();
            sim.measure_and_free(q).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_single_qubit_gates,
    bench_cnot_chain,
    bench_rotation,
    bench_alloc_free
);
criterion_main!(benches);
