//! Criterion bench: QMPI collectives — tree vs cat-state broadcast and the
//! linear-chain reduction (the Section 7.1 trade-off, measured as wall
//! time on the simulation substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmpi::{run, BcastAlgorithm, Parity};

fn bench_bcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmpi/bcast");
    group.sample_size(10);
    for (name, algo) in [
        ("tree", BcastAlgorithm::BinomialTree),
        ("cat", BcastAlgorithm::CatState),
    ] {
        for n in [4usize, 8] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    run(n, move |ctx| {
                        let (orig, copy) = if ctx.rank() == 0 {
                            let q = ctx.alloc_one();
                            ctx.bcast_with(algo, Some(&q), 0).unwrap();
                            (Some(q), None)
                        } else {
                            (None, ctx.bcast_with(algo, None, 0).unwrap())
                        };
                        ctx.unbcast(orig.as_ref(), copy, 0).unwrap();
                        if let Some(q) = orig {
                            ctx.free_qmem(q).unwrap();
                        }
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmpi/reduce_unreduce");
    group.sample_size(10);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                run(n, |ctx| {
                    let q = ctx.alloc_one();
                    let (result, handle) = ctx.reduce(&q, &Parity, 0).unwrap();
                    ctx.unreduce(&q, result, handle, &Parity).unwrap();
                    ctx.free_qmem(q).unwrap();
                })
            });
        });
    }
    group.finish();
}

fn bench_cat_establish(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmpi/cat_establish");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                run(n, |ctx| {
                    let share = ctx.cat_establish().unwrap();
                    ctx.cat_disband(share).unwrap();
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bcast, bench_reduce, bench_cat_establish);
criterion_main!(benches);
