//! Criterion bench: fermion-to-qubit encoding throughput (JW vs BK) and
//! the Fig. 7 EPR cost evaluation — the offline compilation pipeline of
//! Section 7.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qchem::{BlockLayout, CircuitMethod, Encoding, Molecule};

fn bench_hamiltonian_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchem/hamiltonian");
    group.sample_size(10);
    for atoms in [4usize, 6] {
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            group.bench_with_input(
                BenchmarkId::new(enc.short_name(), atoms),
                &atoms,
                |b, &atoms| {
                    let mol = Molecule::hydrogen_ring(atoms, 1.0);
                    b.iter(|| qchem::molecular_hamiltonian(&mol, enc));
                },
            );
        }
    }
    group.finish();
}

fn bench_integrals(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchem/integrals");
    group.sample_size(10);
    for atoms in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &atoms, |b, &atoms| {
            let mol = Molecule::hydrogen_ring(atoms, 1.0);
            b.iter(|| qchem::integrals::AoIntegrals::compute(&mol));
        });
    }
    group.finish();
}

fn bench_epr_cost_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchem/fig7_cost");
    group.sample_size(10);
    let mol = Molecule::hydrogen_ring(6, 1.0);
    let h = qchem::molecular_hamiltonian(&mol, Encoding::JordanWigner);
    for nodes in [3usize, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            let layout = BlockLayout::new(12, nodes);
            b.iter(|| qchem::trotter_step_epr_cost(&h, &layout, CircuitMethod::InPlace));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hamiltonian_build,
    bench_integrals,
    bench_epr_cost_sweep
);
criterion_main!(benches);
