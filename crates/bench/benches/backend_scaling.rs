//! Criterion bench: the same QMPI protocols on each simulation backend as
//! the rank count grows.
//!
//! The points the numbers make:
//!
//! * the single-mutex state-vector engine (the paper's prototype) falls off
//!   a cliff past ~16 total qubits, while the stabilizer tableau runs the
//!   identical Clifford protocol at 64+ ranks and the trace backend scales
//!   to whatever the thread launcher tolerates — which is what makes
//!   Table 1–3-style resource estimation at paper scale possible;
//! * on dense workloads that *fit* in a state vector, the lock-striped
//!   sharded backend beats the single global mutex as soon as several
//!   ranks issue gates concurrently (`local_gates` below: 8 ranks, 16
//!   qubits, every gate pass striping through 2^16 amplitudes).
//!
//! `QMPI_BENCH_QUICK=1` shrinks the size sweep for CI smoke runs, and the
//! compat criterion harness honors `CRITERION_SAMPLE_SIZE` /
//! `CRITERION_OUTPUT_JSON` for the bench-regression pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmpi::{run_with_config, BackendKind, BatchPolicy, QmpiConfig, TransportKind};

const SHARDS: usize = 8;

fn cfg(kind: BackendKind) -> QmpiConfig {
    QmpiConfig::new().seed(1).backend(kind)
}

fn quick() -> bool {
    std::env::var_os("QMPI_BENCH_QUICK").is_some()
}

fn sizes(full: &'static [usize]) -> &'static [usize] {
    if quick() {
        &full[..2.min(full.len())]
    } else {
        full
    }
}

fn kinds_for(n: usize) -> Vec<BackendKind> {
    // One cat establishment allocates ~2(n-1) simulator qubits at peak; keep
    // the dense engines within their feasible window.
    if n <= 8 {
        vec![
            BackendKind::StateVector,
            BackendKind::ShardedStateVector { shards: SHARDS },
            BackendKind::Stabilizer,
            BackendKind::Trace,
        ]
    } else {
        vec![BackendKind::Stabilizer, BackendKind::Trace]
    }
}

fn bench_cat_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/cat_bcast");
    group.sample_size(10);
    for &n in sizes(&[4usize, 8, 16, 32, 64]) {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    run_with_config(n, cfg(kind), |ctx| {
                        let share = ctx.cat_establish().unwrap();
                        ctx.measure_and_free(share).unwrap();
                        ctx.ledger().buffer_dec(ctx.rank());
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_teleport_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/teleport_chain");
    group.sample_size(10);
    for &n in sizes(&[4usize, 8, 16, 32]) {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    // Relay one qubit along the whole chain of ranks.
                    run_with_config(n, cfg(kind), move |ctx| {
                        let r = ctx.rank();
                        if r == 0 {
                            let q = ctx.alloc_one();
                            ctx.x(&q).unwrap();
                            ctx.send_move(q, 1, 0).unwrap();
                        } else {
                            let q = ctx.recv_move(r - 1, (r - 1) as u16).unwrap();
                            if r + 1 < ctx.size() {
                                ctx.send_move(q, r + 1, r as u16).unwrap();
                            } else {
                                ctx.measure_and_free(q).unwrap();
                            }
                        }
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_parity_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/parity_reduce");
    group.sample_size(10);
    for &n in sizes(&[4usize, 8, 32]) {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    run_with_config(n, cfg(kind), |ctx| {
                        let q = ctx.alloc_one();
                        if ctx.rank() % 2 == 1 {
                            ctx.x(&q).unwrap();
                        }
                        let (result, handle) = ctx.reduce(&q, &qmpi::Parity, 0).unwrap();
                        ctx.unreduce(&q, result, handle, &qmpi::Parity).unwrap();
                        ctx.measure_and_free(q).unwrap();
                    })
                });
            });
        }
    }
    group.finish();
}

/// The lock-contention acceptance workload: 8 ranks × 2 qubits = 16 total
/// qubits (a 65 536-amplitude dense state), every rank streaming local
/// gates concurrently. The single-mutex `Shared` wrapper serializes every
/// gate; the lock-striped wrapper lets the eight ranks pipeline through
/// the stripes. Rotations are non-Clifford, so only the two dense engines
/// can run this — exactly the comparison that matters.
///
/// Host note: on a single-core machine the sharded engine still wins
/// (~10-15% here) because it sheds the dense kernels' per-gate scoped
/// thread spawns and global-mutex handoffs; the *concurrency* win on top
/// of that needs as many cores as gate-issuing ranks.
fn bench_local_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/local_gates");
    group.sample_size(10);
    let ranks = 8usize;
    let qubits_per_rank = 2usize;
    let gates_per_rank = if quick() { 16 } else { 48 };
    for kind in [
        BackendKind::StateVector,
        BackendKind::ShardedStateVector { shards: SHARDS },
    ] {
        let label = format!("{}q_{}r", ranks * qubits_per_rank, ranks);
        group.bench_with_input(BenchmarkId::new(kind.name(), label), &ranks, |b, &n| {
            b.iter(|| {
                run_with_config(n, cfg(kind), move |ctx| {
                    let qs = ctx.alloc_qmem(qubits_per_rank);
                    // Ranks allocate in racing order; sync so every gate
                    // below runs against the full 16-qubit register.
                    ctx.barrier();
                    for i in 0..gates_per_rank {
                        let q = &qs[i % qubits_per_rank];
                        ctx.ry(q, 0.1 + i as f64 * 0.01).unwrap();
                        ctx.cnot(&qs[0], &qs[1]).unwrap();
                        ctx.cnot(&qs[1], &qs[0]).unwrap();
                        ctx.cz(&qs[0], &qs[1]).unwrap();
                        ctx.rz(q, -0.05).unwrap();
                    }
                    // Undo entanglement so the qubits free cleanly.
                    for i in (0..gates_per_rank).rev() {
                        let q = &qs[i % qubits_per_rank];
                        ctx.rz(q, 0.05).unwrap();
                        ctx.cz(&qs[0], &qs[1]).unwrap();
                        ctx.cnot(&qs[1], &qs[0]).unwrap();
                        ctx.cnot(&qs[0], &qs[1]).unwrap();
                        ctx.ry(q, -(0.1 + i as f64 * 0.01)).unwrap();
                    }
                    ctx.barrier();
                    for q in qs {
                        ctx.free_qmem(q).unwrap();
                    }
                })
            });
        });
    }
    group.finish();
}

/// The message-passing counterpart of `local_gates`: 4 ranks × 2 qubits,
/// every gate crossing the shard boundary as `cmpi` commands to worker
/// ranks. Compared against the lock-striped engine on the identical
/// workload, the gap *is* the protocol overhead (encode + mailbox hop per
/// gate vs. a stripe-lock acquisition) — the number to watch as the remote
/// engine's batching improves. Kept smaller than `local_gates` because a
/// message round per gate is the point, not raw amplitude throughput.
///
/// A third arm runs the same workload with the workers as real `qworker`
/// child processes over the unix-socket transport, so the in-process vs
/// OS-boundary premium is one table row apart. `cargo bench` does not
/// build the umbrella package's `qworker` binary, so the arm needs
/// `QMPI_QWORKER_BIN` pointing at it and is skipped (loudly) otherwise.
fn bench_remote_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/remote_gates");
    group.sample_size(10);
    let ranks = 4usize;
    let qubits_per_rank = 2usize;
    let gates_per_rank = if quick() { 8 } else { 24 };
    let mut arms = vec![
        (
            BackendKind::ShardedStateVector { shards: 4 },
            TransportKind::InProcess,
        ),
        (
            BackendKind::RemoteSharded { shards: 4 },
            TransportKind::InProcess,
        ),
    ];
    if std::env::var_os("QMPI_QWORKER_BIN").is_some() {
        arms.push((
            BackendKind::RemoteSharded { shards: 4 },
            TransportKind::UnixSocket,
        ));
    } else {
        eprintln!(
            "remote_gates: QMPI_QWORKER_BIN unset; skipping the unix-socket transport arm              (build the qworker binary and point the variable at it)"
        );
    }
    for (kind, transport) in arms {
        let name = if transport.is_multiprocess() {
            format!("{}-{transport}", kind.name())
        } else {
            kind.name().to_string()
        };
        let label = format!("{}q_{}r", ranks * qubits_per_rank, ranks);
        group.bench_with_input(BenchmarkId::new(name, label), &ranks, |b, &n| {
            b.iter(|| {
                run_with_config(n, cfg(kind).transport(transport), move |ctx| {
                    let qs = ctx.alloc_qmem(qubits_per_rank);
                    ctx.barrier();
                    for i in 0..gates_per_rank {
                        let q = &qs[i % qubits_per_rank];
                        ctx.ry(q, 0.1 + i as f64 * 0.01).unwrap();
                        ctx.cnot(&qs[0], &qs[1]).unwrap();
                        ctx.cz(&qs[0], &qs[1]).unwrap();
                        ctx.rz(q, -0.05).unwrap();
                    }
                    for i in (0..gates_per_rank).rev() {
                        let q = &qs[i % qubits_per_rank];
                        ctx.rz(q, 0.05).unwrap();
                        ctx.cz(&qs[0], &qs[1]).unwrap();
                        ctx.cnot(&qs[0], &qs[1]).unwrap();
                        ctx.ry(q, -(0.1 + i as f64 * 0.01)).unwrap();
                    }
                    ctx.barrier();
                    for q in qs {
                        ctx.free_qmem(q).unwrap();
                    }
                })
            });
        });
    }
    group.finish();
}

/// The batching acceptance workload: the identical 4-rank × 8-qubit gate
/// storm on the sharded and remote engines in three modes — `fused` (the
/// default policy: batched + plan-time optimizer), `batched` (same
/// batching, fusion off — the pre-fusion stream), and `per-gate`
/// (`BatchPolicy::eager()`). On the remote engine batching's gap is one
/// framed command round per *batch* against one per *gate*; on the
/// lock-striped engine it is one locality-lock acquisition per batch
/// against one per gate. Fusion then shrinks the batch itself: adjacent
/// 1q gates collapse into single matrix sweeps and diagonal stretches
/// into single phase sweeps, which the counter assertion below proves
/// before timing anything.
fn bench_batched_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/batched_gates");
    group.sample_size(10);
    let ranks = 4usize;
    let qubits_per_rank = 2usize;
    let gates_per_rank = if quick() { 8 } else { 24 };
    let storm = move |ctx: &qmpi::QmpiRank| {
        let qs = ctx.alloc_qmem(qubits_per_rank);
        ctx.barrier();
        for i in 0..gates_per_rank {
            let q = &qs[i % qubits_per_rank];
            ctx.ry(q, 0.1 + i as f64 * 0.01).unwrap();
            ctx.cnot(&qs[0], &qs[1]).unwrap();
            ctx.swap(&qs[0], &qs[1]).unwrap();
            ctx.cz(&qs[0], &qs[1]).unwrap();
            ctx.rz(q, -0.05).unwrap();
        }
        // One flush per storm direction: the batched modes pay their
        // backend round here, the per-gate mode already paid per call.
        ctx.flush().unwrap();
        for i in (0..gates_per_rank).rev() {
            let q = &qs[i % qubits_per_rank];
            ctx.rz(q, 0.05).unwrap();
            ctx.cz(&qs[0], &qs[1]).unwrap();
            ctx.swap(&qs[0], &qs[1]).unwrap();
            ctx.cnot(&qs[0], &qs[1]).unwrap();
            ctx.ry(q, -(0.1 + i as f64 * 0.01)).unwrap();
        }
        ctx.barrier();
        for q in qs {
            ctx.free_qmem(q).unwrap();
        }
    };
    let modes = [
        ("fused", BatchPolicy::default()),
        (
            "batched",
            BatchPolicy {
                fuse: false,
                ..BatchPolicy::default()
            },
        ),
        ("per-gate", BatchPolicy::eager()),
    ];
    for kind in [
        BackendKind::ShardedStateVector { shards: 4 },
        BackendKind::RemoteSharded { shards: 4 },
    ] {
        // Counter proof ahead of the timing: the fused arm must apply
        // strictly fewer kernel sweeps than the unfused stream on this
        // storm, or the "fused" label is a lie.
        let sweeps = |policy: BatchPolicy| {
            run_with_config(ranks, cfg(kind).batch(policy), move |ctx| {
                storm(ctx);
                ctx.backend().gate_count()
            })[0]
        };
        let (fused_sweeps, unfused_sweeps) = (sweeps(modes[0].1), sweeps(modes[1].1));
        assert!(
            fused_sweeps < unfused_sweeps,
            "{}: fusion must reduce kernel sweeps ({fused_sweeps} vs {unfused_sweeps})",
            kind.name()
        );
        for (mode, policy) in modes {
            let label = format!("{}-{mode}", kind.name());
            let id = format!("{}q_{}r", ranks * qubits_per_rank, ranks);
            group.bench_with_input(BenchmarkId::new(label, id), &ranks, |b, &n| {
                b.iter(|| run_with_config(n, cfg(kind).batch(policy), storm));
            });
        }
    }
    group.finish();
}

/// The coalescing acceptance workload: 4 ranks storm the remote engine
/// with sub-budget flushes (the service-shaped pattern — many tenants,
/// small frequent flushes), window-synced every round. With coalescing
/// on, the controller merges the ranks' plans into one shared frame per
/// worker per window — one command fan-out round where the per-rank path
/// pays four. The counter assertion proves the halving on this storm
/// before anything is timed; the timing then prices what a saved
/// fan-out round is worth per transport hop.
fn bench_coalesced_gates(c: &mut Criterion) {
    use qmpi::{build_backend_with_policy, QuantumBackend};
    use qsim::{BatchOp, Gate, GateBatch, NoiseModel, QubitId};
    use std::sync::Arc;

    let mut group = c.benchmark_group("backend/coalesced_gates");
    group.sample_size(10);
    let ranks = 4usize;
    let qubits_per_rank = 2usize;
    let rounds = if quick() { 4 } else { 16 };
    let build = |policy: BatchPolicy| -> Arc<dyn QuantumBackend> {
        build_backend_with_policy(
            BackendKind::RemoteSharded { shards: 4 },
            TransportKind::InProcess,
            1,
            NoiseModel::ideal(),
            policy,
        )
        .expect("backend builds")
    };
    let alloc_owned = move |backend: &Arc<dyn QuantumBackend>| -> Vec<Vec<QubitId>> {
        (0..ranks)
            .map(|r| backend.alloc(r, qubits_per_rank))
            .collect()
    };
    let storm = move |backend: &Arc<dyn QuantumBackend>, owned: &[Vec<QubitId>]| {
        for round in 0..rounds {
            for (r, qs) in owned.iter().enumerate() {
                let mut b = GateBatch::new();
                b.push(BatchOp::Gate {
                    gate: Gate::Ry(0.1 + round as f64 * 0.01),
                    q: qs[round % qs.len()],
                });
                b.push(BatchOp::Cnot { c: qs[0], t: qs[1] });
                b.push(BatchOp::Gate {
                    gate: Gate::Rz(-0.05),
                    q: qs[1],
                });
                backend.apply_batch(r, &b).unwrap();
            }
            backend.sync_coalesced().unwrap();
        }
    };
    let modes = [
        ("coalesced", BatchPolicy::default()),
        (
            "per-rank",
            BatchPolicy {
                coalesce: false,
                ..BatchPolicy::default()
            },
        ),
    ];
    // Counter proof ahead of the timing: the merged path must collapse
    // the four concurrent flushes per window into (at most) half the
    // per-rank path's command rounds, or "coalesced" is a lie. The
    // allocation rounds (eager on both paths) are differenced away.
    let rounds_of = |policy: BatchPolicy| {
        let backend = build(policy);
        let owned = alloc_owned(&backend);
        let before = backend
            .transport_stats()
            .expect("remote transport")
            .command_rounds;
        storm(&backend, &owned);
        backend
            .transport_stats()
            .expect("remote transport")
            .command_rounds
            - before
    };
    let (merged, per_rank) = (rounds_of(modes[0].1), rounds_of(modes[1].1));
    assert!(
        2 * merged <= per_rank,
        "coalescing must at least halve command rounds ({merged} vs {per_rank})"
    );
    for (mode, policy) in modes {
        let label = format!("remote-sharded-{mode}");
        let id = format!("{}q_{}r", ranks * qubits_per_rank, ranks);
        group.bench_with_input(BenchmarkId::new(label, id), &ranks, |b, _| {
            b.iter(|| {
                let backend = build(policy);
                let owned = alloc_owned(&backend);
                storm(&backend, &owned);
            });
        });
    }
    group.finish();
}

/// The sparse engine's headline: real amplitudes at paper-scale rank
/// counts for a constant factor over pure counting. The workload is a
/// cat-state broadcast built as a sequential entangled-copy chain — the
/// sparse-friendly realization, a handful of nonzero amplitudes at every
/// step — run identically on every arm. At 16 ranks the sparse engine
/// races the dense state vector (2^16+ amplitudes striped per gate) and
/// the trace engine; at 128 ranks a dense register would need 2^128
/// amplitudes, so sparse (two map entries) races trace alone — the cost
/// of carrying actual amplitudes instead of op counts at a scale no
/// dense engine reaches.
fn bench_sparse_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/sparse_gates");
    group.sample_size(10);
    for &n in sizes(&[16usize, 128]) {
        let kinds = if n <= 16 {
            vec![
                BackendKind::Sparse,
                BackendKind::StateVector,
                BackendKind::Trace,
            ]
        } else {
            vec![BackendKind::Sparse, BackendKind::Trace]
        };
        for kind in kinds {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    run_with_config(n, cfg(kind), |ctx| {
                        let me = ctx.rank();
                        let q = if me == 0 {
                            let q = ctx.alloc_one();
                            ctx.h(&q).unwrap();
                            ctx.send(&q, 1, 0).unwrap();
                            q
                        } else {
                            let q = ctx.recv(me - 1, 0).unwrap();
                            if me + 1 < ctx.size() {
                                ctx.send(&q, me + 1, 0).unwrap();
                            }
                            q
                        };
                        ctx.barrier();
                        ctx.measure_and_free(q).unwrap();
                    })
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_gates, bench_remote_gates, bench_batched_gates, bench_coalesced_gates, bench_sparse_gates, bench_cat_broadcast, bench_teleport_chain, bench_parity_reduce
}
criterion_main!(benches);
