//! Criterion bench: the same QMPI protocols on each simulation backend as
//! the rank count grows.
//!
//! The point the numbers make: the state-vector engine (the paper's
//! prototype) falls off a cliff past ~16 total qubits, while the stabilizer
//! tableau runs the identical Clifford protocol at 64+ ranks and the trace
//! backend scales to whatever the thread launcher tolerates — which is what
//! makes Table 1–3-style resource estimation at paper scale possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmpi::{run_with_config, BackendKind, QmpiConfig};

fn cfg(kind: BackendKind) -> QmpiConfig {
    QmpiConfig::new().seed(1).backend(kind)
}

fn kinds_for(n: usize) -> Vec<BackendKind> {
    // One cat establishment allocates ~2(n-1) simulator qubits at peak; keep
    // the dense engine within its feasible window.
    if n <= 8 {
        vec![
            BackendKind::StateVector,
            BackendKind::Stabilizer,
            BackendKind::Trace,
        ]
    } else {
        vec![BackendKind::Stabilizer, BackendKind::Trace]
    }
}

fn bench_cat_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/cat_bcast");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32, 64] {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    run_with_config(n, cfg(kind), |ctx| {
                        let share = ctx.cat_establish().unwrap();
                        ctx.measure_and_free(share).unwrap();
                        ctx.ledger().buffer_dec(ctx.rank());
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_teleport_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/teleport_chain");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    // Relay one qubit along the whole chain of ranks.
                    run_with_config(n, cfg(kind), move |ctx| {
                        let r = ctx.rank();
                        if r == 0 {
                            let q = ctx.alloc_one();
                            ctx.x(&q).unwrap();
                            ctx.send_move(q, 1, 0).unwrap();
                        } else {
                            let q = ctx.recv_move(r - 1, (r - 1) as u16).unwrap();
                            if r + 1 < ctx.size() {
                                ctx.send_move(q, r + 1, r as u16).unwrap();
                            } else {
                                ctx.measure_and_free(q).unwrap();
                            }
                        }
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_parity_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/parity_reduce");
    group.sample_size(10);
    for n in [4usize, 8, 32] {
        for kind in kinds_for(n) {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, &n| {
                b.iter(|| {
                    run_with_config(n, cfg(kind), |ctx| {
                        let q = ctx.alloc_one();
                        if ctx.rank() % 2 == 1 {
                            ctx.x(&q).unwrap();
                        }
                        let (result, handle) = ctx.reduce(&q, &qmpi::Parity, 0).unwrap();
                        ctx.unreduce(&q, result, handle, &qmpi::Parity).unwrap();
                        ctx.measure_and_free(q).unwrap();
                    })
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cat_broadcast, bench_teleport_chain, bench_parity_reduce
}
criterion_main!(benches);
