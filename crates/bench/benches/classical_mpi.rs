//! Criterion bench: the classical message-passing substrate — p2p
//! round-trip latency and collective scaling (the classical side the paper
//! assumes is never the bottleneck, Section 4.2).

use cmpi::{ops, Universe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pingpong(c: &mut Criterion) {
    c.bench_function("cmpi/pingpong_2ranks", |b| {
        b.iter(|| {
            Universe::run(2, |comm| {
                if comm.rank() == 0 {
                    for i in 0..100u32 {
                        comm.send(&i, 1, 0);
                        let _ = comm.recv::<u32>(1, 0);
                    }
                } else {
                    for _ in 0..100 {
                        let (v, _) = comm.recv::<u32>(0, 0);
                        comm.send(&v, 0, 0);
                    }
                }
            })
        });
    });
}

fn bench_allreduce_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmpi/allreduce");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                Universe::run(n, |comm| {
                    let mut acc = 0u64;
                    for _ in 0..20 {
                        acc = comm.allreduce(comm.rank() as u64 + acc, &ops::sum);
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

fn bench_exscan(c: &mut Criterion) {
    // The classical collective driving the cat-state fixup (Section 7.1).
    let mut group = c.benchmark_group("cmpi/exscan");
    group.sample_size(10);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                Universe::run(n, |comm| {
                    for _ in 0..20 {
                        let _ = comm.exscan((comm.rank() % 2) as u8, &ops::bxor);
                    }
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pingpong, bench_allreduce_scaling, bench_exscan
}
criterion_main!(benches);
