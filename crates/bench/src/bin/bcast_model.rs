//! Regenerates the **Section 7.1** analysis (and the Fig. 4 construction):
//! optimizing `QMPI_Bcast` in the SENDQ model — binomial tree
//! (`E⌈log₂N⌉`, S=1) versus constant-depth cat state (`2E + D_M + D_F`,
//! S>=2) — with every closed form validated by the discrete-event scheduler
//! and the cat construction validated functionally on the live QMPI stack.
//!
//! Run: `cargo run -p qmpi-bench --bin bcast_model --release`

use sendq::analysis::bcast;
use sendq::SendqParams;

fn main() {
    let base = SendqParams {
        s: 2,
        e: 100.0,
        n: 2,
        q: 62,
        d_r: 1000.0,
        d_m: 10.0,
        d_f: 10.0,
    };
    println!("Section 7.1: QMPI_Bcast in the SENDQ model");
    println!(
        "params: E = {}, D_M = {}, D_F = {} (time units)\n",
        base.e, base.d_m, base.d_f
    );
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>8}",
        "N", "tree closed", "tree sim", "cat closed", "cat sim", "winner", "S(tree/cat)"
    );
    println!("{}", qmpi_bench::rule(88));
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let p = base.with_nodes(n);
        let tree_c = bcast::tree_bcast_time(&p);
        let tree_s = bcast::tree_bcast_schedule(&p);
        let cat_c = bcast::cat_bcast_time(&p);
        let cat_s = bcast::cat_bcast_schedule(&p);
        assert!(
            (tree_c - tree_s.makespan).abs() < 1e-9,
            "tree closed form validated"
        );
        assert!(
            (cat_c - cat_s.makespan).abs() < 1e-9,
            "cat closed form validated"
        );
        let winner = if cat_c < tree_c { "cat" } else { "tree" };
        println!(
            "{:>6} | {:>12.0} {:>12.0} | {:>12.0} {:>12.0} | {:>10} {:>4}/{}",
            n,
            tree_c,
            tree_s.makespan,
            cat_c,
            cat_s.makespan,
            winner,
            tree_s.max_buffer_peak(),
            cat_s.max_buffer_peak()
        );
    }
    println!("{}", qmpi_bench::rule(88));
    println!(
        "crossover: cat wins from N = {} (paper: constant quantum time beats E log N)",
        bcast::crossover_n(&base)
    );

    // Functional Fig. 4 validation on the live stack: cat state on n nodes
    // uses n-1 EPR pairs in exactly 2 establishment rounds.
    let n = 8;
    let out = qmpi::run(n, |ctx| {
        let (d, share) = ctx.measure_resources(|| ctx.cat_establish().unwrap());
        ctx.cat_disband(share).unwrap();
        d
    });
    println!(
        "\nFig. 4 (live QMPI, n = {n}): cat state used {} EPR pairs in {} rounds",
        out[0].epr_pairs, out[0].epr_rounds
    );
    assert_eq!(out[0].epr_pairs as usize, n - 1);
    assert_eq!(out[0].epr_rounds, 2, "constant quantum depth (2E)");
}
