//! Regenerates the **Section 7.3 / Fig. 6** analysis: the three circuit
//! methods for `exp(-it Z⊗...⊗Z)` with each qubit on a different node —
//! EPR pairs and SENDQ delays, closed forms validated by the event
//! scheduler, plus a live functional equivalence check of all three
//! distributed implementations.
//!
//! Run: `cargo run -p qmpi-bench --bin chem_methods --release`

use sendq::analysis::chemistry as model;
use sendq::{ParityMethod, SendqParams};

fn main() {
    let base = SendqParams {
        s: 2,
        e: 100.0,
        n: 64,
        q: 62,
        d_r: 1000.0,
        d_m: 10.0,
        d_f: 10.0,
    };
    println!("Section 7.3 / Fig. 6: methods for exp(-it Z...Z), k qubits on k nodes");
    println!("params: E = {}, D_R = {}\n", base.e, base.d_r);
    println!(
        "{:>4} | {:>16} {:>16} {:>16} | {:>12} {:>12} {:>12}",
        "k",
        "in-place delay",
        "out-of-pl delay",
        "const-d delay",
        "EPR in-pl",
        "EPR out",
        "EPR const"
    );
    println!("{}", qmpi_bench::rule(104));
    for k in [2usize, 4, 8, 16, 32, 64] {
        let mut row_delay = Vec::new();
        let mut row_epr = Vec::new();
        for m in [
            ParityMethod::InPlace,
            ParityMethod::OutOfPlace,
            ParityMethod::ConstantDepth,
        ] {
            let closed = model::delay(m, k, &base);
            let sim = model::schedule(m, k, &base).makespan;
            assert!(
                (closed - sim).abs() < 1e-6,
                "{m:?} k={k}: closed {closed} vs sim {sim}"
            );
            row_delay.push(closed);
            row_epr.push(model::epr_pairs(m, k));
        }
        println!(
            "{:>4} | {:>16.0} {:>16.0} {:>16.0} | {:>12} {:>12} {:>12}",
            k, row_delay[0], row_delay[1], row_delay[2], row_epr[0], row_epr[1], row_epr[2]
        );
    }
    println!("{}", qmpi_bench::rule(104));
    println!("paper formulas: 2E log2(k) + D_R | E k + D_R | 2E + D_R");
    println!("               2(k-1) EPR        | k EPR     | k EPR (S >= 2 required)\n");

    // Live functional equivalence: all three QMPI implementations produce
    // the same state as the dense reference (checked in qalgo's tests);
    // here we print their measured EPR usage side by side for k = 4.
    let k = 4;
    let theta = 0.7;
    type Method = fn(&qmpi::QmpiRank, &qmpi::Qubit, f64) -> qmpi::Result<()>;
    let methods: [(&str, Method); 3] = [
        ("in-place", qalgo::parity::in_place),
        ("out-of-place", qalgo::parity::out_of_place),
        ("constant-depth", qalgo::parity::constant_depth),
    ];
    println!("live QMPI execution, k = {k} ranks, theta = {theta}:");
    for (name, method) in methods {
        let out = qmpi::run(k, move |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, 0.5).unwrap();
            let (d, ()) = ctx.measure_resources(|| method(ctx, &q, theta).unwrap());
            ctx.measure_and_free(q).unwrap();
            d
        });
        println!(
            "  {:<16} EPR pairs = {} (ancilla co-located convention), classical bits = {}",
            name, out[0].epr_pairs, out[0].classical_bits
        );
    }
}
