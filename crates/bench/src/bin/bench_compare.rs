//! Compares two benchmark JSON reports produced by the compat criterion
//! harness (`CRITERION_OUTPUT_JSON`) and fails when a benchmark's mean
//! regresses beyond a threshold — the gate of the bench-regression
//! pipeline.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [max_regression_percent] [min_gated_mean_ns]
//! ```
//!
//! When the `GITHUB_STEP_SUMMARY` environment variable names a writable
//! file (as it does inside a GitHub Actions step), the comparison is also
//! appended there as a markdown table, so every CI run shows the perf
//! trajectory on the run's summary page in addition to gating it.
//!
//! Benchmarks present in only one file are reported but never fail the
//! comparison (the suite grows over time). The default threshold is a
//! deliberately loose 75% — shared CI runners are noisy; the artifact
//! trail, not a razor-thin gate, is what catches real cliffs. Benchmarks
//! whose *baseline* mean sits below `min_gated_mean_ns` (default 1 ms) are
//! reported but never gated: at CI's 5-sample quick runs, sub-millisecond
//! protocol benches flap well past any sane threshold on scheduler noise
//! alone, while the millisecond-scale workloads that track real engine
//! cost stay within a few tens of percent.

use std::process::ExitCode;

/// One `{"name": ..., "min_ns": ..., "mean_ns": ..., "samples": ...}` row.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    mean_ns: u128,
}

/// Minimal parser for the compat harness's own fixed JSON shape. Not a
/// general JSON parser — it scans `"name"`/`"mean_ns"` key-value pairs in
/// order, which is exactly how `write_json_report` emits them.
fn parse_report(body: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    for line in body.lines() {
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(mean_ns) = extract_num(line, "\"mean_ns\": ") else {
            continue;
        };
        entries.push(Entry {
            name: name.to_string(),
            mean_ns,
        });
    }
    entries
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn extract_num(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// One comparison row, shared by the text report and the markdown summary.
struct Row {
    name: String,
    baseline: Option<u128>,
    current: Option<u128>,
    /// Regression percentage when both sides exist.
    delta_pct: Option<f64>,
    status: &'static str,
}

/// Dispatch-mode label for a benchmark id: batched-gate-stream entries
/// (the `backend/batched_gates` suite) are tagged so the summary table
/// shows at a glance which rows measure the batched path vs its per-gate
/// control.
fn mode_label(name: &str) -> &'static str {
    // Match the per-entry suffix, not the `batched_gates` group segment.
    if name.contains("per-gate") {
        "per-gate"
    } else if name.contains("-batched") {
        "batched"
    } else {
        ""
    }
}

/// Renders the comparison as the markdown table appended to the GitHub
/// Actions step summary.
fn markdown_table(rows: &[Row], threshold_pct: f64, regressions: usize) -> String {
    let fmt_opt = |v: Option<u128>| v.map(format_ns).unwrap_or_else(|| "—".into());
    let mut md = String::from("## Bench comparison\n\n");
    md.push_str("| benchmark | mode | baseline | current | delta | status |\n");
    md.push_str("|---|---|---:|---:|---:|---|\n");
    for r in rows {
        let delta = r
            .delta_pct
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "—".into());
        md.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} |\n",
            r.name,
            mode_label(&r.name),
            fmt_opt(r.baseline),
            fmt_opt(r.current),
            delta,
            r.status
        ));
    }
    md.push_str(&format!(
        "\n{regressions} benchmark(s) regressed beyond the {threshold_pct:.0}% gate.\n"
    ));
    md
}

/// Appends the comparison as a markdown table to the file named by
/// `GITHUB_STEP_SUMMARY`, if set (no-op otherwise).
fn write_step_summary(rows: &[Row], threshold_pct: f64, regressions: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let md = markdown_table(rows, threshold_pct, regressions);
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(md.as_bytes()) {
                eprintln!("failed to append step summary to {path}: {e}");
            }
        }
        Err(e) => eprintln!("cannot open step summary {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [max_regression_percent]");
        return ExitCode::from(2);
    }
    let threshold_pct: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(75.0);
    let min_gated_mean_ns: u128 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let read = |path: &str| -> Vec<Entry> {
        match std::fs::read_to_string(path) {
            Ok(body) => parse_report(&body),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                Vec::new()
            }
        }
    };
    let baseline = read(&args[1]);
    let current = read(&args[2]);
    if baseline.is_empty() || current.is_empty() {
        eprintln!("one of the reports is empty or unreadable; nothing to compare");
        return ExitCode::from(2);
    }

    let mut regressions = 0usize;
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<52} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "current", "delta"
    );
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            println!(
                "{:<52} {:>12} {:>12} {:>9}",
                cur.name,
                "-",
                format_ns(cur.mean_ns),
                "new"
            );
            rows.push(Row {
                name: cur.name.clone(),
                baseline: None,
                current: Some(cur.mean_ns),
                delta_pct: None,
                status: "new",
            });
            continue;
        };
        let delta_pct = (cur.mean_ns as f64 - base.mean_ns as f64) / base.mean_ns as f64 * 100.0;
        let status = if delta_pct > threshold_pct && base.mean_ns >= min_gated_mean_ns {
            regressions += 1;
            "REGRESSION"
        } else if delta_pct > threshold_pct {
            "ungated (sub-floor baseline)"
        } else {
            "ok"
        };
        let flag = match status {
            "REGRESSION" => "  << REGRESSION",
            "ok" => "",
            _ => "  (ungated: sub-floor baseline)",
        };
        println!(
            "{:<52} {:>12} {:>12} {:>+8.1}%{flag}",
            cur.name,
            format_ns(base.mean_ns),
            format_ns(cur.mean_ns),
            delta_pct
        );
        rows.push(Row {
            name: cur.name.clone(),
            baseline: Some(base.mean_ns),
            current: Some(cur.mean_ns),
            delta_pct: Some(delta_pct),
            status,
        });
    }
    for base in &baseline {
        if !current.iter().any(|c| c.name == base.name) {
            println!(
                "{:<52} {:>12} {:>12} {:>9}",
                base.name,
                format_ns(base.mean_ns),
                "-",
                "gone"
            );
            rows.push(Row {
                name: base.name.clone(),
                baseline: Some(base.mean_ns),
                current: None,
                delta_pct: None,
                status: "gone",
            });
        }
    }
    write_step_summary(&rows, threshold_pct, regressions);

    if regressions > 0 {
        eprintln!("{regressions} benchmark(s) regressed more than {threshold_pct:.0}%");
        ExitCode::FAILURE
    } else {
        println!("no regressions beyond {threshold_pct:.0}%");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"name": "backend/local_gates/state-vector/16q_8r", "min_ns": 900, "mean_ns": 1000, "samples": 10},
    {"name": "backend/cat_bcast/trace/8", "min_ns": 50, "mean_ns": 60, "samples": 10}
  ]
}
"#;

    #[test]
    fn parses_compat_harness_report() {
        let entries = parse_report(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "backend/local_gates/state-vector/16q_8r");
        assert_eq!(entries[0].mean_ns, 1000);
        assert_eq!(entries[1].mean_ns, 60);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn markdown_table_renders_all_row_shapes() {
        let rows = vec![
            Row {
                name: "backend/remote_gates/remote-sharded/8q_4r".into(),
                baseline: Some(2_000_000),
                current: Some(4_000_000),
                delta_pct: Some(100.0),
                status: "REGRESSION",
            },
            Row {
                name: "backend/cat_bcast/trace/8".into(),
                baseline: None,
                current: Some(60),
                delta_pct: None,
                status: "new",
            },
            Row {
                name: "backend/gone_bench".into(),
                baseline: Some(10),
                current: None,
                delta_pct: None,
                status: "gone",
            },
        ];
        let md = markdown_table(&rows, 75.0, 1);
        assert!(md.starts_with("## Bench comparison"));
        assert!(md.contains("| benchmark | mode | baseline | current | delta | status |"));
        assert!(md.contains("| `backend/remote_gates/remote-sharded/8q_4r` |  | 2.000 ms | 4.000 ms | +100.0% | REGRESSION |"));
        assert!(md.contains("| `backend/cat_bcast/trace/8` |  | — | 60 ns | — | new |"));
        assert!(md.contains("| `backend/gone_bench` |  | 10 ns | — | — | gone |"));
        assert!(md.contains("1 benchmark(s) regressed beyond the 75% gate."));
    }

    #[test]
    fn markdown_table_labels_batched_entries() {
        let rows = vec![
            Row {
                name: "backend/batched_gates/remote-sharded-batched/8q_4r".into(),
                baseline: Some(1_000_000),
                current: Some(900_000),
                delta_pct: Some(-10.0),
                status: "ok",
            },
            Row {
                name: "backend/batched_gates/remote-sharded-per-gate/8q_4r".into(),
                baseline: Some(2_000_000),
                current: Some(2_100_000),
                delta_pct: Some(5.0),
                status: "ok",
            },
        ];
        let md = markdown_table(&rows, 75.0, 0);
        assert!(md.contains(
            "| `backend/batched_gates/remote-sharded-batched/8q_4r` | batched | 1.000 ms |"
        ));
        assert!(md.contains(
            "| `backend/batched_gates/remote-sharded-per-gate/8q_4r` | per-gate | 2.000 ms |"
        ));
        assert_eq!(mode_label("backend/local_gates/state-vector/16q_8r"), "");
    }
}
