//! Runs every paper experiment in sequence (Tables 1-3, Figs. 4-7, the
//! Section 7.1-7.3 model analyses) by invoking the per-experiment binaries
//! and collecting their output under `results/`.
//!
//! Run: `cargo run -p qmpi-bench --bin all_experiments --release -- [--atoms 16]`

use std::fs;
use std::process::Command;

fn main() {
    let atoms = qmpi_bench::arg_usize("--atoms", 32);
    let bins = [
        ("table1", vec![]),
        ("table2", vec![]),
        ("table3", vec![]),
        ("bcast_model", vec![]),
        ("tfim_model", vec![]),
        ("chem_methods", vec![]),
        ("fig5", vec!["--atoms".to_string(), atoms.to_string()]),
        ("fig7", vec!["--atoms".to_string(), atoms.to_string()]),
    ];
    fs::create_dir_all("results").expect("create results dir");
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for (bin, args) in bins {
        println!("=== {bin} {} ===", args.join(" "));
        let path = bin_dir.join(bin);
        let out = Command::new(&path).args(&args).output();
        match out {
            Ok(out) => {
                let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
                let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
                println!("{stdout}");
                if !out.status.success() {
                    eprintln!("{stderr}");
                    failures.push(bin);
                }
                fs::write(format!("results/{bin}.txt"), format!("{stdout}\n{stderr}"))
                    .expect("write result");
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e} (build bins first: cargo build --release -p qmpi-bench)");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("all experiments completed; outputs in results/");
    } else {
        eprintln!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
