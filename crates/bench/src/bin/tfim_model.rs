//! Regenerates the **Section 7.2** analysis: SENDQ delays of distributed
//! TFIM Trotter steps — `D_Trotter = 2(n/N) D_R`, the S>=2 delay
//! `max(D_Trotter, 2E)`, the S=1 penalty `max(D_Trotter, 2E + 2D_R)`, and
//! the node-count rule `E^{-1} n D_R >= N` — all validated against the
//! discrete-event scheduler, plus a functional distributed TFIM run.
//!
//! Run: `cargo run -p qmpi-bench --bin tfim_model --release`

use qalgo::tfim::{self, TfimParams};
use sendq::analysis::tfim as model;
use sendq::SendqParams;

fn main() {
    let n_spins = 64;
    let base = SendqParams {
        s: 2,
        e: 500.0,
        n: 1,
        q: 64,
        d_r: 100.0,
        d_m: 10.0,
        d_f: 10.0,
    };
    println!("Section 7.2: distributed TFIM in the SENDQ model");
    println!(
        "workload: ring of {n_spins} spins; E = {}, D_R = {}\n",
        base.e, base.d_r
    );
    println!(
        "{:>6} | {:>10} | {:>11} {:>11} | {:>11} {:>11} | {:>9}",
        "N", "D_Trotter", "S>=2 closed", "S>=2 sim", "S=1 closed", "S=1 sim", "S=1 cost"
    );
    println!("{}", qmpi_bench::rule(86));
    for nodes in [2usize, 4, 8, 16, 32] {
        let p = base.with_nodes(nodes);
        let d_t = model::d_trotter(&p, n_spins);
        let s2_closed = model::step_delay_s2(&p, n_spins);
        let s1_closed = model::step_delay_s1(&p, n_spins);
        let s2_sim = model::simulate_step_delay(&p, n_spins, false, 16);
        let s1_sim = model::simulate_step_delay(&p, n_spins, true, 16);
        assert!(
            (s2_closed - s2_sim).abs() / s2_closed < 1e-9,
            "S>=2 closed form validated"
        );
        assert!(
            (s1_closed - s1_sim).abs() / s1_closed < 1e-9,
            "S=1 closed form validated"
        );
        println!(
            "{:>6} | {:>10.0} | {:>11.0} {:>11.0} | {:>11.0} {:>11.0} | {:>8.2}x",
            nodes,
            d_t,
            s2_closed,
            s2_sim,
            s1_closed,
            s1_sim,
            model::s1_overhead(&p, n_spins)
        );
    }
    println!("{}", qmpi_bench::rule(86));
    println!(
        "node-count rule: communication stays hidden up to N = {} nodes (E^-1 n D_R)",
        model::max_nodes_without_bottleneck(&base, n_spins)
    );
    println!("paper: smaller S costs runtime even with an optimized schedule — visible");
    println!("in the S=1 column once 2E + 2D_R exceeds D_Trotter.\n");

    // Functional check: the distributed TFIM implementation (Listing 1)
    // matches the dense reference on a small instance.
    let params = TfimParams {
        j: 0.8,
        g: 0.5,
        time: 0.4,
        trotter_steps: 2,
    };
    let out = qmpi::run(2, move |ctx| {
        let qubits = ctx.alloc_qmem(2);
        for q in &qubits {
            ctx.h(q).unwrap();
        }
        tfim::time_evolution(ctx, &qubits, &params).unwrap();
        ctx.barrier();
        let ids: Vec<u64> = qubits.iter().map(|q| q.id().0).collect();
        let gathered = ctx.classical().gather(&ids, 0);
        let f = if ctx.rank() == 0 {
            let all: Vec<qsim::QubitId> = gathered
                .unwrap()
                .into_iter()
                .flatten()
                .map(qsim::QubitId)
                .collect();
            let state = ctx.backend().state_vector(&all).unwrap();
            let (ref_sim, ref_ids) = tfim::reference_evolution(4, &params, 1);
            state.fidelity(&ref_sim.state_vector(&ref_ids).unwrap())
        } else {
            1.0
        };
        ctx.barrier();
        for q in qubits {
            ctx.measure_and_free(q).unwrap();
        }
        f
    });
    println!(
        "functional check (Listing 1, 4 spins over 2 ranks): fidelity vs dense reference = {:.12}",
        out[0]
    );
    assert!((out[0] - 1.0).abs() < 1e-8);
}
