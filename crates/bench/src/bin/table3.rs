//! Regenerates **Table 3** of the paper: every QMPI collective, its
//! reverse, and its resource consumption, measured live on N ranks.
//!
//! Run: `cargo run -p qmpi-bench --bin table3 --release [--nodes N]`

use qmpi::{run, BcastAlgorithm, Parity, ResourceSnapshot};

fn snap2(
    name: &'static str,
    unit: &'static str,
    pair: (ResourceSnapshot, ResourceSnapshot),
) -> (String, String, String, (ResourceSnapshot, ResourceSnapshot)) {
    (
        name.into(),
        format!("QMPI_Un{}", &name[5..6].to_lowercase()) + &name[6..],
        unit.into(),
        pair,
    )
}

fn main() {
    let n = qmpi_bench::arg_usize("--nodes", 4);
    println!("Table 3: collective communication in QMPI (N = {n} ranks, 1 qubit per rank)");
    println!("resources as (EPR pairs, classical bits), forward / reverse\n");
    let mut rows: Vec<(String, String, String, (ResourceSnapshot, ResourceSnapshot))> = Vec::new();

    // Bcast (tree) + Unbcast.
    let out = run(n, |ctx| {
        let (fwd, (orig, copy)) = ctx.measure_resources(|| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.h(&q).unwrap();
                ctx.bcast(Some(&q), 0).unwrap();
                (Some(q), None)
            } else {
                (None, ctx.bcast(None, 0).unwrap())
            }
        });
        let (inv, ()) = ctx.measure_resources(|| {
            ctx.unbcast(orig.as_ref(), copy, 0).unwrap();
        });
        if let Some(q) = orig {
            ctx.measure_and_free(q).unwrap();
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Bcast", "copy x (N-1)", out[0]));

    // Gather / Ungather (copy).
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, copies) = ctx.measure_resources(|| ctx.gather(&q, 0).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.ungather(&q, copies, 0).unwrap());
        ctx.measure_and_free(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Gather", "copy x (N-1)", out[0]));

    // Scatter / Unscatter (copy).
    let out = run(n, move |ctx| {
        let qs = if ctx.rank() == 0 {
            Some(ctx.alloc_qmem(n))
        } else {
            None
        };
        let (fwd, piece) = ctx.measure_resources(|| ctx.scatter(qs.as_deref(), 0).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.unscatter(qs.as_deref(), piece, 0).unwrap());
        if let Some(qs) = qs {
            for q in qs {
                ctx.free_qmem(q).unwrap();
            }
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Scatter", "copy x (N-1)", out[0]));

    // Allgather / Unallgather (copy). Copy semantics square the live-qubit
    // count (N originals + N^2 copies), so this row runs on at most 3 ranks
    // to stay within the dense simulator's budget.
    let na = n.min(3);
    let out = run(na, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, copies) = ctx.measure_resources(|| ctx.allgather(&q).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.unallgather(&q, copies).unwrap());
        ctx.measure_and_free(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Allgather*", "copy x N(N-1)", out[0]));

    // Alltoall / Unalltoall (copy) — same budget note as allgather.
    let out = run(na, move |ctx| {
        let qs = ctx.alloc_qmem(na);
        let (fwd, pieces) = ctx.measure_resources(|| ctx.alltoall(&qs).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.unalltoall(&qs, pieces).unwrap());
        for q in qs {
            ctx.free_qmem(q).unwrap();
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Alltoall*", "copy x N(N-1)", out[0]));

    // Reduce / Unreduce.
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.reduce(&q, &Parity, 0).unwrap());
        let (inv, ()) =
            ctx.measure_resources(|| ctx.unreduce(&q, result, handle, &Parity).unwrap());
        ctx.free_qmem(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Reduce", "reduce (N-1)", out[0]));

    // Allreduce / Unallreduce.
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, (value, handle)) = ctx.measure_resources(|| ctx.allreduce(&q, &Parity).unwrap());
        let (inv, ()) =
            ctx.measure_resources(|| ctx.unallreduce(&q, value, handle, &Parity).unwrap());
        ctx.free_qmem(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Allreduce", "reduce + copy", out[0]));

    // Reduce_scatter_block — N^2 inputs plus chain scratch; same budget
    // note as the all-to-all rows.
    let out = run(na, move |ctx| {
        let qs = ctx.alloc_qmem(na);
        let (fwd, (mine, handle)) =
            ctx.measure_resources(|| ctx.reduce_scatter_block(&qs, &Parity).unwrap());
        let (inv, ()) = ctx.measure_resources(|| {
            ctx.unreduce_scatter_block(&qs, mine, handle, &Parity)
                .unwrap();
        });
        for q in qs {
            ctx.free_qmem(q).unwrap();
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Reduce_scatter*", "reduce x N", out[0]));

    // Scan / Unscan.
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.scan(&q, &Parity).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.unscan(&q, result, handle, &Parity).unwrap());
        ctx.free_qmem(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Scan", "scan (N-1)", out[0]));

    // Exscan / Unexscan.
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.exscan(&q, &Parity).unwrap());
        let (inv, ()) =
            ctx.measure_resources(|| ctx.unexscan(&q, result, handle, &Parity).unwrap());
        ctx.free_qmem(q).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Exscan", "scan (N-1)", out[0]));

    // Gather_move / Ungather_move.
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        let (fwd, gathered) = ctx.measure_resources(|| ctx.gather_move(q, 0).unwrap());
        let (inv, back) = ctx.measure_resources(|| ctx.ungather_move(gathered, 0).unwrap());
        ctx.measure_and_free(back).unwrap();
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Gather_move", "move x (N-1)", out[0]));

    // Scatter_move / Unscatter_move.
    let out = run(n, move |ctx| {
        let qs = if ctx.rank() == 0 {
            Some(ctx.alloc_qmem(n))
        } else {
            None
        };
        let (fwd, piece) = ctx.measure_resources(|| ctx.scatter_move(qs, 0).unwrap());
        let (inv, back) = ctx.measure_resources(|| ctx.unscatter_move(piece, 0).unwrap());
        if let Some(back) = back {
            for q in back {
                ctx.measure_and_free(q).unwrap();
            }
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Scatter_move", "move x (N-1)", out[0]));

    // Alltoall_move (self-inverse by another exchange).
    let out = run(n, move |ctx| {
        let qs = ctx.alloc_qmem(n);
        let (fwd, pieces) = ctx.measure_resources(|| ctx.alltoall_move(qs).unwrap());
        let (inv, back) = ctx.measure_resources(|| ctx.alltoall_move(pieces).unwrap());
        for q in back {
            ctx.measure_and_free(q).unwrap();
        }
        (fwd, inv)
    });
    rows.push(snap2("QMPI_Alltoall_move", "move x N(N-1)", out[0]));

    println!(
        "{:<24} {:<26} {:<16} | {:>8} {:>8} | {:>8} {:>8}",
        "operation", "reverse", "paper units", "EPR fwd", "bits fwd", "EPR rev", "bits rev"
    );
    println!("{}", qmpi_bench::rule(112));
    for (op, rev, unit, (fwd, inv)) in &rows {
        println!(
            "{:<24} {:<26} {:<16} | {:>8} {:>8} | {:>8} {:>8}",
            op, rev, unit, fwd.epr_pairs, fwd.classical_bits, inv.epr_pairs, inv.classical_bits
        );
    }

    println!(
        "\n(*) copy-semantics all-to-all rows measured at N = {} ranks: the dense",
        n.min(3)
    );
    println!("    state-vector substrate cannot hold the N + N^2 live qubits of larger runs.");

    // Bcast algorithm comparison (Section 7.1).
    let out = run(n, |ctx| {
        let (fwd, (orig, copy)) = ctx.measure_resources(|| {
            if ctx.rank() == 0 {
                let q = ctx.alloc_one();
                ctx.bcast_with(BcastAlgorithm::CatState, Some(&q), 0)
                    .unwrap();
                (Some(q), None)
            } else {
                (
                    None,
                    ctx.bcast_with(BcastAlgorithm::CatState, None, 0).unwrap(),
                )
            }
        });
        if let Some(q) = orig {
            ctx.measure_and_free(q).unwrap();
        }
        if let Some(q) = copy {
            ctx.measure_and_free(q).unwrap();
        }
        fwd
    });
    println!(
        "\nQMPI_Bcast algorithms: tree = {} EPR rounds, cat state = {} EPR rounds (constant; Fig. 4)",
        (n as f64).log2().ceil() as u64,
        out[0].epr_rounds
    );
}
