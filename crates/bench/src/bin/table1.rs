//! Regenerates **Table 1** of the paper: classical and quantum resources
//! per qubit for entangled copy, move, reduce, and scan, plus their
//! inverses, measured from the live QMPI implementation's resource ledger.
//!
//! Run: `cargo run -p qmpi-bench --bin table1 --release`

use qmpi::{run, Parity, ResourceSnapshot};

struct Row {
    name: &'static str,
    paper_epr: String,
    paper_bits: String,
    measured: ResourceSnapshot,
}

fn measure_copy(n: usize) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(n, |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            let (fwd, ()) = ctx.measure_resources(|| ctx.send(&q, 1, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| ctx.unsend(&q, 1, 0).unwrap());
            ctx.measure_and_free(q).unwrap();
            (fwd, inv)
        } else if ctx.rank() == 1 {
            let (fwd, copy) = ctx.measure_resources(|| ctx.recv(0, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| ctx.unrecv(copy, 0, 0).unwrap());
            (fwd, inv)
        } else {
            let (a, ()) = ctx.measure_resources(|| ());
            let (b, ()) = ctx.measure_resources(|| ());
            (a, b)
        }
    });
    out[0]
}

fn measure_move(n: usize) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(n, |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            let (fwd, ()) = ctx.measure_resources(|| ctx.send_move(q, 1, 0).unwrap());
            let (inv, back) = ctx.measure_resources(|| ctx.unsend_move(1, 0).unwrap());
            ctx.measure_and_free(back).unwrap();
            (fwd, inv)
        } else if ctx.rank() == 1 {
            let (fwd, q) = ctx.measure_resources(|| ctx.recv_move(0, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| ctx.unrecv_move(q, 0, 0).unwrap());
            (fwd, inv)
        } else {
            let (a, ()) = ctx.measure_resources(|| ());
            let (b, ()) = ctx.measure_resources(|| ());
            (a, b)
        }
    });
    out[0]
}

fn measure_reduce(n: usize) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        if ctx.rank() % 2 == 1 {
            ctx.x(&q).unwrap();
        }
        let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.reduce(&q, &Parity, 0).unwrap());
        let (inv, ()) =
            ctx.measure_resources(|| ctx.unreduce(&q, result, handle, &Parity).unwrap());
        ctx.measure_and_free(q).unwrap();
        (fwd, inv)
    });
    out[0]
}

fn measure_scan(n: usize) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(n, |ctx| {
        let q = ctx.alloc_one();
        if ctx.rank() % 2 == 0 {
            ctx.x(&q).unwrap();
        }
        let (fwd, (result, handle)) = ctx.measure_resources(|| ctx.scan(&q, &Parity).unwrap());
        let (inv, ()) = ctx.measure_resources(|| ctx.unscan(&q, result, handle, &Parity).unwrap());
        ctx.measure_and_free(q).unwrap();
        (fwd, inv)
    });
    out[0]
}

fn main() {
    let n = qmpi_bench::arg_usize("--nodes", 4);
    println!("Table 1: resources per qubit for the basic primitives (N = {n} nodes)");
    println!("paper values in brackets; measured from the QMPI resource ledger\n");
    let (copy_f, copy_i) = measure_copy(n);
    let (move_f, move_i) = measure_move(n);
    let (red_f, red_i) = measure_reduce(n);
    let (scan_f, scan_i) = measure_scan(n);
    let rows = [
        Row {
            name: "copy   [uncopy]",
            paper_epr: "1 [0]".into(),
            paper_bits: "1 [1]".into(),
            measured: copy_f,
        },
        Row {
            name: "move   [unmove]",
            paper_epr: "1 [1]".into(),
            paper_bits: "2 [2]".into(),
            measured: move_f,
        },
        Row {
            name: "reduce [unreduce]",
            paper_epr: format!("N-1={} [0]", n - 1),
            paper_bits: format!("N-1={} [{}]", n - 1, n - 1),
            measured: red_f,
        },
        Row {
            name: "scan   [unscan]",
            paper_epr: format!("N-1={} [0]", n - 1),
            paper_bits: format!("N-1={} [{}]", n - 1, n - 1),
            measured: scan_f,
        },
    ];
    let inverses = [copy_i, move_i, red_i, scan_i];
    println!(
        "{:<20} {:>16} {:>16} | {:>14} {:>14}",
        "primitive", "EPR paper", "bits paper", "EPR measured", "bits measured"
    );
    println!("{}", qmpi_bench::rule(88));
    for (row, inv) in rows.iter().zip(inverses) {
        println!(
            "{:<20} {:>16} {:>16} | {:>8} [{:>2}] {:>9} [{:>2}]",
            row.name,
            row.paper_epr,
            row.paper_bits,
            row.measured.epr_pairs,
            inv.epr_pairs,
            row.measured.classical_bits,
            inv.classical_bits,
        );
    }
    println!("\nAll inverse operations consume zero EPR pairs except unmove (a reverse");
    println!("teleportation), exactly as Table 1 states.");
}
