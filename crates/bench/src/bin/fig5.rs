//! Regenerates **Fig. 5** of the paper: histogram of the number of qubits
//! per Hamiltonian term for the hydrogen ring in STO-3G, comparing the
//! Jordan-Wigner and Bravyi-Kitaev encodings.
//!
//! Paper workload: 32 atoms / 64 spin-orbital qubits. Run:
//! `cargo run -p qmpi-bench --bin fig5 --release [--atoms 32]`

use qchem::{Encoding, WeightHistogram};

fn main() {
    let atoms = qmpi_bench::arg_usize("--atoms", 32);
    let n_qubits = 2 * atoms;
    println!("Fig. 5: qubits per term, hydrogen ring of {atoms} atoms (STO-3G, {n_qubits} qubits)");
    println!("building Hamiltonians (JW, BK)...\n");
    let t0 = std::time::Instant::now();
    let h_jw = qmpi_bench::hydrogen_ring_hamiltonian(atoms, Encoding::JordanWigner);
    let t_jw = t0.elapsed();
    let t0 = std::time::Instant::now();
    let h_bk = qmpi_bench::hydrogen_ring_hamiltonian(atoms, Encoding::BravyiKitaev);
    let t_bk = t0.elapsed();
    let hist_jw = WeightHistogram::of(&h_jw, n_qubits);
    let hist_bk = WeightHistogram::of(&h_bk, n_qubits);
    let max_count = hist_jw
        .nonzero()
        .iter()
        .chain(hist_bk.nonzero().iter())
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(1);
    println!(
        "{:>7} | {:>9} {:<26} | {:>9} {:<26}",
        "qubits", "JW terms", "", "BK terms", ""
    );
    println!("{}", qmpi_bench::rule(84));
    let max_w = hist_jw.max_weight().max(hist_bk.max_weight());
    for w in 1..=max_w {
        let cj = hist_jw.count(w);
        let cb = hist_bk.count(w);
        if cj == 0 && cb == 0 {
            continue;
        }
        println!(
            "{:>7} | {:>9} {:<26} | {:>9} {:<26}",
            w,
            cj,
            qmpi_bench::log_bar(cj, max_count),
            cb,
            qmpi_bench::log_bar(cb, max_count)
        );
    }
    println!("{}", qmpi_bench::rule(84));
    println!(
        "totals  | JW: {} terms, max weight {}, mean weight {:.2} (built in {:.1?})",
        hist_jw.total(),
        hist_jw.max_weight(),
        hist_jw.mean_weight(),
        t_jw
    );
    println!(
        "        | BK: {} terms, max weight {}, mean weight {:.2} (built in {:.1?})",
        hist_bk.total(),
        hist_bk.max_weight(),
        hist_bk.mean_weight(),
        t_bk
    );
    println!("\npaper shape check:");
    println!(
        "  JW tail reaches ~{} qubits (O(n) parity strings)  vs  BK max {} (O(log n))",
        hist_jw.max_weight(),
        hist_bk.max_weight()
    );
    assert!(
        hist_bk.max_weight() < hist_jw.max_weight(),
        "BK must truncate the weight tail relative to JW"
    );
}
