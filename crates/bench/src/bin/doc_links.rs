//! Checks that intra-repo markdown links in `README.md` and `docs/*.md`
//! resolve — the docs-site half of the CI docs job (`cargo doc -D warnings`
//! keeps the rustdoc half honest).
//!
//! ```text
//! cargo run -p qmpi-bench --bin doc_links
//! ```
//!
//! Scans inline links `[text](target)`; targets starting with a URL scheme
//! are skipped, a pure-fragment target (`#section`) must match a heading in
//! the same file, and a relative path (with optional fragment) must exist
//! relative to the file that links it. Exits non-zero listing every broken
//! link.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repo root, independent of the caller's working directory: this file
/// lives in `crates/bench`, two levels down.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

/// All inline `[text](target)` targets in `body`, with their line numbers.
/// Good enough for our own markdown: no reference-style links, no nested
/// brackets in link text.
fn link_targets(body: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_code_fence = false;
    for (lineno, line) in body.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        if in_code_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            // `[text](target "title")`: the target ends at the first
            // whitespace.
            let target = tail[..close]
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            out.push((lineno + 1, target));
            rest = &tail[close + 1..];
        }
    }
    out
}

/// GitHub-style anchor for a heading line: lowercase, spaces to dashes,
/// punctuation dropped.
fn heading_anchor(heading: &str) -> String {
    heading
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| match c {
            ' ' => Some('-'),
            c if c.is_alphanumeric() || c == '-' || c == '_' => Some(c.to_ascii_lowercase()),
            _ => None,
        })
        .collect()
}

fn anchors_of(body: &str) -> Vec<String> {
    let mut anchors = Vec::new();
    let mut in_code_fence = false;
    for line in body.lines() {
        if line.trim_start().starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        // `#` inside a fenced block is a shell comment, not a heading.
        if !in_code_fence && line.starts_with('#') {
            anchors.push(heading_anchor(line));
        }
    }
    anchors
}

fn main() -> ExitCode {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        let mut docs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        docs.sort();
        files.extend(docs);
    }

    let mut checked = 0usize;
    let mut broken = Vec::new();
    for file in &files {
        let body = match std::fs::read_to_string(file) {
            Ok(b) => b,
            Err(e) => {
                broken.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let own_anchors = anchors_of(&body);
        let dir = file.parent().expect("markdown files live in a directory");
        for (line, target) in link_targets(&body) {
            if target.contains("://") || target.starts_with("mailto:") {
                continue; // external; CI has no network anyway
            }
            checked += 1;
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            if path_part.is_empty() {
                let frag = fragment.unwrap_or_default();
                if !own_anchors.iter().any(|a| a == frag) {
                    broken.push(format!(
                        "{}:{line}: no heading for anchor '#{frag}'",
                        file.display()
                    ));
                }
                continue;
            }
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{line}: target '{target}' does not exist",
                    file.display()
                ));
                continue;
            }
            if let Some(frag) = fragment {
                if resolved.extension().is_some_and(|x| x == "md") {
                    let peer = std::fs::read_to_string(&resolved).unwrap_or_default();
                    if !anchors_of(&peer).iter().any(|a| a == frag) {
                        broken.push(format!(
                            "{}:{line}: '{}' has no heading for anchor '#{frag}'",
                            file.display(),
                            resolved.display()
                        ));
                    }
                }
            }
        }
    }

    println!(
        "doc_links: checked {checked} intra-repo links across {} files",
        files.len()
    );
    if broken.is_empty() {
        ExitCode::SUCCESS
    } else {
        for b in &broken {
            eprintln!("BROKEN {b}");
        }
        eprintln!("doc_links: {} broken link(s)", broken.len());
        ExitCode::FAILURE
    }
}
