//! Regenerates **Table 2** of the paper: every point-to-point QMPI
//! operation, its reverse, and the resources it consumes (in units of the
//! Table 1 primitives), measured live.
//!
//! Run: `cargo run -p qmpi-bench --bin table2 --release`

use qmpi::{run, QmpiRank, Qubit, ResourceSnapshot};

fn run_copy_family(
    send: impl Fn(&QmpiRank, &Qubit, usize, u16) -> qmpi::Result<()> + Send + Sync + 'static,
    unsend: impl Fn(&QmpiRank, &Qubit, usize, u16) -> qmpi::Result<()> + Send + Sync + 'static,
) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(2, move |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            let (fwd, ()) = ctx.measure_resources(|| send(ctx, &q, 1, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| unsend(ctx, &q, 1, 0).unwrap());
            ctx.measure_and_free(q).unwrap();
            (fwd, inv)
        } else {
            let (fwd, copy) = ctx.measure_resources(|| ctx.recv(0, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| ctx.unrecv(copy, 0, 0).unwrap());
            (fwd, inv)
        }
    });
    out[0]
}

fn run_move_family(
    send: impl Fn(&QmpiRank, Qubit, usize, u16) -> qmpi::Result<()> + Send + Sync + 'static,
) -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(2, move |ctx| {
        if ctx.rank() == 0 {
            let q = ctx.alloc_one();
            let (fwd, ()) = ctx.measure_resources(|| send(ctx, q, 1, 0).unwrap());
            let (inv, back) = ctx.measure_resources(|| ctx.unsend_move(1, 0).unwrap());
            ctx.measure_and_free(back).unwrap();
            (fwd, inv)
        } else {
            let (fwd, q) = ctx.measure_resources(|| ctx.recv_move(0, 0).unwrap());
            let (inv, ()) = ctx.measure_resources(|| ctx.unrecv_move(q, 0, 0).unwrap());
            (fwd, inv)
        }
    });
    out[0]
}

fn run_sendrecv() -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(2, |ctx| {
        let peer = 1 - ctx.rank();
        let q = ctx.alloc_one();
        let (fwd, incoming) = ctx.measure_resources(|| ctx.sendrecv(&q, peer, peer, 0).unwrap());
        let (inv, ()) =
            ctx.measure_resources(|| ctx.unsendrecv(&q, incoming, peer, peer, 0).unwrap());
        ctx.measure_and_free(q).unwrap();
        (fwd, inv)
    });
    out[0]
}

fn run_sendrecv_replace() -> (ResourceSnapshot, ResourceSnapshot) {
    let out = run(2, |ctx| {
        let peer = 1 - ctx.rank();
        let q = ctx.alloc_one();
        let (fwd, swapped) =
            ctx.measure_resources(|| ctx.sendrecv_replace(q, peer, peer, 0).unwrap());
        let (inv, back) =
            ctx.measure_resources(|| ctx.unsendrecv_replace(swapped, peer, peer, 0).unwrap());
        ctx.measure_and_free(back).unwrap();
        (fwd, inv)
    });
    out[0]
}

fn main() {
    println!("Table 2: point-to-point communication primitives (2 ranks, 1 qubit)");
    println!("resources per op in (EPR pairs, classical bits); paper units in brackets\n");
    println!(
        "{:<26} {:<26} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "operation", "reverse", "paper", "EPR fwd", "bits fwd", "EPR rev", "bits rev"
    );
    println!("{}", qmpi_bench::rule(110));
    let rows: Vec<(&str, &str, &str, (ResourceSnapshot, ResourceSnapshot))> = vec![
        (
            "QMPI_Send",
            "QMPI_Unsend",
            "copy",
            run_copy_family(|c, q, d, t| c.send(q, d, t), |c, q, d, t| c.unsend(q, d, t)),
        ),
        (
            "QMPI_Bsend",
            "QMPI_Bunsend",
            "copy",
            run_copy_family(
                |c, q, d, t| c.bsend(q, d, t),
                |c, q, d, t| c.bunsend(q, d, t),
            ),
        ),
        (
            "QMPI_Ssend",
            "QMPI_Sunsend",
            "copy",
            run_copy_family(
                |c, q, d, t| c.ssend(q, d, t),
                |c, q, d, t| c.sunsend(q, d, t),
            ),
        ),
        (
            "QMPI_Rsend",
            "QMPI_Runsend",
            "copy",
            run_copy_family(
                |c, q, d, t| c.rsend(q, d, t),
                |c, q, d, t| c.runsend(q, d, t),
            ),
        ),
        ("QMPI_Sendrecv", "QMPI_Unsendrecv", "copy", run_sendrecv()),
        (
            "QMPI_Sendrecv_replace",
            "QMPI_Unsendrecv_replace",
            "move",
            run_sendrecv_replace(),
        ),
        (
            "QMPI_Send_move",
            "QMPI_Unsend_move",
            "move",
            run_move_family(|c, q, d, t| c.send_move(q, d, t)),
        ),
        (
            "QMPI_Bsend_move",
            "QMPI_Bunsend_move",
            "move",
            run_move_family(|c, q, d, t| c.bsend_move(q, d, t)),
        ),
        (
            "QMPI_Ssend_move",
            "QMPI_Sunsend_move",
            "move",
            run_move_family(|c, q, d, t| c.ssend_move(q, d, t)),
        ),
        (
            "QMPI_Rsend_move",
            "QMPI_Runsend_move",
            "move",
            run_move_family(|c, q, d, t| c.rsend_move(q, d, t)),
        ),
    ];
    for (op, rev, unit, (fwd, inv)) in rows {
        println!(
            "{:<26} {:<26} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
            op, rev, unit, fwd.epr_pairs, fwd.classical_bits, inv.epr_pairs, inv.classical_bits
        );
    }
    println!("\nNote: QMPI_Recv/QMPI_Mrecv (reverse QMPI_Unrecv/QMPI_Munrecv) are the");
    println!("receiving halves measured jointly with their sends above; Sendrecv rows");
    println!("count BOTH directions of the exchange (2x copy / 2x move per rank pair).");
    println!("QMPI_Cancel: see Table 2 note (b) — resources may already have been used.");
}
