//! Regenerates **Fig. 7** of the paper: EPR pairs required to simulate one
//! first-order Trotter step of the hydrogen ring as a function of the node
//! count, for {Bravyi-Kitaev, Jordan-Wigner} x {in-place, constant-depth}.
//!
//! Paper workload: 32 atoms (64 qubits), nodes in {1, 2, 4, 8, 16, 32, 64},
//! spin-orbitals block-fixed to nodes, rotation ancilla co-located with an
//! involved orbital (caption's assumption). Run:
//! `cargo run -p qmpi-bench --bin fig7 --release [--atoms 32]`

use qchem::{trotter_step_epr_cost, BlockLayout, CircuitMethod, Encoding};

fn main() {
    let atoms = qmpi_bench::arg_usize("--atoms", 32);
    let n_qubits = 2 * atoms;
    println!(
        "Fig. 7: EPR pairs per first-order Trotter step, H ring of {atoms} atoms ({n_qubits} qubits)"
    );
    println!("building Hamiltonians...");
    let h_jw = qmpi_bench::hydrogen_ring_hamiltonian(atoms, Encoding::JordanWigner);
    let h_bk = qmpi_bench::hydrogen_ring_hamiltonian(atoms, Encoding::BravyiKitaev);
    println!(
        "JW: {} terms, BK: {} terms\n",
        qchem::rotations_per_step(&h_jw),
        qchem::rotations_per_step(&h_bk)
    );
    println!(
        "{:>6} | {:>14} {:>16} {:>14} {:>16}",
        "nodes", "BK (in-place)", "BK (const-depth)", "JW (in-place)", "JW (const-depth)"
    );
    println!("{}", qmpi_bench::rule(76));
    let mut node_counts = Vec::new();
    let mut n = 1usize;
    while n <= n_qubits {
        node_counts.push(n);
        n *= 2;
    }
    let mut series: Vec<[u64; 4]> = Vec::new();
    for &nodes in &node_counts {
        let layout = BlockLayout::new(n_qubits, nodes);
        let row = [
            trotter_step_epr_cost(&h_bk, &layout, CircuitMethod::InPlace),
            trotter_step_epr_cost(&h_bk, &layout, CircuitMethod::ConstantDepth),
            trotter_step_epr_cost(&h_jw, &layout, CircuitMethod::InPlace),
            trotter_step_epr_cost(&h_jw, &layout, CircuitMethod::ConstantDepth),
        ];
        println!(
            "{:>6} | {:>14} {:>16} {:>14} {:>16}",
            nodes, row[0], row[1], row[2], row[3]
        );
        series.push(row);
    }
    println!("{}", qmpi_bench::rule(76));
    println!("\npaper shape checks:");
    let last = series.last().unwrap();
    println!(
        "  at {} nodes: JW in-place / BK in-place = {:.2}x (paper: JW costs clearly more)",
        node_counts.last().unwrap(),
        last[2] as f64 / last[0].max(1) as f64
    );
    println!(
        "  at {} nodes: in-place / const-depth (JW) = {:.2}x (paper: const-depth saves EPR pairs)",
        node_counts.last().unwrap(),
        last[2] as f64 / last[3].max(1) as f64
    );
    assert_eq!(series[0], [0, 0, 0, 0], "single node costs nothing");
    assert!(
        last[2] > last[0],
        "JW must cost more than BK at full distribution"
    );
    assert!(last[2] > last[3], "const-depth must beat in-place for JW");
}
