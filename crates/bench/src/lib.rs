//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures. Each binary prints the paper's expected values next
//! to the values measured from this implementation, so EXPERIMENTS.md can
//! be audited by running them.

use qchem::{molecular_hamiltonian, Encoding, Molecule, PauliSum};

/// Parses a `--atoms N` style argument (defaults provided per binary).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the paper's hydrogen-ring Hamiltonian (Fig. 5/7 workload):
/// `n_atoms` hydrogens, 1.0 angstrom spacing, STO-3G.
pub fn hydrogen_ring_hamiltonian(n_atoms: usize, encoding: Encoding) -> PauliSum {
    let mol = Molecule::hydrogen_ring(n_atoms, 1.0);
    molecular_hamiltonian(&mol, encoding)
}

/// Renders a text bar for ASCII histograms, logarithmic in `count`.
pub fn log_bar(count: usize, max_count: usize) -> String {
    if count == 0 {
        return String::new();
    }
    let width = 50.0 * (count as f64).ln_1p() / (max_count as f64).ln_1p();
    "#".repeat(width.max(1.0) as usize)
}

/// Pretty-prints a rule line for the report tables.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bar_monotone() {
        assert!(log_bar(0, 100).is_empty());
        assert!(log_bar(1, 100).len() <= log_bar(50, 100).len());
        assert!(log_bar(50, 100).len() <= log_bar(100, 100).len());
    }

    #[test]
    fn small_ring_hamiltonian_builds() {
        let h = hydrogen_ring_hamiltonian(3, Encoding::JordanWigner);
        assert!(h.len() > 10);
    }
}
