//! # qserve — a multi-tenant QMPI job service
//!
//! The paper's deployment picture is a *facility*: one distributed quantum
//! machine, many users. `qserve` turns the [`qmpi`] runtime into that
//! facility. A **job** is a closure over [`qmpi::QmpiRank`] plus a
//! [`JobSpec`] (world size, seed, S-limit, noise, backend choice); a
//! [`JobServer`] runs many jobs concurrently over **one long-lived pool**
//! of shard workers ([`qmpi::ShardWorkerPool`]) instead of spawning a
//! worker set per engine.
//!
//! Two service-level mechanisms keep tenants honest:
//!
//! * **Admission control on the S-budget.** Each job declares how much EPR
//!   buffer capacity it will hold ([`JobSpec::declared_s_budget`], default
//!   `ranks × s_limit`). The server admits jobs only while the sum of
//!   admitted budgets fits its `s_capacity` — an over-budget job waits in
//!   its tenant's queue; a job that could *never* fit is rejected at
//!   submission ([`SubmitError::BudgetExceedsCapacity`]).
//! * **Fair scheduling across tenants.** Queues are per-tenant and scanned
//!   round-robin, so one tenant's backlog of EPR-hungry jobs cannot starve
//!   another tenant's small job (see [`server`] for the policy).
//!
//! Every finished job returns a [`JobReport`]: the paper's cost metrics
//! (EPR pairs, correction bits, EPR rounds, buffer peaks) plus transport
//! round counters, modeled fidelity, queue wait, and wall time.
//!
//! ## Quick start
//!
//! ```
//! use qserve::{JobServer, JobSpec, ServerConfig};
//!
//! let server = JobServer::new(ServerConfig {
//!     s_capacity: 16,
//!     max_concurrent: 4,
//!     pool_slots: 2,
//!     pool_shards: 2,
//!     ..ServerConfig::default()
//! });
//!
//! // Two tenants teleport concurrently over the same worker pool.
//! let handles: Vec<_> = ["alice", "bob"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, tenant)| {
//!         let spec = JobSpec::new(*tenant, 2).seed(40 + i as u64).s_limit(2);
//!         server
//!             .submit(spec, |ctx| {
//!                 if ctx.rank() == 0 {
//!                     let q = ctx.alloc_one();
//!                     ctx.x(&q).unwrap();
//!                     ctx.send_move(q, 1, 0).unwrap();
//!                     true
//!                 } else {
//!                     let q = ctx.recv_move(0, 0).unwrap();
//!                     ctx.measure_and_free(q).unwrap()
//!                 }
//!             })
//!             .unwrap()
//!     })
//!     .collect();
//!
//! for handle in handles {
//!     let out = handle.wait().unwrap();
//!     assert!(out.results[1]); // teleported |1> lands intact
//!     assert!(out.report.resources.epr_pairs >= 1);
//! }
//! ```

pub mod server;
pub mod spec;

pub use server::{JobHandle, JobServer, ServerConfig, ServerStats};
pub use spec::{JobBackend, JobError, JobOutput, JobReport, JobSpec, SubmitError};
