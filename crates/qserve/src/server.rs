//! The job server: queues, admission control, fair scheduling, dispatch.
//!
//! ## Scheduling policy
//!
//! One FIFO queue per tenant, scanned round-robin from a rotating cursor.
//! A queue's *head* job is admitted when (a) the server is under its
//! concurrent-job cap, (b) the job's declared S-budget fits in the free
//! S-capacity, and (c) — for pooled jobs — a pool slot is free. An
//! inadmissible head blocks only its own tenant: the scan moves on to the
//! next tenant's queue, and the cursor advances past every dispatched
//! tenant, so a backlog of EPR-hungry jobs from one tenant cannot starve
//! another tenant's small job (its queue is visited at least once per
//! rotation — bounded wait).
//!
//! Scheduling opportunities arise on submission and on every job
//! completion (which is also when budget, a concurrency slot, and possibly
//! a pool slot free up); there is no scheduler thread to keep alive or
//! shut down.

use crate::spec::{JobBackend, JobError, JobOutput, JobReport, JobSpec, SubmitError};
use qmpi::{
    run_on_backend, NoiseModel, ProcessShardLease, ProcessWorkerPool, QmpiConfig, QmpiRank,
    QuantumBackend, RemoteShardedEngine, ShardLease, ShardWorkerPool, ShardedShared, TransportKind,
    TransportStats,
};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server capacity knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Total S-budget (EPR-buffer halves) that admitted jobs may hold
    /// concurrently — the admission-control ledger's capacity.
    pub s_capacity: u64,
    /// Maximum jobs running at once (each job spawns its own rank
    /// threads; this caps the multiprogramming level).
    pub max_concurrent: usize,
    /// Long-lived shard-worker pool slots ([`JobBackend::Pooled`] jobs
    /// lease one each). Zero disables the pool.
    pub pool_slots: usize,
    /// Shard workers per pool slot (rounded/clamped as in
    /// [`qmpi::BackendKind::RemoteSharded`]).
    pub pool_shards: usize,
    /// Where shard workers live: [`TransportKind::InProcess`] (default)
    /// pools worker *threads*; the multi-process kinds pool real `qworker`
    /// child processes behind framed sockets, with failover. Applies to
    /// the pool and to spawned `RemoteSharded` job backends alike.
    pub transport: TransportKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            s_capacity: 64,
            max_concurrent: 8,
            pool_slots: 4,
            pool_shards: 2,
            transport: TransportKind::InProcess,
        }
    }
}

/// Point-in-time scheduler observables, for monitoring and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs waiting in tenant queues.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs finished since the server started.
    pub finished: u64,
    /// S-budget currently reserved by running jobs.
    pub used_s_budget: u64,
    /// Free pool slots (0 when the server has no pool).
    pub pool_available: usize,
}

/// The server's long-lived shard-worker capacity, in whichever shape the
/// configured transport dictates.
enum Pool {
    /// In-process worker threads over `cmpi` mailboxes.
    Thread(ShardWorkerPool),
    /// `qworker` child processes behind framed sockets.
    Process(ProcessWorkerPool),
}

impl Pool {
    fn available(&self) -> usize {
        match self {
            Pool::Thread(p) => p.available(),
            Pool::Process(p) => p.available(),
        }
    }

    fn try_lease(&self) -> Option<Lease> {
        match self {
            Pool::Thread(p) => p.try_lease().map(Lease::Thread),
            Pool::Process(p) => p.try_lease().map(Lease::Process),
        }
    }
}

/// An exclusive pool slot of either shape, carried from admission to the
/// engine constructor.
enum Lease {
    Thread(ShardLease),
    Process(ProcessShardLease),
}

/// What the dispatcher hands a job at dispatch time.
struct RunCtx {
    lease: Option<Lease>,
    transport: TransportKind,
    queued: Duration,
    dispatch_seq: u64,
}

/// A queued job: admission inputs plus the type-erased runner.
struct QueuedJob {
    budget: u64,
    pooled: bool,
    submitted: Instant,
    run: Box<dyn FnOnce(RunCtx) + Send>,
}

struct TenantQueue {
    tenant: String,
    jobs: VecDeque<QueuedJob>,
}

struct SchedState {
    queues: Vec<TenantQueue>,
    /// Index of the tenant the next scan starts at.
    cursor: usize,
    queued: usize,
    running: usize,
    used_budget: u64,
    finished: u64,
}

struct Inner {
    cfg: ServerConfig,
    pool: Option<Pool>,
    state: Mutex<SchedState>,
    /// Signaled on every job completion (drain waits on it).
    done_cv: Condvar,
    next_job: AtomicU64,
    next_dispatch: AtomicU64,
}

impl Inner {
    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The multi-tenant QMPI job service. See the [crate docs](crate) for the
/// model and the [module docs](self) for the scheduling policy.
pub struct JobServer {
    inner: Arc<Inner>,
}

impl JobServer {
    /// Starts a server: spawns the worker pool (if any) and nothing else —
    /// jobs bring their own rank threads.
    pub fn new(cfg: ServerConfig) -> Self {
        let pool = (cfg.pool_slots > 0).then(|| {
            if cfg.transport.is_multiprocess() {
                Pool::Process(ProcessWorkerPool::new(
                    cfg.pool_slots,
                    cfg.pool_shards.max(1),
                    cfg.transport,
                ))
            } else {
                Pool::Thread(ShardWorkerPool::new(cfg.pool_slots, cfg.pool_shards.max(1)))
            }
        });
        JobServer {
            inner: Arc::new(Inner {
                cfg,
                pool,
                state: Mutex::new(SchedState {
                    queues: Vec::new(),
                    cursor: 0,
                    queued: 0,
                    running: 0,
                    used_budget: 0,
                    finished: 0,
                }),
                done_cv: Condvar::new(),
                next_job: AtomicU64::new(0),
                next_dispatch: AtomicU64::new(0),
            }),
        }
    }

    /// A server with the default capacity ([`ServerConfig::default`]).
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default())
    }

    /// Current scheduler observables.
    pub fn stats(&self) -> ServerStats {
        let st = self.inner.lock();
        ServerStats {
            queued: st.queued,
            running: st.running,
            finished: st.finished,
            used_s_budget: st.used_budget,
            pool_available: self.inner.pool.as_ref().map_or(0, |p| p.available()),
        }
    }

    /// Submits a job: `f` runs on every rank of the job's world (exactly
    /// as in [`qmpi::run_with_config`]) once the scheduler admits it.
    /// Returns immediately with a handle; [`JobHandle::wait`] blocks for
    /// the results and the accounting report.
    ///
    /// Rejects (rather than queues) jobs that could never be admitted:
    /// a declared S-budget over the server's total capacity, a pooled job
    /// without a pool, an empty world.
    pub fn submit<T, F>(&self, spec: JobSpec, f: F) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'static,
        F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
    {
        if spec.ranks == 0 {
            return Err(SubmitError::NoRanks);
        }
        let budget = spec.declared_s_budget();
        if budget > self.inner.cfg.s_capacity {
            return Err(SubmitError::BudgetExceedsCapacity {
                declared: budget,
                capacity: self.inner.cfg.s_capacity,
            });
        }
        let pooled = spec.backend == JobBackend::Pooled;
        if pooled && self.inner.pool.is_none() {
            return Err(SubmitError::NoPool);
        }

        let job_id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        let tenant = spec.tenant.clone();
        let run = Box::new(move |rcx: RunCtx| run_job(job_id, spec, f, rcx, tx));

        {
            let mut st = self.inner.lock();
            let ti = match st.queues.iter().position(|q| q.tenant == tenant) {
                Some(ti) => ti,
                None => {
                    st.queues.push(TenantQueue {
                        tenant,
                        jobs: VecDeque::new(),
                    });
                    st.queues.len() - 1
                }
            };
            st.queues[ti].jobs.push_back(QueuedJob {
                budget,
                pooled,
                submitted: Instant::now(),
                run,
            });
            st.queued += 1;
        }
        pump(&self.inner);
        Ok(JobHandle { job_id, rx })
    }

    /// Blocks until every submitted job (queued or running) has finished.
    pub fn drain(&self) {
        let mut st = self.inner.lock();
        while st.queued > 0 || st.running > 0 {
            st = self
                .inner
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        // Graceful: run everything to completion so no handle is left
        // hanging, then (via the last Arc) shut the pool's workers down.
        self.drain();
    }
}

/// Waits for one submitted job.
pub struct JobHandle<T> {
    job_id: u64,
    rx: Receiver<Result<JobOutput<T>, JobError>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job_id", &self.job_id)
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// The server-assigned job id.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Blocks until the job finishes; returns its per-rank results and
    /// accounting report, or why it failed.
    pub fn wait(self) -> Result<JobOutput<T>, JobError> {
        self.rx.recv().unwrap_or(Err(JobError::Lost))
    }
}

/// Dispatches every currently admissible job. Called on submission and
/// after each completion.
fn pump(inner: &Arc<Inner>) {
    loop {
        let mut st = inner.lock();
        if st.running >= inner.cfg.max_concurrent || st.queues.is_empty() {
            return;
        }
        let n = st.queues.len();
        let mut picked = None;
        for step in 0..n {
            let ti = (st.cursor + step) % n;
            let Some(job) = st.queues[ti].jobs.front() else {
                continue;
            };
            if st.used_budget + job.budget > inner.cfg.s_capacity {
                continue; // blocks this tenant's head only; scan moves on
            }
            if job.pooled {
                // Taking the lease inside the scheduling decision keeps
                // admission and allocation atomic: an admitted pooled job
                // always holds its slot.
                match inner
                    .pool
                    .as_ref()
                    .expect("pooled implies pool")
                    .try_lease()
                {
                    Some(lease) => {
                        picked = Some((ti, Some(lease)));
                        break;
                    }
                    None => continue,
                }
            }
            picked = Some((ti, None));
            break;
        }
        let Some((ti, lease)) = picked else { return };
        let job = st.queues[ti].jobs.pop_front().expect("head checked");
        st.cursor = (ti + 1) % n;
        st.queued -= 1;
        st.running += 1;
        st.used_budget += job.budget;
        drop(st);

        let dispatch_seq = inner.next_dispatch.fetch_add(1, Ordering::Relaxed);
        let queued_for = job.submitted.elapsed();
        let budget = job.budget;
        let inner2 = Arc::clone(inner);
        std::thread::Builder::new()
            .name(format!("qserve-job-{dispatch_seq}"))
            .spawn(move || {
                (job.run)(RunCtx {
                    lease,
                    transport: inner2.cfg.transport,
                    queued: queued_for,
                    dispatch_seq,
                });
                let mut st = inner2.lock();
                st.running -= 1;
                st.used_budget -= budget;
                st.finished += 1;
                drop(st);
                inner2.done_cv.notify_all();
                pump(&inner2);
            })
            .expect("failed to spawn job thread");
        // Loop: more queued jobs may be admissible.
    }
}

/// Executes one dispatched job end to end and reports through `tx`.
fn run_job<T, F>(
    job_id: u64,
    spec: JobSpec,
    f: F,
    rcx: RunCtx,
    tx: Sender<Result<JobOutput<T>, JobError>>,
) where
    T: Send + 'static,
    F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
{
    let started = Instant::now();
    let transport_kind = rcx.transport;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        execute(&spec, f, rcx.lease, transport_kind)
    }));
    let report =
        |backend, resources, peak, counts, transport: Option<TransportStats>, fidelity| JobReport {
            job_id,
            tenant: spec.tenant.clone(),
            backend,
            ranks: spec.ranks,
            s_budget: spec.declared_s_budget(),
            dispatch_seq: rcx.dispatch_seq,
            queued: rcx.queued,
            wall: started.elapsed(),
            resources,
            max_buffer_peak: peak,
            counts,
            transport,
            modeled_fidelity: fidelity,
        };
    let result = match outcome {
        Ok(Ok((results, stats))) => Ok(JobOutput {
            results,
            report: report(
                stats.kind,
                stats.resources,
                stats.max_buffer_peak,
                stats.counts,
                stats.transport,
                stats.fidelity,
            ),
        }),
        Ok(Err(build)) => Err(JobError::Build(build)),
        Err(panic) => Err(JobError::Panicked(panic_message(&*panic))),
    };
    // A dropped handle is fine: accounting already updated by the caller.
    let _ = tx.send(result);
}

/// Backend-side accounting read after the world finishes, before the
/// backend (and any lease under it) is released.
struct BackendStats {
    kind: qmpi::BackendKind,
    resources: qmpi::ResourceSnapshot,
    max_buffer_peak: i64,
    counts: qmpi::OpCounts,
    transport: Option<TransportStats>,
    fidelity: Option<f64>,
}

/// Builds the job's backend, runs its world, and harvests accounting.
/// Returns `Err(message)` when the backend cannot be built.
fn execute<T, F>(
    spec: &JobSpec,
    f: F,
    lease: Option<Lease>,
    transport: TransportKind,
) -> Result<(Vec<T>, BackendStats), String>
where
    T: Send + 'static,
    F: Fn(&QmpiRank) -> T + Send + Sync + 'static,
{
    let (backend, kind): (Arc<dyn QuantumBackend>, _) = match (&spec.backend, lease) {
        (JobBackend::Pooled, Some(lease)) => {
            spec.noise
                .validate()
                .map_err(|e| format!("invalid noise model: {e}"))?;
            let engine = match lease {
                Lease::Thread(lease) => {
                    RemoteShardedEngine::from_lease(spec.seed, lease, spec.noise)
                }
                Lease::Process(lease) => {
                    RemoteShardedEngine::from_process_lease(spec.seed, lease, spec.noise)
                }
            };
            let backend = Arc::new(ShardedShared::new(engine));
            let kind = QuantumBackend::kind(&*backend);
            (backend, kind)
        }
        (JobBackend::Spawn(kind), _) => {
            let backend = qmpi::build_backend(*kind, transport, spec.seed, spec.noise)
                .map_err(|e| e.to_string())?;
            let kind = backend.kind();
            (backend, kind)
        }
        (JobBackend::Pooled, None) => unreachable!("pooled dispatch always carries a lease"),
    };

    let mut config = QmpiConfig::new().seed(spec.seed).noise(NoiseModel::ideal());
    // The noise rides in the backend (already built); the config's model
    // would only rebuild it. s_limit and batching apply per rank.
    if let Some(limit) = spec.s_limit {
        config = config.s_limit(limit);
    }
    if let Some(batching) = spec.batching {
        config = config.batching(batching);
    }
    config = config.backend(kind);

    let run = run_on_backend(spec.ranks, config, Arc::clone(&backend), f);
    let stats = BackendStats {
        kind,
        resources: run.resources,
        max_buffer_peak: run.max_buffer_peak,
        counts: backend.counts(),
        transport: backend.transport_stats(),
        fidelity: backend.modeled_fidelity(),
    };
    // Dropping the backend now (all rank clones are joined) releases a
    // leased slot back to the pool *before* the job is marked finished.
    drop(backend);
    Ok((run.results, stats))
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}
