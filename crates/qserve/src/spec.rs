//! Job specifications and per-job accounting reports.

use qmpi::{BackendKind, NoiseModel, OpCounts, ResourceSnapshot, TransportStats};
use std::time::Duration;

/// Which simulation capacity a job runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobBackend {
    /// Lease a slot of the server's long-lived shard-worker pool
    /// ([`qmpi::ShardWorkerPool`]) for the job's lifetime. The default:
    /// jobs share workers instead of spawning their own.
    Pooled,
    /// Build a private backend of this kind for the job (including
    /// `RemoteSharded`, which spawns and joins its own workers — the
    /// spawn-per-job model the pool exists to beat).
    Spawn(BackendKind),
}

/// What one tenant asks the server to run: world size, seeding, backend
/// choice, and the declared S-budget the admission controller holds the
/// job to.
///
/// ```
/// use qserve::JobSpec;
///
/// let spec = JobSpec::new("alice", 2).seed(7).s_limit(2);
/// assert_eq!(spec.declared_s_budget(), 4); // ranks × s_limit
/// ```
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub(crate) tenant: String,
    pub(crate) ranks: usize,
    pub(crate) seed: u64,
    pub(crate) s_limit: Option<u32>,
    pub(crate) noise: NoiseModel,
    pub(crate) batching: Option<bool>,
    pub(crate) backend: JobBackend,
    pub(crate) s_budget: Option<u64>,
}

impl JobSpec {
    /// A pooled-backend job for `tenant` over `ranks` QMPI ranks.
    pub fn new(tenant: impl Into<String>, ranks: usize) -> Self {
        JobSpec {
            tenant: tenant.into(),
            ranks,
            seed: 0,
            s_limit: None,
            noise: NoiseModel::ideal(),
            batching: None,
            backend: JobBackend::Pooled,
            s_budget: None,
        }
    }

    /// Sets the measurement RNG seed (deterministic per-job trajectories).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-rank EPR buffer limit (the SENDQ `S` parameter),
    /// enforced during the run exactly as in [`qmpi::QmpiConfig::s_limit`].
    /// Also the default basis of the declared S-budget.
    pub fn s_limit(mut self, limit: u32) -> Self {
        self.s_limit = Some(limit);
        self
    }

    /// Sets the noise model the job's backend applies.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Forces gate batching on or off for the job (defaults to the
    /// process-wide [`qmpi::QmpiConfig`] default otherwise).
    pub fn batching(mut self, enabled: bool) -> Self {
        self.batching = Some(enabled);
        self
    }

    /// Selects the job's capacity source (default: [`JobBackend::Pooled`]).
    pub fn backend(mut self, backend: JobBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the declared S-budget the admission controller reserves
    /// for the job (EPR-buffer halves held concurrently across the world).
    pub fn s_budget(mut self, budget: u64) -> Self {
        self.s_budget = Some(budget);
        self
    }

    /// The tenant name used for fair scheduling.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The S-budget admission control reserves while the job runs: the
    /// explicit [`JobSpec::s_budget`] override, else `ranks × s_limit`,
    /// else `ranks × 2` (two buffered EPR halves per rank — the teleport
    /// working set) when no limit is declared.
    pub fn declared_s_budget(&self) -> u64 {
        self.s_budget
            .unwrap_or_else(|| self.ranks as u64 * u64::from(self.s_limit.unwrap_or(2)))
    }
}

/// Why a submission was rejected outright (as opposed to queued).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The declared S-budget exceeds the server's total capacity: the job
    /// could never be admitted, so queueing it would wait forever.
    BudgetExceedsCapacity {
        /// The job's declared budget.
        declared: u64,
        /// The server's total S-capacity.
        capacity: u64,
    },
    /// A pooled job was submitted to a server configured without a pool.
    NoPool,
    /// A world of zero ranks.
    NoRanks,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::BudgetExceedsCapacity { declared, capacity } => write!(
                f,
                "declared S-budget {declared} exceeds the server's total capacity {capacity}"
            ),
            SubmitError::NoPool => write!(f, "server has no worker pool (pool_slots = 0)"),
            SubmitError::NoRanks => write!(f, "a job needs at least one rank"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a dispatched job produced no result.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The job's backend could not be built (e.g. an invalid noise model).
    Build(String),
    /// A rank (or the engine protocol under it) panicked.
    Panicked(String),
    /// The job thread ended without reporting (never expected; defensive).
    Lost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Build(msg) => write!(f, "backend construction failed: {msg}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Lost => write!(f, "job result channel closed without a report"),
        }
    }
}

impl std::error::Error for JobError {}

/// A finished job's results plus its accounting.
pub struct JobOutput<T> {
    /// Per-rank results in rank order.
    pub results: Vec<T>,
    /// The accounting record.
    pub report: JobReport,
}

/// Per-job accounting: the paper's cost metrics (EPR pairs, correction
/// bits, rounds) plus service-level fields (queue wait, wall time,
/// dispatch order) and the PR 5 transport counters when the backend is
/// message-driven.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Server-assigned job id (submission order).
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The backend kind that executed the job.
    pub backend: BackendKind,
    /// World size.
    pub ranks: usize,
    /// The S-budget admission control reserved for the job.
    pub s_budget: u64,
    /// Global dispatch sequence number (scheduling order across tenants).
    pub dispatch_seq: u64,
    /// Time spent queued between submission and dispatch.
    pub queued: Duration,
    /// Wall time from dispatch to completion.
    pub wall: Duration,
    /// Final ledger totals: EPR pairs, classical correction bits, EPR
    /// rounds.
    pub resources: ResourceSnapshot,
    /// Largest per-rank EPR-buffer peak — the minimum SENDQ `S` the run
    /// actually required (compare against `s_budget / ranks`).
    pub max_buffer_peak: i64,
    /// Backend operation counts (gates, measurements, entanglements).
    pub counts: OpCounts,
    /// Transport accounting (command rounds, exchange rounds, wire bytes,
    /// worker respawns, cross-rank coalesced flushes), for message-driven
    /// backends; `None` when the backend has no transport. With coalescing
    /// on, `coalesced_flushes` is the job's round savings: each count is
    /// one rank flush that rode an already-open window instead of paying
    /// its own command fan-out round.
    pub transport: Option<TransportStats>,
    /// The backend's modeled run fidelity, when it maintains one (the
    /// trace engine's error-free probability).
    pub modeled_fidelity: Option<f64>,
}

impl JobReport {
    /// Header matching [`JobReport::table_row`], for the accounting table
    /// the `job_server` example prints.
    pub fn table_header() -> String {
        format!(
            "{:>4}  {:<8} {:<16} {:>5} {:>6} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>4} {:>6} {:>9}  {:>10}",
            "job",
            "tenant",
            "backend",
            "ranks",
            "S-bud",
            "EPR",
            "bits",
            "rounds",
            "peak",
            "cmd-rnd",
            "xch-rnd",
            "wire-B",
            "rsp",
            "coal",
            "fidelity",
            "wall"
        )
    }

    /// One fixed-width accounting row.
    pub fn table_row(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".into(), |v| v.to_string());
        let t = self.transport;
        format!(
            "{:>4}  {:<8} {:<16} {:>5} {:>6} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>4} {:>6} {:>9}  {:>10}",
            self.job_id,
            self.tenant,
            self.backend.to_string(),
            self.ranks,
            self.s_budget,
            self.resources.epr_pairs,
            self.resources.classical_bits,
            self.resources.epr_rounds,
            self.max_buffer_peak,
            opt(t.map(|t| t.command_rounds)),
            opt(t.map(|t| t.exchange_rounds)),
            opt(t.map(|t| t.wire_bytes)),
            opt(t.map(|t| t.respawns)),
            opt(t.map(|t| t.coalesced_flushes)),
            self.modeled_fidelity
                .map_or_else(|| "-".into(), |f| format!("{f:.5}")),
            format!("{:.2?}", self.wall),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_budget_defaults() {
        assert_eq!(JobSpec::new("t", 4).declared_s_budget(), 8);
        assert_eq!(JobSpec::new("t", 4).s_limit(3).declared_s_budget(), 12);
        assert_eq!(
            JobSpec::new("t", 4)
                .s_limit(3)
                .s_budget(5)
                .declared_s_budget(),
            5
        );
    }

    #[test]
    fn table_row_aligns_with_header() {
        let report = JobReport {
            job_id: 7,
            tenant: "alice".into(),
            backend: BackendKind::Trace,
            ranks: 8,
            s_budget: 16,
            dispatch_seq: 3,
            queued: Duration::from_millis(2),
            wall: Duration::from_millis(5),
            resources: ResourceSnapshot::default(),
            max_buffer_peak: 2,
            counts: OpCounts::default(),
            transport: Some(TransportStats {
                command_rounds: 12,
                exchange_rounds: 9,
                wire_bytes: 4096,
                respawns: 1,
                coalesced_flushes: 33,
            }),
            modeled_fidelity: Some(0.75),
        };
        let header = JobReport::table_header();
        let row = report.table_row();
        assert!(row.contains("alice") && row.contains("0.75000"));
        assert!(row.contains("4096") && row.contains("12") && row.contains('9'));
        assert!(header.contains("coal") && row.contains("33"));
        // Fixed-width formatting: the row may only differ in length by the
        // wall-clock field's rendering.
        assert!(header.len() >= 100 && row.len() >= 100);
    }
}
