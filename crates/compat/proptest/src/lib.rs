//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships a
//! small, deterministic property-testing harness with the same spelling as
//! the real crate for everything the in-tree tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: numeric ranges, `any::<T>()`, [`strategy::Just`], tuples,
//!   `prop_map`, [`prop_oneof!`], and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed number
//! of cases with inputs derived deterministically from the case index, so
//! failures reproduce exactly across runs and machines.
//!
//! The `PROPTEST_CASES` environment variable overrides every configured
//! case count (including explicit `with_cases`) — the hook CI's scheduled
//! stress lane uses to rerun the in-tree properties at ~10x depth off the
//! pull-request critical path.

pub mod test_runner {
    /// Per-test configuration (case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of sampled cases to execute.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable when set and parseable, else the configured count.
        ///
        /// Unlike real proptest (where the env var only feeds the default
        /// config), the override here beats an explicit `with_cases` too —
        /// that is what lets a scheduled stress lane rerun every in-tree
        /// property at 10x cases without touching source.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
        rejected: bool,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError {
                message,
                rejected: false,
            }
        }

        /// Marks a case as rejected by `prop_assume!` (skipped, not failed).
        pub fn reject() -> Self {
            TestCaseError {
                message: "input rejected by prop_assume!".into(),
                rejected: true,
            }
        }

        /// Whether this error is a `prop_assume!` rejection.
        pub fn is_rejection(&self) -> bool {
            self.rejected
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case RNG (splitmix64 over the case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a test.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x51D0_B654_3210_FEED,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for sampling values of `Self::Value`.
    ///
    /// Object-safe so strategies of one value type can be unified behind
    /// [`BoxedStrategy`] (what [`crate::prop_oneof!`] produces).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Pipes sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        assert!(span > 0, "empty integer range strategy");
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
            )+
        };
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Samples from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for [`Arbitrary`] types; build with [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Entry point: declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.resolved_cases() as u64 {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    let result = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        if e.is_rejection() {
                            continue;
                        }
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Skips the current case when `cond` is false (no failure recorded).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Toy {
        A,
        B(f64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -1.5f64..2.5, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y), "y={y}");
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(xs in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(t in prop_oneof![Just(Toy::A), (0.0f64..1.0).prop_map(Toy::B)]) {
            match t {
                Toy::A => {}
                Toy::B(v) => prop_assert!((0.0..1.0).contains(&v)),
            }
        }

        #[test]
        fn tuples_sample_elementwise((a, b) in (any::<bool>(), 0u32..7)) {
            let _ = a;
            prop_assert!(b < 7);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = TestRng::for_case(3);
        let mut r2 = TestRng::for_case(3);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn resolved_cases_falls_back_to_configured_count() {
        // The PROPTEST_CASES override itself can't be exercised hermetically
        // (env vars are process-global and tests run concurrently), but the
        // parse/fallback seam can: unset or garbage means configured count.
        let cfg = crate::test_runner::Config::with_cases(13);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.resolved_cases(), 13);
        } else {
            // A stress lane set the override; it must win and be positive.
            assert!(cfg.resolved_cases() > 0);
        }
    }
}
