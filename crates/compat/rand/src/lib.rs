//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `Rng::gen`, `SeedableRng`,
//! and `rngs::StdRng` — on top of xoshiro256\*\* seeded via splitmix64.
//! Deterministic across platforms, which the simulator's seeded-measurement
//! contract requires.

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`'s stream.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (half-open), mirroring
    /// `rand::Rng::gen_range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng`'s stream.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "cannot sample from an empty range");
                    // Rejection-free multiply-shift; bias is negligible for
                    // the bounds used here (widest in-tree is a few hundred).
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )+
    };
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {
        $(
            impl Standard for $t {
                fn sample<R: RngCore>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}
