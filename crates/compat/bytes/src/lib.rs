//! Offline stand-in for the `bytes` crate.
//!
//! Provides cheaply-cloneable immutable byte buffers ([`Bytes`]), a growable
//! builder ([`BytesMut`]), and the [`Buf`]/[`BufMut`] trait subset the `cmpi`
//! wire format relies on. `Bytes` clones share one allocation via `Arc` and
//! track a `[start, end)` window, so `clone`/`split_to` are O(1) like the
//! real crate.

use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice (copied; the real crate borrows, but callers
    /// only rely on value semantics).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        let v = slice.to_vec();
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The readable window as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the readable window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
}

macro_rules! impl_get {
    ($($name:ident -> $t:ty [ $n:expr, $conv:ident ]),+ $(,)?) => {
        impl Bytes {
            $(
                /// Reads one scalar from the front, advancing the cursor.
                pub fn $name(&mut self) -> $t {
                    <$t>::$conv(self.take_array::<$n>())
                }
            )+
        }
    };
}

impl_get! {
    get_u16_le -> u16 [2, from_le_bytes],
    get_u32_le -> u32 [4, from_le_bytes],
    get_u64_le -> u64 [8, from_le_bytes],
    get_i16_le -> i16 [2, from_le_bytes],
    get_i32_le -> i32 [4, from_le_bytes],
    get_i64_le -> i64 [8, from_le_bytes],
    get_f32_le -> f32 [4, from_le_bytes],
    get_f64_le -> f64 [8, from_le_bytes],
}

impl Bytes {
    /// Reads one byte, advancing the cursor.
    pub fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads one signed byte, advancing the cursor.
    pub fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }
}

/// Write cursor that appends to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

macro_rules! impl_put {
    ($($name:ident ( $t:ty )),+ $(,)?) => {
        impl BytesMut {
            $(
                /// Appends one scalar in little-endian byte order.
                pub fn $name(&mut self, v: $t) {
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
            )+
        }
    };
}

impl_put! {
    put_u16_le(u16),
    put_u32_le(u32),
    put_u64_le(u64),
    put_i16_le(i16),
    put_i32_le(i32),
    put_i64_le(i64),
    put_f32_le(f32),
    put_f64_le(f64),
}

impl BytesMut {
    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends one signed byte.
    pub fn put_i8(&mut self, v: i8) {
        self.data.push(v as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f64_le(2.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), 2.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = b.split_to(3);
        assert_eq!(head.as_slice(), &[1, 2, 3]);
        assert_eq!(b.as_slice(), &[4]);
    }

    #[test]
    fn clones_share_data_cheaply() {
        let b = Bytes::copy_from_slice(&[9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 1024);
    }
}
