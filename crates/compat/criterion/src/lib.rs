//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness. Each benchmark runs a short warmup, then `sample_size` timed
//! samples, and prints min/mean per-iteration times. No statistics engine,
//! no HTML reports; the point is that `cargo bench` compiles, runs, and
//! yields comparable numbers in this offline environment.
//!
//! Two environment variables serve CI:
//!
//! * `CRITERION_SAMPLE_SIZE` — overrides every benchmark's sample count
//!   (the "`--quick`" knob for smoke jobs);
//! * `CRITERION_OUTPUT_JSON` — path to which `criterion_main!` writes all
//!   collected results as JSON after the groups finish, so pipelines can
//!   archive a machine-readable perf artifact per commit.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished benchmark, as recorded for the JSON artifact.
struct Record {
    name: String,
    min_ns: u128,
    mean_ns: u128,
    samples: usize,
}

fn results() -> &'static Mutex<Vec<Record>> {
    static RESULTS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The `CRITERION_SAMPLE_SIZE` override, if set and parseable.
fn sample_size_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes every recorded result to `CRITERION_OUTPUT_JSON` (no-op when the
/// variable is unset). Called by `criterion_main!` after all groups run.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") else {
        return;
    };
    let records = results().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{comma}\n",
            json_escape(&r.name),
            r.min_ns,
            r.mean_ns,
            r.samples
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {} benchmark records to {path}", records.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Re-export of the compiler fence against optimizing away benched values.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form, used by
    /// `criterion_group!`'s `config = ...`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warmup call).
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let sample_size = sample_size_override().unwrap_or(sample_size);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples — closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().expect("nonempty");
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<40} min {:>12}  mean {:>12}  ({} samples)",
        format_ns(*min),
        format_ns(mean),
        b.samples.len()
    );
    results()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Record {
            name: label.to_string(),
            min_ns: min.as_nanos(),
            mean_ns: mean.as_nanos(),
            samples: b.samples.len(),
        });
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`). After
/// all groups finish, results are written to `CRITERION_OUTPUT_JSON` if the
/// variable is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("tiny/group");
        group.sample_size(3);
        for n in [4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
        }
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default().sample_size(2);
        tiny_bench(&mut c);
    }

    #[test]
    fn json_report_round_trips() {
        let path = std::env::temp_dir().join("criterion_compat_report_test.json");
        std::env::set_var("CRITERION_OUTPUT_JSON", &path);
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("json/roundtrip", |b| b.iter(|| black_box(1 + 1)));
        write_json_report();
        std::env::remove_var("CRITERION_OUTPUT_JSON");
        let body = std::fs::read_to_string(&path).expect("report written");
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"benchmarks\""));
        assert!(body.contains("\"name\": \"json/roundtrip\""));
        assert!(body.contains("\"mean_ns\""));
    }
}
