//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset backed by `std::sync`. Differences from
//! the real crate that matter here:
//!
//! * `Mutex::lock` never returns a poison error — a poisoned std mutex is
//!   unwrapped into its inner guard, matching parking_lot's no-poisoning
//!   semantics.
//! * Only the surface this workspace uses is provided: `Mutex`, `MutexGuard`,
//!   `RwLock` with its read/write guards,
//!   `Condvar::{wait, wait_until, notify_one, notify_all}` and
//!   `WaitTimeoutResult::timed_out`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion primitive (std-backed, no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so that
/// [`Condvar::wait`] can temporarily take ownership (std's wait consumes and
/// returns the guard; parking_lot's mutates it in place).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock (std-backed, no poisoning).
///
/// Added for the lock-striped sharded backend: gate dispatch holds a read
/// guard (many ranks apply gates concurrently, each striping through the
/// per-shard mutexes), while structural operations — allocation, free,
/// measurement collapse — take the write guard for exclusive access.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's in-place-guard API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_readers_and_exclusive_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() += 5;
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || *l2.read());
        assert_eq!(t.join().unwrap(), 5);
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
