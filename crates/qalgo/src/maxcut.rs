//! Adiabatic MaxCut optimization — the application motivating Section 7.2:
//! "Time evolution under this Hamiltonian can be used as a building block
//! to solve optimization problems leveraging the adiabatic theorem".
//!
//! MaxCut on a graph maps to the antiferromagnetic Ising model
//! `H_P = Σ_{(i,j)∈E} σ_z^i σ_z^j` (maximizing the cut = minimizing H_P).
//! Starting from the transverse-field ground state |+...+>, the coupling is
//! annealed in while the field anneals out; a final measurement reads a cut.
//! Vertices are block-distributed over QMPI ranks; cross-rank edges use the
//! entangled-copy ZZ-rotation gadget.

use crate::gadgets::{zz_rotation_local, zz_rotation_remote};
use qmpi::{QmpiRank, Result};

/// An undirected graph for MaxCut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    pub n_vertices: usize,
    /// Undirected edges (u, v), u != v.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph, validating the edge list.
    pub fn new(n_vertices: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                u < n_vertices && v < n_vertices && u != v,
                "invalid edge ({u},{v})"
            );
        }
        Graph { n_vertices, edges }
    }

    /// A path 0-1-2-...-(n-1).
    pub fn path(n: usize) -> Self {
        Graph::new(n, (0..n - 1).map(|i| (i, i + 1)).collect())
    }

    /// An even cycle.
    pub fn cycle(n: usize) -> Self {
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
    }

    /// Cut value of an assignment (vertices -> sides).
    pub fn cut_value(&self, assignment: &[bool]) -> usize {
        assert_eq!(assignment.len(), self.n_vertices);
        self.edges
            .iter()
            .filter(|&&(u, v)| assignment[u] != assignment[v])
            .count()
    }

    /// Exhaustive optimum (for tests; graphs up to ~20 vertices).
    pub fn brute_force_maxcut(&self) -> usize {
        assert!(self.n_vertices <= 20, "brute force limited to 20 vertices");
        let mut best = 0;
        for mask in 0u32..(1 << self.n_vertices) {
            let assignment: Vec<bool> = (0..self.n_vertices).map(|v| mask >> v & 1 == 1).collect();
            best = best.max(self.cut_value(&assignment));
        }
        best
    }
}

/// Runs the distributed adiabatic MaxCut anneal. Vertices are block-
/// distributed (`n_vertices` divisible by the rank count); returns this
/// rank's measured assignment slice.
pub fn anneal_maxcut(
    ctx: &QmpiRank,
    graph: &Graph,
    annealing_steps: usize,
    dt: f64,
) -> Result<Vec<bool>> {
    let n = graph.n_vertices;
    let size = ctx.size();
    assert_eq!(n % size, 0, "vertices must divide evenly over ranks");
    let local_n = n / size;
    let rank = ctx.rank();
    let node_of = |v: usize| v / local_n;
    let local_index = |v: usize| v % local_n;
    let qubits = ctx.alloc_qmem(local_n);
    for q in &qubits {
        ctx.h(q)?;
    }
    for step in 0..annealing_steps {
        let s = (step as f64 + 0.5) / annealing_steps as f64;
        // Antiferromagnetic coupling anneals in: angle 2 J dt with J = s.
        let zz_angle = 2.0 * s * dt;
        for (edge_idx, &(u, v)) in graph.edges.iter().enumerate() {
            let (nu, nv) = (node_of(u), node_of(v));
            let tag = (edge_idx % 1024) as u16;
            if nu == rank && nv == rank {
                let qu = &qubits[local_index(u)];
                let qv = &qubits[local_index(v)];
                ctx.cnot(qu, qv)?;
                ctx.rz(qv, zz_angle)?;
                ctx.cnot(qu, qv)?;
            } else if nu == rank {
                // We hold u; the peer holding v performs the rotation.
                zz_rotation_local(ctx, &qubits[local_index(u)], nv, tag)?;
            } else if nv == rank {
                zz_rotation_remote(ctx, &qubits[local_index(v)], zz_angle, nu, tag)?;
            }
        }
        // Transverse field anneals out.
        let x_angle = -2.0 * (1.0 - s) * dt;
        for q in &qubits {
            ctx.rx(q, x_angle)?;
        }
    }
    let mut out = Vec::with_capacity(local_n);
    for q in qubits {
        out.push(ctx.measure_and_free(q)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmpi::{run_with_config, QmpiConfig};

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = Graph::path(4);
        assert_eq!(g.cut_value(&[false, true, false, true]), 3);
        assert_eq!(g.cut_value(&[false, false, false, false]), 0);
        assert_eq!(g.cut_value(&[false, false, true, true]), 1);
    }

    #[test]
    fn brute_force_known_optima() {
        assert_eq!(Graph::path(4).brute_force_maxcut(), 3);
        assert_eq!(Graph::cycle(4).brute_force_maxcut(), 4);
        assert_eq!(Graph::cycle(6).brute_force_maxcut(), 6);
        // Odd cycle is frustrated: optimum n-1.
        assert_eq!(Graph::cycle(5).brute_force_maxcut(), 4);
        // Complete graph K4: optimum 4 (2+2 split).
        let k4 = Graph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(k4.brute_force_maxcut(), 4);
    }

    #[test]
    fn annealed_cut_is_near_optimal_on_path() {
        // Slow anneal on P4 over 2 ranks; with the fixed seed the sampled
        // assignment reaches the optimum cut.
        let g = Graph::path(4);
        let optimum = g.brute_force_maxcut();
        let g2 = g.clone();
        let out = run_with_config(2, QmpiConfig::new().seed(1234), move |ctx| {
            anneal_maxcut(ctx, &g2, 40, 0.4).unwrap()
        });
        let assignment: Vec<bool> = out.into_iter().flatten().collect();
        let cut = g.cut_value(&assignment);
        assert!(
            cut + 1 >= optimum,
            "annealed cut {cut} too far from optimum {optimum} ({assignment:?})"
        );
    }

    #[test]
    fn annealed_cut_on_even_cycle_single_rank() {
        let g = Graph::cycle(4);
        let optimum = g.brute_force_maxcut();
        let g2 = g.clone();
        let out = run_with_config(1, QmpiConfig::new().seed(7), move |ctx| {
            anneal_maxcut(ctx, &g2, 40, 0.4).unwrap()
        });
        let assignment = out.into_iter().next().unwrap();
        let cut = g.cut_value(&assignment);
        assert!(cut + 1 >= optimum, "cut {cut} vs optimum {optimum}");
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn self_loops_rejected() {
        let _ = Graph::new(3, vec![(1, 1)]);
    }
}
