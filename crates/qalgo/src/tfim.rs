//! Distributed transverse-field Ising model time evolution — the paper's
//! Section 7.2 application and Listing 1.
//!
//! `H = -J Σ σ_z σ_z − Γ Σ σ_x` on a ring of spins, block-distributed over
//! the QMPI ranks. Each first-order Trotter step applies the local ZZ chain
//! rotations, exchanges boundary qubits with the ring neighbors via
//! entangled copies (`QMPI_Send`/`Unsend`), and finishes with local X
//! rotations. Cross-rank edges are scheduled in two (even ring size) or
//! three (odd) conflict-free phases, fixing the even-size assumption of the
//! paper's listing.

use qmpi::{QmpiRank, Qubit, Result};
use qsim::{Gate, QubitId, Simulator};

/// TFIM coupling parameters for one evolution segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TfimParams {
    /// Ising coupling `J` (paper's sign convention: rotation angle 2 J dt).
    pub j: f64,
    /// Transverse field `Γ` (rotation angle −2 Γ dt).
    pub g: f64,
    /// Total evolution time of this segment.
    pub time: f64,
    /// First-order Trotter steps for the segment.
    pub trotter_steps: usize,
}

/// Conflict-free color of the ring edge whose *sender* is `r` (the rank
/// sending its first qubit to rank `r-1`). Rings need two colors when even,
/// three when odd.
fn edge_color(r: usize, n: usize) -> usize {
    if r == 0 {
        if n.is_multiple_of(2) {
            1
        } else {
            2
        }
    } else {
        (r - 1) % 2
    }
}

fn edge_colors(n: usize) -> usize {
    if n.is_multiple_of(2) {
        2
    } else {
        3
    }
}

/// One first-order Trotter step of the distributed TFIM ring
/// (the body of Listing 1's `tfim_time_evolution`).
pub fn trotter_step(ctx: &QmpiRank, qubits: &[Qubit], j: f64, g: f64, dt: f64) -> Result<()> {
    let size = ctx.size();
    let rank = ctx.rank();
    let local = qubits.len();
    // Local ZZ chain.
    for site in 0..local.saturating_sub(1) {
        ctx.cnot(&qubits[site], &qubits[site + 1])?;
        ctx.rz(&qubits[site + 1], 2.0 * j * dt)?;
        ctx.cnot(&qubits[site], &qubits[site + 1])?;
    }
    if size == 1 {
        // Single rank: close the ring locally.
        if local > 1 {
            ctx.cnot(&qubits[local - 1], &qubits[0])?;
            ctx.rz(&qubits[0], 2.0 * j * dt)?;
            ctx.cnot(&qubits[local - 1], &qubits[0])?;
        }
    } else {
        // Boundary terms: rank r's first qubit couples to rank (r-1)'s
        // last qubit. Process edges in conflict-free color phases.
        for color in 0..edge_colors(size) {
            // As sender: our edge to the left neighbor.
            if edge_color(rank, size) == color {
                let dest = (rank + size - 1) % size;
                ctx.send(&qubits[0], dest, 0)?;
                ctx.unsend(&qubits[0], dest, 0)?;
            }
            // As receiver: the edge whose sender is our right neighbor.
            let right = (rank + 1) % size;
            if edge_color(right, size) == color {
                let tmp = ctx.recv(right, 0)?;
                ctx.cnot(&qubits[local - 1], &tmp)?;
                ctx.rz(&tmp, 2.0 * j * dt)?;
                ctx.cnot(&qubits[local - 1], &tmp)?;
                ctx.unrecv(tmp, right, 0)?;
            }
        }
    }
    // Transverse-field rotations.
    for q in qubits {
        ctx.rx(q, -2.0 * g * dt)?;
    }
    Ok(())
}

/// Time evolution under fixed parameters (Listing 1's
/// `tfim_time_evolution`).
pub fn time_evolution(ctx: &QmpiRank, qubits: &[Qubit], params: &TfimParams) -> Result<()> {
    let dt = params.time / params.trotter_steps as f64;
    for _ in 0..params.trotter_steps {
        trotter_step(ctx, qubits, params.j, params.g, dt)?;
    }
    Ok(())
}

/// The annealing driver of Listing 1's `main`: sweeps `J: 0 -> 1`,
/// `Γ: 1 -> 0` over `annealing_steps` segments starting from the
/// transverse-field ground state |+...+>, then measures all spins.
pub fn anneal(
    ctx: &QmpiRank,
    num_local_spins: usize,
    annealing_steps: usize,
    time_per_step: f64,
    trotter_per_step: usize,
) -> Result<Vec<bool>> {
    let qubits = ctx.alloc_qmem(num_local_spins);
    for q in &qubits {
        ctx.h(q)?;
    }
    for step in 0..annealing_steps {
        let j = step as f64 / annealing_steps as f64;
        let g = 1.0 - j;
        let params = TfimParams {
            j,
            g,
            time: time_per_step,
            trotter_steps: trotter_per_step,
        };
        time_evolution(ctx, &qubits, &params)?;
    }
    let mut res = Vec::with_capacity(num_local_spins);
    for q in qubits {
        res.push(ctx.measure_and_free(q)?);
    }
    Ok(res)
}

/// Dense single-process reference for equivalence tests: the same Trotter
/// step applied to all `n` spins of the ring inside one simulator.
pub fn reference_trotter_step(sim: &mut Simulator, spins: &[QubitId], j: f64, g: f64, dt: f64) {
    let n = spins.len();
    for site in 0..n {
        // A ring of 2 is treated as a double edge, matching the behavior of
        // the distributed boundary exchange (both directions fire).
        let a = spins[site];
        let b = spins[(site + 1) % n];
        sim.cnot(a, b).unwrap();
        sim.apply(Gate::Rz(2.0 * j * dt), b).unwrap();
        sim.cnot(a, b).unwrap();
    }
    for &q in spins {
        sim.apply(Gate::Rx(-2.0 * g * dt), q).unwrap();
    }
}

/// Dense reference evolution from |+...+> with the given segment.
pub fn reference_evolution(
    n_spins: usize,
    params: &TfimParams,
    seed: u64,
) -> (Simulator, Vec<QubitId>) {
    let mut sim = Simulator::new(seed);
    let spins = sim.alloc_n(n_spins);
    for &q in &spins {
        sim.apply(Gate::H, q).unwrap();
    }
    let dt = params.time / params.trotter_steps as f64;
    for _ in 0..params.trotter_steps {
        reference_trotter_step(&mut sim, &spins, params.j, params.g, dt);
    }
    (sim, spins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmpi::run;

    const TOL: f64 = 1e-8;

    fn distributed_vs_reference(n_ranks: usize, local_spins: usize, params: TfimParams) -> f64 {
        let total = n_ranks * local_spins;
        let p = params;
        let out = run(n_ranks, move |ctx| {
            let qubits = ctx.alloc_qmem(local_spins);
            for q in &qubits {
                ctx.h(q).unwrap();
            }
            time_evolution(ctx, &qubits, &p).unwrap();
            ctx.barrier();
            // Rank 0 collects every rank's qubit ids (classical metadata)
            // and snapshots the faithful global state (Section 6).
            let my_ids: Vec<u64> = qubits.iter().map(|q| q.id().0).collect();
            let gathered = ctx.classical().gather(&my_ids, 0);
            let fidelity = if ctx.rank() == 0 {
                let all: Vec<qsim::QubitId> = gathered
                    .unwrap()
                    .into_iter()
                    .flatten()
                    .map(qsim::QubitId)
                    .collect();
                let state = ctx.backend().state_vector(&all).unwrap();
                let (ref_sim, ref_ids) = reference_evolution(total, &p, 1);
                let ref_state = ref_sim.state_vector(&ref_ids).unwrap();
                state.fidelity(&ref_state)
            } else {
                1.0
            };
            ctx.barrier();
            for q in qubits {
                ctx.measure_and_free(q).unwrap();
            }
            fidelity
        });
        out[0]
    }

    #[test]
    fn two_ranks_match_dense_reference() {
        let params = TfimParams {
            j: 0.7,
            g: 0.4,
            time: 0.5,
            trotter_steps: 3,
        };
        let f = distributed_vs_reference(2, 2, params);
        assert!((f - 1.0).abs() < TOL, "fidelity {f}");
    }

    #[test]
    fn three_ranks_odd_ring_match_dense_reference() {
        // Odd rank counts exercise the 3-color boundary schedule that the
        // paper's listing (implicitly even-size) does not handle.
        let params = TfimParams {
            j: 0.5,
            g: 0.8,
            time: 0.4,
            trotter_steps: 2,
        };
        let f = distributed_vs_reference(3, 2, params);
        assert!((f - 1.0).abs() < TOL, "fidelity {f}");
    }

    #[test]
    fn four_ranks_single_spin_each() {
        let params = TfimParams {
            j: 1.0,
            g: 0.2,
            time: 0.3,
            trotter_steps: 2,
        };
        let f = distributed_vs_reference(4, 1, params);
        assert!((f - 1.0).abs() < TOL, "fidelity {f}");
    }

    #[test]
    fn single_rank_matches_reference_trivially() {
        let params = TfimParams {
            j: 0.9,
            g: 0.1,
            time: 0.6,
            trotter_steps: 4,
        };
        let f = distributed_vs_reference(1, 4, params);
        assert!((f - 1.0).abs() < TOL, "fidelity {f}");
    }

    #[test]
    fn pure_transverse_field_is_stationary() {
        // J = 0: |+...+> is an eigenstate of -Γ Σ X, so evolution only adds
        // a global phase; fidelity to the initial state is 1.
        let out = run(2, |ctx| {
            let qubits = ctx.alloc_qmem(2);
            for q in &qubits {
                ctx.h(q).unwrap();
            }
            let params = TfimParams {
                j: 0.0,
                g: 1.0,
                time: 0.8,
                trotter_steps: 4,
            };
            time_evolution(ctx, &qubits, &params).unwrap();
            // One backend acquisition for the whole X-magnetization
            // observable, not one per site.
            let strings: Vec<_> = qubits.iter().map(|q| vec![(q, qsim::Pauli::X)]).collect();
            let ok = ctx
                .expectation_each(&strings)
                .unwrap()
                .iter()
                .all(|x| (x - 1.0).abs() < 1e-8);
            for q in qubits {
                ctx.measure_and_free(q).unwrap();
            }
            ok
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn annealing_reaches_antiferromagnetic_ground_state() {
        // With J > 0 (paper convention: H = +J Σ σz σz − Γ Σ σx, rotation
        // Rz(+2J dt) after the CNOT parity), the classical ground state of
        // the 4-ring is antiferromagnetic: a slow anneal must end with
        // (nearly) all bonds anti-aligned.
        let out = run(2, |ctx| anneal(ctx, 2, 40, 0.5, 2).unwrap());
        let all: Vec<bool> = out.into_iter().flatten().collect();
        let n = all.len();
        let afm_bonds = (0..n).filter(|&i| all[i] != all[(i + 1) % n]).count();
        assert!(
            afm_bonds >= n - 1,
            "annealed 4-ring should be antiferromagnetic, got {all:?} ({afm_bonds}/{n} AFM bonds)"
        );
    }

    #[test]
    fn edge_coloring_is_proper() {
        for n in [2usize, 3, 4, 5, 6, 9] {
            for r in 0..n {
                // Edge of sender r connects ranks r and r-1; adjacent edges
                // share a rank and must differ in color.
                let next = (r + 1) % n;
                assert_ne!(
                    edge_color(r, n),
                    edge_color(next, n),
                    "n={n}: adjacent edges {r},{next} share rank {r}"
                );
            }
        }
    }
}
