//! Teleportation-fidelity-vs-noise sweeps.
//!
//! The experiment the noise subsystem exists for: relay a known basis state
//! along a chain of ranks via `QMPI_Send_move` / `QMPI_Recv_move` under an
//! imperfect interconnect, and measure how often it arrives intact. For
//! Pauli noise on the EPR channel the result has a closed form
//! ([`analytic_teleport_fidelity`]), which pins the stochastic engines
//! statistically and documents the rate conventions.
//!
//! Combined with [`QmpiConfig::s_limit`] this is the paper's
//! fidelity-vs-`S`-budget trade: a larger EPR buffer lets a node pre-
//! establish pairs further ahead of consumption (higher throughput), while
//! every buffered pair decoheres under the interconnect channel — see
//! `docs/NOISE.md` for the worked example.

use qmpi::{run_with_config, BackendKind, NoiseChannel, NoiseModel, QmpiConfig};

/// One measured point of a fidelity sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FidelityPoint {
    /// The EPR depolarizing rate this point was run at.
    pub rate: f64,
    /// Teleportation trials performed.
    pub trials: u32,
    /// Trials whose delivered measurement matched the sent state.
    pub successes: u32,
    /// Empirical fidelity (`successes / trials`).
    pub fidelity: f64,
    /// Closed-form prediction for the same configuration.
    pub analytic: f64,
}

/// Teleports |1> from rank 0 along the full chain `0 -> 1 -> ... -> n-1`
/// `trials` times on one world and returns the fraction of trials whose
/// final Z measurement still reads 1.
///
/// Works on every stateful backend; with a Clifford `noise` model the
/// stabilizer backend runs it at large rank counts.
pub fn teleport_fidelity(
    kind: BackendKind,
    noise: NoiseModel,
    ranks: usize,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(ranks >= 2, "a teleport chain needs at least two ranks");
    let cfg = QmpiConfig::new().seed(seed).backend(kind).noise(noise);
    let out = run_with_config(ranks, cfg, move |ctx| {
        let r = ctx.rank();
        let n = ctx.size();
        let mut successes = 0u32;
        for _ in 0..trials {
            if r == 0 {
                let q = ctx.alloc_one();
                ctx.x(&q).unwrap();
                ctx.send_move(q, 1, 0).unwrap();
            } else {
                let q = ctx.recv_move(r - 1, (r - 1) as u16).unwrap();
                if r + 1 < n {
                    ctx.send_move(q, r + 1, r as u16).unwrap();
                } else if ctx.measure_and_free(q).unwrap() {
                    successes += 1;
                }
            }
        }
        successes
    });
    f64::from(out[ranks - 1]) / f64::from(trials)
}

/// Closed-form teleportation fidelity for a basis state relayed over
/// `hops` teleports when the only noise is a Pauli channel on EPR
/// establishment (every other [`NoiseModel`] class ideal).
///
/// Each hop consumes one EPR pair whose two halves independently suffer the
/// channel. A sampled X or Y flips the delivered bit (for depolarizing `p`
/// each half flips with probability `2p/3`); a sampled Z only flips the
/// phase, invisible to a Z-basis check, so dephasing predicts fidelity 1.
/// Per hop the bit flips with probability `2q(1-q)` where `q` is the
/// per-half flip rate; over `hops` independent hops the delivered bit is
/// wrong with probability `(1 - (1 - 4q(1-q))^hops) / 2`.
///
/// # Panics
///
/// Panics when `noise` has a non-EPR channel configured or an EPR channel
/// without a closed form here (amplitude damping).
pub fn analytic_teleport_fidelity(noise: &NoiseModel, hops: usize) -> f64 {
    assert!(
        noise.gate_1q.is_ideal() && noise.gate_2q.is_ideal() && noise.measurement.is_ideal(),
        "closed form covers EPR-only noise; got {noise:?}"
    );
    let q = match noise.epr {
        NoiseChannel::None => 0.0,
        NoiseChannel::Depolarizing { p } => 2.0 * p / 3.0,
        NoiseChannel::Dephasing { .. } => 0.0,
        NoiseChannel::AmplitudeDamping { gamma } => {
            assert!(gamma == 0.0, "no closed form for amplitude damping");
            0.0
        }
    };
    let flip_per_hop = 2.0 * q * (1.0 - q);
    let flip_total = (1.0 - (1.0 - 2.0 * flip_per_hop).powi(hops as i32)) / 2.0;
    1.0 - flip_total
}

/// Sweeps EPR depolarizing rates over a teleport chain, returning the
/// empirical fidelity beside the closed-form prediction per rate.
///
/// Seeds are derived per point (`seed + index`) so the whole sweep is
/// reproducible. `examples/noisy_teleportation.rs` drives this across
/// backends.
pub fn teleport_fidelity_sweep(
    kind: BackendKind,
    rates: &[f64],
    ranks: usize,
    trials: u32,
    seed: u64,
) -> Vec<FidelityPoint> {
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let noise = NoiseModel::epr_only(NoiseChannel::Depolarizing { p: rate });
            let fidelity = teleport_fidelity(kind, noise, ranks, trials, seed + i as u64);
            FidelityPoint {
                rate,
                trials,
                successes: (fidelity * f64::from(trials)).round() as u32,
                fidelity,
                analytic: analytic_teleport_fidelity(&noise, ranks - 1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_chain_is_perfect() {
        for kind in [BackendKind::StateVector, BackendKind::Stabilizer] {
            let f = teleport_fidelity(kind, NoiseModel::ideal(), 3, 20, 5);
            assert_eq!(f, 1.0, "{kind}");
        }
    }

    #[test]
    fn analytic_limits() {
        let ideal = NoiseModel::ideal();
        assert_eq!(analytic_teleport_fidelity(&ideal, 4), 1.0);
        // Dephasing never flips a Z-basis bit.
        let deph = NoiseModel::epr_only(NoiseChannel::Dephasing { p: 0.4 });
        assert_eq!(analytic_teleport_fidelity(&deph, 3), 1.0);
        // Fully depolarized halves: q = 2/3, flip/hop = 2*(2/3)*(1/3) = 4/9.
        let dep = NoiseModel::epr_only(NoiseChannel::Depolarizing { p: 1.0 });
        let f = analytic_teleport_fidelity(&dep, 1);
        assert!((f - (1.0 - 4.0 / 9.0)).abs() < 1e-12);
        // Many hops converge to a coin flip.
        let f = analytic_teleport_fidelity(&dep, 50);
        assert!((f - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sweep_is_monotone_in_rate_analytically() {
        let pts = teleport_fidelity_sweep(BackendKind::Stabilizer, &[0.0, 0.1, 0.3], 2, 200, 9);
        assert_eq!(pts[0].fidelity, 1.0, "zero rate must be perfect");
        assert!(pts[0].analytic > pts[1].analytic);
        assert!(pts[1].analytic > pts[2].analytic);
    }
}
