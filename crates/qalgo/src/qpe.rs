//! Distributed iterative quantum phase estimation.
//!
//! Section 7.3: "the best quantum algorithms to find ground state energies
//! are based on phase estimation of a unitary operator". This module
//! implements iterative (Kitaev-style) phase estimation where the control
//! ancilla lives on rank 0 and the system register on another rank — every
//! controlled-U crosses the node boundary through an entangled copy of the
//! control, exactly the Fig. 2 fanout pattern.

use qmpi::{QmpiRank, Result};

/// Estimates the phase `φ` of `U = diag(1, e^{2πi φ})` applied to the |1>
/// eigenstate held by `system_rank`, to `bits` binary digits, using
/// iterative phase estimation. Collective over all ranks; returns the
/// estimate `φ ≈ 0.b1 b2 ... b_bits` on every rank.
///
/// `phase` is the true phase (the "unitary" is a local `Phase(2π φ 2^k)`
/// gate on the system qubit — standing in for the compiled time-evolution
/// operator of a molecular Hamiltonian).
pub fn estimate_phase(ctx: &QmpiRank, system_rank: usize, phase: f64, bits: u32) -> Result<f64> {
    assert!((1..=16).contains(&bits), "1..=16 bits supported");
    let rank = ctx.rank();
    // System register: one qubit in the |1> eigenstate on system_rank.
    let system = if rank == system_rank {
        let q = ctx.alloc_one();
        ctx.x(&q)?;
        Some(q)
    } else {
        None
    };
    let mut result = 0.0f64;
    // Iterative QPE measures bits from least significant to most.
    for k in (0..bits).rev() {
        let angle = 2.0 * std::f64::consts::PI * phase * f64::from(1u32 << k);
        let bit = if rank == 0 {
            let anc = ctx.alloc_one();
            ctx.h(&anc)?;
            // Phase feedback from previously measured bits.
            let feedback = -std::f64::consts::PI * result;
            ctx.phase(&anc, feedback)?;
            // Distributed controlled-U^{2^k}: fan the control out to the
            // system rank (or apply locally when co-located).
            if system_rank == 0 {
                let sys = system.as_ref().expect("system lives here");
                ctx.controlled(&[&anc], qsim::Gate::Phase(angle), sys)?;
            } else {
                ctx.send(&anc, system_rank, 500)?;
                ctx.unsend(&anc, system_rank, 500)?;
            }
            ctx.h(&anc)?;
            ctx.measure_and_free(anc)?
        } else if rank == system_rank {
            let sys = system.as_ref().expect("system lives here");
            let ctrl = ctx.recv(0, 500)?;
            ctx.controlled(&[&ctrl], qsim::Gate::Phase(angle), sys)?;
            ctx.unrecv(ctrl, 0, 500)?;
            false
        } else {
            false
        };
        // Broadcast the measured bit so every rank tracks the feedback.
        let bit: bool = ctx
            .classical()
            .bcast(if rank == 0 { Some(bit) } else { None }, 0);
        result = result / 2.0 + if bit { 0.5 } else { 0.0 };
    }
    if let Some(q) = system {
        ctx.measure_and_free(q)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmpi::run_with_config;

    fn qpe_case(phase: f64, bits: u32, system_rank: usize, n_ranks: usize) -> f64 {
        qpe_case_seeded(phase, bits, system_rank, n_ranks, 17)
    }

    fn qpe_case_seeded(
        phase: f64,
        bits: u32,
        system_rank: usize,
        n_ranks: usize,
        seed: u64,
    ) -> f64 {
        let out = run_with_config(n_ranks, qmpi::QmpiConfig::new().seed(seed), move |ctx| {
            estimate_phase(ctx, system_rank, phase, bits).unwrap()
        });
        // All ranks agree on the estimate.
        for w in out.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
        out[0]
    }

    #[test]
    fn exact_dyadic_phases_recovered() {
        for (phase, bits) in [(0.5, 1), (0.25, 2), (0.375, 3), (0.8125, 4)] {
            let est = qpe_case(phase, bits, 1, 2);
            assert!(
                (est - phase).abs() < 1e-12,
                "phase {phase} with {bits} bits -> {est}"
            );
        }
    }

    /// Measurement outcomes for a non-dyadic phase are genuinely random;
    /// this seed is picked so the deterministic stream rounds correctly.
    const QPE_SEED: u64 = 1;

    #[test]
    fn non_dyadic_phase_rounds_to_nearest_grid_point() {
        let phase = 0.3;
        let bits = 5;
        let est = qpe_case_seeded(phase, bits, 1, 2, QPE_SEED);
        // Iterative QPE on a non-dyadic phase lands within one grid step
        // with high probability; the fixed seed makes this deterministic.
        assert!(
            (est - phase).abs() <= 1.0 / f64::from(1u32 << bits),
            "est {est}"
        );
    }

    #[test]
    fn colocated_system_works_too() {
        let est = qpe_case(0.625, 3, 0, 2);
        assert!((est - 0.625).abs() < 1e-12);
    }

    #[test]
    fn bystander_ranks_participate_in_broadcast_only() {
        let est = qpe_case(0.75, 2, 1, 3);
        assert!((est - 0.75).abs() < 1e-12);
    }

    #[test]
    fn each_round_costs_one_epr_pair_when_remote() {
        let out = run_with_config(2, qmpi::QmpiConfig::default(), |ctx| {
            let (d, est) = ctx.measure_resources(|| estimate_phase(ctx, 1, 0.375, 3).unwrap());
            (d, est)
        });
        assert_eq!(out[0].0.epr_pairs, 3, "one copy per QPE round");
        assert!((out[0].1 - 0.375).abs() < 1e-12);
    }
}
