//! The three distributed implementations of `exp(-i t Z⊗Z⊗...⊗Z)` from
//! Fig. 6 of the paper, under the Section 7.3 assumption that each involved
//! qubit lives on a different rank:
//!
//! * [`in_place`] (Fig. 6a): binary fan-in tree of distributed CNOTs,
//!   rotation at the tree root, mirrored fan-out — `2(k-1)` EPR pairs,
//!   delay `2E⌈log₂k⌉ + D_R`.
//! * [`out_of_place`] (Fig. 6b): serial distributed CNOTs into an ancilla,
//!   uncompute via X-measurement + classical `Z⊗k` fixup — `k-1` EPR pairs
//!   here (ancilla co-located with one qubit), delay `Ek + D_R`.
//! * [`constant_depth`] (Fig. 6c): cat state over the ranks, local CZs,
//!   X-basis merges, rotation on the phase-encoded ancilla — `k-1` pairs
//!   (co-located ancilla), delay `2E + D_R`.
//!
//! All three are *collective*: every rank passes its data qubit and the
//! same angle. The tests verify all three produce identical states.

use crate::gadgets::{remote_cnot_control, remote_cnot_target};
use qmpi::{QmpiRank, Qubit, Result};

/// Fig. 6(a): in-place binary-tree parity, rotation on rank 0.
pub fn in_place(ctx: &QmpiRank, qubit: &Qubit, theta: f64) -> Result<()> {
    let k = ctx.size();
    let rank = ctx.rank();
    // Fan-in: at stride s, rank i+s CNOTs its parity into rank i
    // (for i % 2s == 0). After the loop rank 0 holds the full parity.
    let mut s = 1usize;
    let mut levels = Vec::new();
    while s < k {
        levels.push(s);
        s *= 2;
    }
    for (lvl, &s) in levels.iter().enumerate() {
        let tag = 100 + lvl as u16;
        if rank.is_multiple_of(2 * s) && rank + s < k {
            remote_cnot_target(ctx, qubit, rank + s, tag)?;
        } else if rank % (2 * s) == s {
            remote_cnot_control(ctx, qubit, rank - s, tag)?;
        }
    }
    if rank == 0 {
        ctx.rz(qubit, theta)?;
    }
    // Fan-out (uncompute) in reverse order.
    for (lvl, &s) in levels.iter().enumerate().rev() {
        let tag = 200 + lvl as u16;
        if rank.is_multiple_of(2 * s) && rank + s < k {
            remote_cnot_target(ctx, qubit, rank + s, tag)?;
        } else if rank % (2 * s) == s {
            remote_cnot_control(ctx, qubit, rank - s, tag)?;
        }
    }
    Ok(())
}

/// Fig. 6(b): out-of-place parity into an ancilla on rank 0, serial
/// distributed CNOTs, classical-only uncompute (X measurement + `Z⊗k`).
pub fn out_of_place(ctx: &QmpiRank, qubit: &Qubit, theta: f64) -> Result<()> {
    let k = ctx.size();
    let rank = ctx.rank();
    if rank == 0 {
        let aux = ctx.alloc_one();
        // Own qubit folds in locally; the rest arrive serially.
        ctx.cnot(qubit, &aux)?;
        for src in 1..k {
            remote_cnot_target(ctx, &aux, src, 300)?;
        }
        ctx.rz(&aux, theta)?;
        // Deferred-measurement uncompute (Fig. 1b generalized): X-basis
        // measurement; on outcome 1 every rank applies Z to its data qubit.
        ctx.h(&aux)?;
        let m = ctx.measure_and_free(aux)?;
        ctx.ledger().record_classical(k as u64 - 1);
        let m: bool = ctx.classical().bcast(Some(m), 0);
        if m {
            ctx.z(qubit)?;
        }
    } else {
        remote_cnot_control(ctx, qubit, 0, 300)?;
        let m: bool = ctx.classical().bcast(None, 0);
        if m {
            ctx.z(qubit)?;
        }
    }
    Ok(())
}

/// Fig. 6(c): constant-depth implementation via a cat state.
///
/// Protocol: (1) establish `|cat(k)>` with one share per rank (rank 0's
/// share doubles as the rotation ancilla — the Fig. 7 co-location
/// assumption); (2) each rank applies a local CZ between its data qubit and
/// its share, imprinting the global parity on the cat's relative phase;
/// (3) ranks > 0 merge their shares into rank 0's by X-basis measurement +
/// a classical XOR of outcomes (Z fixup on rank 0's share); (4) rank 0
/// converts phase to value with H, rotates, converts back, and the final
/// X-basis measurement outcome selects a classical `Z⊗k` fixup.
pub fn constant_depth(ctx: &QmpiRank, qubit: &Qubit, theta: f64) -> Result<()> {
    let rank = ctx.rank();
    let share = ctx.cat_establish()?;
    // (2) Imprint parity on the cat phase.
    ctx.cz(qubit, &share)?;
    // (3) Merge shares into rank 0.
    let (my_bit, root_share) = if rank != 0 {
        ctx.h(&share)?;
        let m = ctx.measure_and_free(share)?;
        ctx.ledger().record_classical(1);
        (m, None)
    } else {
        (false, Some(share))
    };
    let parity = ctx.classical().reduce(my_bit as u8, &cmpi::ops::bxor, 0);
    if rank == 0 {
        let share = root_share.expect("rank 0 keeps its share");
        if parity.expect("root reduction") & 1 != 0 {
            ctx.z(&share)?;
        }
        // (4) Phase -> value, rotate, value -> phase.
        ctx.h(&share)?;
        ctx.rz(&share, theta)?;
        ctx.h(&share)?;
        let m = ctx.measure_and_free(share)?;
        ctx.ledger().record_classical(ctx.size() as u64 - 1);
        let m: bool = ctx.classical().bcast(Some(m), 0);
        if m {
            ctx.z(qubit)?;
        }
    } else {
        let m: bool = ctx.classical().bcast(None, 0);
        if m {
            ctx.z(qubit)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmpi::{run_with_config, QmpiConfig};
    use qsim::{Gate, QubitId, Simulator};

    /// Dense reference: exp(-i theta/2 Z^{⊗k}) applied to a product of
    /// Ry(angles) states, via parity-compute + Rz + uncompute.
    fn reference_state(angles: &[f64], theta: f64) -> qsim::State {
        let mut sim = Simulator::new(0);
        let qs: Vec<QubitId> = sim.alloc_n(angles.len());
        for (q, &a) in qs.iter().zip(angles) {
            sim.apply(Gate::Ry(a), *q).unwrap();
        }
        for i in 1..qs.len() {
            sim.cnot(qs[i], qs[0]).unwrap();
        }
        sim.apply(Gate::Rz(theta), qs[0]).unwrap();
        for i in (1..qs.len()).rev() {
            sim.cnot(qs[i], qs[0]).unwrap();
        }
        sim.state_vector(&qs).unwrap()
    }

    fn run_method(
        method: fn(&QmpiRank, &Qubit, f64) -> qmpi::Result<()>,
        k: usize,
        theta: f64,
        seed: u64,
    ) -> f64 {
        let angles: Vec<f64> = (0..k).map(|i| 0.4 + 0.3 * i as f64).collect();
        let angles2 = angles.clone();
        let out = run_with_config(k, QmpiConfig::new().seed(seed), move |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, angles2[ctx.rank()]).unwrap();
            method(ctx, &q, theta).unwrap();
            ctx.barrier();
            let ids: Vec<u64> = vec![q.id().0];
            let gathered = ctx.classical().gather(&ids, 0);
            let f = if ctx.rank() == 0 {
                let all: Vec<QubitId> = gathered
                    .unwrap()
                    .into_iter()
                    .flatten()
                    .map(QubitId)
                    .collect();
                let state = ctx.backend().state_vector(&all).unwrap();
                state.fidelity(&reference_state(&angles2, theta))
            } else {
                1.0
            };
            ctx.barrier();
            ctx.measure_and_free(q).unwrap();
            f
        });
        out[0]
    }

    const TOL: f64 = 1e-8;

    #[test]
    fn in_place_matches_reference() {
        for k in [2usize, 3, 4, 5] {
            let f = run_method(in_place, k, 0.9, 11);
            assert!((f - 1.0).abs() < TOL, "k={k}: fidelity {f}");
        }
    }

    #[test]
    fn out_of_place_matches_reference() {
        for k in [2usize, 3, 4] {
            for seed in [1u64, 2, 3] {
                let f = run_method(out_of_place, k, 1.3, seed);
                assert!((f - 1.0).abs() < TOL, "k={k} seed={seed}: fidelity {f}");
            }
        }
    }

    #[test]
    fn constant_depth_matches_reference() {
        for k in [2usize, 3, 4, 5] {
            for seed in [1u64, 7] {
                let f = run_method(constant_depth, k, 0.7, seed);
                assert!((f - 1.0).abs() < TOL, "k={k} seed={seed}: fidelity {f}");
            }
        }
    }

    #[test]
    fn epr_counts_match_section_7_3() {
        // k = 4: in-place 2(k-1) = 6; out-of-place (co-located aux) k-1 = 3;
        // constant depth (co-located aux) k-1 = 3.
        let k = 4;
        type Method = fn(&QmpiRank, &Qubit, f64) -> qmpi::Result<()>;
        let cases: [(Method, u64); 3] = [(in_place, 6), (out_of_place, 3), (constant_depth, 3)];
        for (method, expect) in cases {
            let out = run_with_config(k, QmpiConfig::default(), move |ctx| {
                let q = ctx.alloc_one();
                let (d, ()) = ctx.measure_resources(|| {
                    method(ctx, &q, 0.5).unwrap();
                });
                ctx.measure_and_free(q).unwrap();
                d
            });
            assert_eq!(out[0].epr_pairs, expect, "method EPR count");
        }
    }

    #[test]
    fn methods_compose_identically_on_same_state() {
        // Applying in_place(theta) then constant_depth(-theta) must return
        // to the initial state.
        let k = 3;
        let out = run_with_config(k, QmpiConfig::default(), |ctx| {
            let q = ctx.alloc_one();
            ctx.ry(&q, 1.0).unwrap();
            let z0 = ctx.expectation(&[(&q, qsim::Pauli::Z)]).unwrap();
            let x0 = ctx.expectation(&[(&q, qsim::Pauli::X)]).unwrap();
            in_place(ctx, &q, 0.8).unwrap();
            constant_depth(ctx, &q, -0.8).unwrap();
            let z1 = ctx.expectation(&[(&q, qsim::Pauli::Z)]).unwrap();
            let x1 = ctx.expectation(&[(&q, qsim::Pauli::X)]).unwrap();
            ctx.measure_and_free(q).unwrap();
            (z0 - z1).abs() < TOL && (x0 - x1).abs() < TOL
        });
        assert!(out.iter().all(|&ok| ok));
    }
}
