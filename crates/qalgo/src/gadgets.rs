//! Distributed gate gadgets built from QMPI point-to-point primitives.
//!
//! The fundamental non-local operation of Section 3: a CNOT whose control
//! and target live on different nodes, realized as entangled-copy fanout
//! (Fig. 3a) + local CNOT + uncopy (Fig. 1b) — 1 EPR pair and 2 classical
//! bits per gate.

use qmpi::{QTag, QmpiRank, Qubit, Result};

/// Control side of a distributed CNOT: fans the control out to
/// `target_rank`, waits for the peer to apply its local CNOT, and uncopies.
/// The peer must call [`remote_cnot_target`] with the same tag.
pub fn remote_cnot_control(
    ctx: &QmpiRank,
    control: &Qubit,
    target_rank: usize,
    tag: QTag,
) -> Result<()> {
    ctx.send(control, target_rank, tag)?;
    ctx.unsend(control, target_rank, tag)
}

/// Target side of a distributed CNOT: receives the control copy, applies
/// the local CNOT onto `target`, and uncopies the control.
pub fn remote_cnot_target(
    ctx: &QmpiRank,
    target: &Qubit,
    control_rank: usize,
    tag: QTag,
) -> Result<()> {
    let copy = ctx.recv(control_rank, tag)?;
    ctx.cnot(&copy, target)?;
    ctx.unrecv(copy, control_rank, tag)
}

/// Control side of a distributed CZ (symmetric, so either side may play
/// "control").
pub fn remote_cz_control(
    ctx: &QmpiRank,
    control: &Qubit,
    target_rank: usize,
    tag: QTag,
) -> Result<()> {
    ctx.send(control, target_rank, tag)?;
    ctx.unsend(control, target_rank, tag)
}

/// Target side of a distributed CZ.
pub fn remote_cz_target(
    ctx: &QmpiRank,
    target: &Qubit,
    control_rank: usize,
    tag: QTag,
) -> Result<()> {
    let copy = ctx.recv(control_rank, tag)?;
    ctx.cz(&copy, target)?;
    ctx.unrecv(copy, control_rank, tag)
}

/// Applies `exp(-i theta/2 Z⊗Z)` between a local qubit and a remote one:
/// the remote side runs [`zz_rotation_remote`], which holds the rotation
/// qubit. Uses the Listing 1 pattern: copy, local parity + Rz + parity,
/// uncopy.
pub fn zz_rotation_local(ctx: &QmpiRank, qubit: &Qubit, peer: usize, tag: QTag) -> Result<()> {
    ctx.send(qubit, peer, tag)?;
    ctx.unsend(qubit, peer, tag)
}

/// Peer side of [`zz_rotation_local`]: receives the copy, computes the
/// parity with its own qubit, rotates, uncomputes.
pub fn zz_rotation_remote(
    ctx: &QmpiRank,
    qubit: &Qubit,
    theta: f64,
    peer: usize,
    tag: QTag,
) -> Result<()> {
    let copy = ctx.recv(peer, tag)?;
    ctx.cnot(qubit, &copy)?;
    ctx.rz(&copy, theta)?;
    ctx.cnot(qubit, &copy)?;
    ctx.unrecv(copy, peer, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmpi::run;
    use qsim::Pauli;

    const TOL: f64 = 1e-9;

    #[test]
    fn remote_cnot_entangles() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                let c = ctx.alloc_one();
                ctx.h(&c).unwrap();
                remote_cnot_control(ctx, &c, 1, 7).unwrap();
                ctx.barrier();
                let m = ctx.measure(&c).unwrap();
                ctx.classical().send(&m, 1, 0);
                ctx.measure_and_free(c).unwrap();
                m
            } else {
                let t = ctx.alloc_one();
                remote_cnot_target(ctx, &t, 0, 7).unwrap();
                ctx.barrier();
                let m = ctx.measure(&t).unwrap();
                let (mc, _) = ctx.classical().recv::<bool>(0, 0);
                ctx.measure_and_free(t).unwrap();
                assert_eq!(m, mc, "CNOT from |+> control correlates the qubits");
                m
            }
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn remote_cnot_truth_table() {
        for control_set in [false, true] {
            let out = run(2, move |ctx| {
                if ctx.rank() == 0 {
                    let c = ctx.alloc_one();
                    if control_set {
                        ctx.x(&c).unwrap();
                    }
                    remote_cnot_control(ctx, &c, 1, 1).unwrap();
                    let m = ctx.measure(&c).unwrap();
                    ctx.measure_and_free(c).unwrap();
                    m
                } else {
                    let t = ctx.alloc_one();
                    remote_cnot_target(ctx, &t, 0, 1).unwrap();
                    let m = ctx.measure(&t).unwrap();
                    ctx.measure_and_free(t).unwrap();
                    m
                }
            });
            assert_eq!(out[0], control_set, "control unchanged");
            assert_eq!(out[1], control_set, "target flipped iff control set");
        }
    }

    #[test]
    fn remote_cz_phase() {
        // CZ on |+>|+> then H on target gives |+>|0>... verify through
        // expectations instead: <X0 X1> after CZ |++> is 0, <Z0 Z1> is 0,
        // and the state is the graph state with <X0 Z1> = 1.
        let out = run(2, |ctx| {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            if ctx.rank() == 0 {
                remote_cz_control(ctx, &q, 1, 2).unwrap();
            } else {
                remote_cz_target(ctx, &q, 0, 2).unwrap();
            }
            ctx.barrier();
            // Graph-state stabilizer check from rank 0's perspective is a
            // global measurement; approximate locally: each rank verifies
            // its marginal is maximally mixed (<X> = <Z> = 0).
            let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
            let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
            ctx.barrier();
            ctx.measure_and_free(q).unwrap();
            (x, z)
        });
        for (x, z) in out {
            assert!(x.abs() < TOL && z.abs() < TOL);
        }
    }

    #[test]
    fn zz_rotation_matches_dense_reference() {
        let theta = 0.83;
        let out = run(2, move |ctx| {
            let q = ctx.alloc_one();
            ctx.h(&q).unwrap();
            if ctx.rank() == 0 {
                zz_rotation_local(ctx, &q, 1, 3).unwrap();
            } else {
                zz_rotation_remote(ctx, &q, theta, 0, 3).unwrap();
            }
            ctx.barrier();
            // exp(-i theta/2 ZZ) on |++>: <XX> = cos(theta).
            let out = if ctx.rank() == 0 {
                ctx.barrier();
                0.0
            } else {
                // Rank 1 cannot measure X0 X1 locally; rank 0's qubit is
                // remote. Use the backend diagnostic via rank 0 instead.
                ctx.barrier();
                0.0
            };
            ctx.measure_and_free(q).unwrap();
            out
        });
        // The state-level check lives in the integration tests where the
        // global snapshot API is exercised; here we only verify the
        // protocol completes cleanly on both ranks.
        assert_eq!(out.len(), 2);
    }
}
