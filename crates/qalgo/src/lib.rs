//! # qalgo — distributed quantum algorithms on QMPI
//!
//! The applications of the paper's Section 7, implemented against the QMPI
//! API and validated against dense single-process references:
//!
//! * [`tfim`] — transverse-field Ising model time evolution and annealing
//!   (Listing 1), with a conflict-free boundary-exchange schedule that also
//!   handles odd ring sizes;
//! * [`parity`] — the three implementations of `exp(-it Z⊗...⊗Z)` from
//!   Fig. 6 (in-place tree, out-of-place ancilla, constant-depth cat);
//! * [`maxcut`] — adiabatic MaxCut optimization (the Section 7.2
//!   motivation);
//! * [`gadgets`] — distributed CNOT/CZ/ZZ-rotation building blocks;
//! * [`fidelity`] — teleportation-fidelity-vs-noise sweeps over an
//!   imperfect interconnect, with closed-form cross-checks.

pub mod fidelity;
pub mod gadgets;
pub mod maxcut;
pub mod parity;
pub mod qpe;
pub mod tfim;

pub use fidelity::{analytic_teleport_fidelity, teleport_fidelity, teleport_fidelity_sweep};
pub use maxcut::Graph;
pub use tfim::TfimParams;
