//! Classical collective operations (the MPI collectives QMPI builds on).
//!
//! Algorithms follow standard MPI implementations: dissemination barrier,
//! binomial-tree broadcast and reduce, direct gather/scatter/alltoall, and a
//! Hillis-Steele style logarithmic scan/exscan (after Sanders & Träff, the
//! reference the paper cites for the classical `MPI_Exscan` used by the
//! cat-state fixup in Section 7.1).

use crate::comm::Communicator;
use crate::encode::{Decode, Encode};
use crate::mailbox::Tag;

/// A binary reduction operator. Must be associative (like MPI ops);
/// commutativity is *not* required — all algorithms combine in rank order.
pub trait ReduceOp<T> {
    /// Combines two partial results, `lo` covering lower ranks than `hi`.
    fn combine(&self, lo: &T, hi: &T) -> T;
}

impl<T, F: Fn(&T, &T) -> T> ReduceOp<T> for F {
    fn combine(&self, lo: &T, hi: &T) -> T {
        self(lo, hi)
    }
}

/// Ready-made reduction operators for common types.
pub mod ops {
    /// Sum of two values.
    pub fn sum<T: std::ops::Add<Output = T> + Copy>(a: &T, b: &T) -> T {
        *a + *b
    }
    /// Maximum of two values.
    pub fn max<T: PartialOrd + Copy>(a: &T, b: &T) -> T {
        if *b > *a {
            *b
        } else {
            *a
        }
    }
    /// Minimum of two values.
    pub fn min<T: PartialOrd + Copy>(a: &T, b: &T) -> T {
        if *b < *a {
            *b
        } else {
            *a
        }
    }
    /// Bitwise XOR — the classical analogue of QMPI_PARITY.
    pub fn bxor<T: std::ops::BitXor<Output = T> + Copy>(a: &T, b: &T) -> T {
        *a ^ *b
    }
    /// Logical AND.
    pub fn land(a: &bool, b: &bool) -> bool {
        *a && *b
    }
    /// Logical OR.
    pub fn lor(a: &bool, b: &bool) -> bool {
        *a || *b
    }
}

impl Communicator {
    /// Synchronizes all ranks (MPI_Barrier), dissemination algorithm:
    /// ⌈log₂ n⌉ rounds of shifted token exchange.
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        let n = self.size();
        if n == 1 {
            return;
        }
        let mut dist = 1;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.coll_send(&(), to, tag);
            let _: () = self.coll_recv(from, tag);
            dist *= 2;
        }
    }

    /// Broadcasts `value` from `root` to all ranks (MPI_Bcast),
    /// binomial tree: ⌈log₂ n⌉ rounds.
    pub fn bcast<T: Encode + Decode + Clone>(&self, value: Option<T>, root: usize) -> T {
        let tag = self.next_coll_tag();
        let n = self.size();
        let vrank = (self.rank() + n - root) % n; // virtual rank, root -> 0
        let mut current: Option<T> = if self.rank() == root {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        // Round k: ranks with vrank < 2^k send to vrank + 2^k.
        let mut step = 1;
        while step < n {
            if vrank < step {
                let dst_v = vrank + step;
                if dst_v < n {
                    let dst = (dst_v + root) % n;
                    self.coll_send(current.as_ref().expect("value present"), dst, tag);
                }
            } else if vrank < 2 * step && current.is_none() {
                let src = (vrank - step + root) % n;
                current = Some(self.coll_recv(src, tag));
            }
            step *= 2;
        }
        current.expect("broadcast value delivered")
    }

    /// Gathers one value per rank at `root` (MPI_Gather). Returns
    /// `Some(values_in_rank_order)` at the root, `None` elsewhere.
    pub fn gather<T: Encode + Decode>(&self, value: &T, root: usize) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            #[allow(clippy::needless_range_loop)] // skip-one fill of out[r]
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                out[r] = Some(self.coll_recv(r, tag));
            }
            let mut result = Vec::with_capacity(self.size());
            for (r, slot) in out.into_iter().enumerate() {
                if r == root {
                    result.push(
                        crate::encode::from_bytes(&crate::encode::to_bytes(value))
                            .expect("self roundtrip"),
                    );
                } else {
                    result.push(slot.expect("gathered"));
                }
            }
            Some(result)
        } else {
            self.coll_send(value, root, tag);
            None
        }
    }

    /// Scatters one value per rank from `root` (MPI_Scatter). The root
    /// passes `Some(values)` with exactly `size()` entries.
    pub fn scatter<T: Encode + Decode>(&self, values: Option<Vec<T>>, root: usize) -> T {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(
                values.len(),
                self.size(),
                "scatter needs one value per rank"
            );
            let mut own: Option<T> = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    own = Some(v);
                } else {
                    self.coll_send(&v, r, tag);
                }
            }
            own.expect("own scatter element")
        } else {
            self.coll_recv(root, tag)
        }
    }

    /// All ranks obtain every rank's value, in rank order (MPI_Allgather).
    pub fn allgather<T: Encode + Decode + Clone>(&self, value: &T) -> Vec<T> {
        // Gather at 0, then broadcast. (Ring allgather would also work; this
        // keeps the combining order obvious.)
        let gathered = self.gather(value, 0);
        self.bcast(gathered, 0)
    }

    /// Personalized all-to-all exchange (MPI_Alltoall): `values[r]` goes to
    /// rank `r`; the result's entry `r` came from rank `r`.
    pub fn alltoall<T: Encode + Decode>(&self, values: Vec<T>) -> Vec<T> {
        let tag = self.next_coll_tag();
        let n = self.size();
        assert_eq!(values.len(), n, "alltoall needs one value per rank");
        let mut own: Option<T> = None;
        for (r, v) in values.into_iter().enumerate() {
            if r == self.rank() {
                own = Some(v);
            } else {
                self.coll_send(&v, r, tag);
            }
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[self.rank()] = own;
        #[allow(clippy::needless_range_loop)] // skip-one fill of out[r]
        for r in 0..n {
            if r == self.rank() {
                continue;
            }
            out[r] = Some(self.coll_recv(r, tag));
        }
        out.into_iter().map(|v| v.expect("alltoall slot")).collect()
    }

    /// Reduces all ranks' values to the root in rank order (MPI_Reduce),
    /// binomial tree: combine(lo_ranks, hi_ranks) at every merge, so
    /// non-commutative (but associative) operators are safe.
    pub fn reduce<T, O>(&self, value: T, op: &O, root: usize) -> Option<T>
    where
        T: Encode + Decode,
        O: ReduceOp<T>,
    {
        let tag = self.next_coll_tag();
        let n = self.size();
        let vrank = (self.rank() + n - root) % n;
        let mut acc = value;
        let mut step = 1;
        while step < n {
            if vrank.is_multiple_of(2 * step) {
                let src_v = vrank + step;
                if src_v < n {
                    let src = (src_v + root) % n;
                    let theirs: T = self.coll_recv(src, tag);
                    acc = op.combine(&acc, &theirs);
                }
            } else if vrank % (2 * step) == step {
                let dst = ((vrank - step) + root) % n;
                self.coll_send(&acc, dst, tag);
                // This rank's participation ends; drain remaining rounds.
                return None;
            }
            step *= 2;
        }
        if self.rank() == root {
            Some(acc)
        } else {
            None
        }
    }

    /// Reduce + broadcast (MPI_Allreduce).
    pub fn allreduce<T, O>(&self, value: T, op: &O) -> T
    where
        T: Encode + Decode + Clone,
        O: ReduceOp<T>,
    {
        let reduced = self.reduce(value, op, 0);
        self.bcast(reduced, 0)
    }

    /// Inclusive prefix reduction (MPI_Scan): rank r obtains
    /// `op(v_0, ..., v_r)`. Hillis-Steele doubling, rank-ordered combines.
    pub fn scan<T, O>(&self, value: T, op: &O) -> T
    where
        T: Encode + Decode + Clone,
        O: ReduceOp<T>,
    {
        let tag = self.next_coll_tag();
        let n = self.size();
        let r = self.rank();
        // `prefix` = combined value of ranks [r - covered + 1 ..= r].
        let mut prefix = value;
        let mut covered = 1usize;
        let mut dist = 1usize;
        while dist < n {
            // Send current prefix to rank + dist, receive from rank - dist.
            if r + dist < n {
                self.coll_send(&prefix, r + dist, tag);
            }
            if r >= dist {
                let theirs: T = self.coll_recv(r - dist, tag);
                prefix = op.combine(&theirs, &prefix);
                covered += dist.min(r - dist + 1);
            }
            dist *= 2;
        }
        let _ = covered;
        prefix
    }

    /// Exclusive prefix reduction (MPI_Exscan): rank r obtains
    /// `op(v_0, ..., v_{r-1})`; rank 0 obtains `None`.
    /// This is the classical collective used to compute the cat-state
    /// fix-ups in Section 7.1.
    pub fn exscan<T, O>(&self, value: T, op: &O) -> Option<T>
    where
        T: Encode + Decode + Clone,
        O: ReduceOp<T>,
    {
        let tag = self.next_coll_tag();
        let n = self.size();
        let r = self.rank();
        // Shift-by-one then inclusive scan: rank r scans over v_{r-1}.
        if r + 1 < n {
            self.coll_send(&value, r + 1, tag);
        }
        let shifted: Option<T> = if r > 0 {
            Some(self.coll_recv(r - 1, tag))
        } else {
            None
        };
        // Inclusive scan over the shifted values on ranks 1..n.
        let tag2 = self.next_coll_tag();
        let mut prefix = shifted;
        let mut dist = 1usize;
        while dist < n {
            if r + dist < n {
                // Rank 0 has nothing to contribute; send a marker.
                self.coll_send(&prefix, r + dist, tag2);
            }
            if r >= dist {
                let theirs: Option<T> = self.coll_recv(r - dist, tag2);
                prefix = match (theirs, prefix) {
                    (Some(t), Some(p)) => Some(op.combine(&t, &p)),
                    (None, p) => p,
                    (t, None) => t,
                };
            }
            dist *= 2;
        }
        prefix
    }

    /// Reduce then scatter one block per rank (MPI_Reduce_scatter_block
    /// with one element per rank): entry `r` of the element-wise reduction
    /// lands on rank `r`.
    pub fn reduce_scatter_block<T, O>(&self, values: Vec<T>, op: &O) -> T
    where
        T: Encode + Decode + Clone,
        O: ReduceOp<T>,
    {
        assert_eq!(values.len(), self.size(), "one block per rank required");
        let combine_vec = |a: &Vec<T>, b: &Vec<T>| -> Vec<T> {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| op.combine(x, y))
                .collect()
        };
        let reduced = self.reduce(values, &combine_vec, 0);
        self.scatter(reduced, 0)
    }

    /// Variable-count gather (MPI_Gatherv): each rank contributes a vector,
    /// the root receives the concatenation in rank order.
    pub fn gatherv<T: Encode + Decode>(&self, values: Vec<T>, root: usize) -> Option<Vec<Vec<T>>> {
        self.gather(&values, root)
    }

    /// Variable-count scatter (MPI_Scatterv).
    pub fn scatterv<T: Encode + Decode>(&self, values: Option<Vec<Vec<T>>>, root: usize) -> Vec<T> {
        self.scatter(values, root)
    }

    /// Reserves and returns a fresh collective tag; exposed so higher layers
    /// (QMPI) can run their own sub-protocols on the collective channel.
    pub fn reserve_coll_tag(&self) -> Tag {
        self.next_coll_tag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn barrier_completes() {
        for n in [1, 2, 3, 5, 8] {
            let out = Universe::run(n, |comm| {
                comm.barrier();
                comm.barrier();
                comm.rank()
            });
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1, 2, 3, 4, 7] {
            for root in 0..n {
                let out = Universe::run(n, move |comm| {
                    let v = if comm.rank() == root {
                        Some(99u32 + root as u32)
                    } else {
                        None
                    };
                    comm.bcast(v, root)
                });
                assert!(
                    out.iter().all(|&v| v == 99 + root as u32),
                    "n={n} root={root}"
                );
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(5, |comm| comm.gather(&(comm.rank() * 10), 2));
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(res.as_ref().unwrap(), &vec![0, 10, 20, 30, 40]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes() {
        let out = Universe::run(4, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![100usize, 101, 102, 103])
            } else {
                None
            };
            comm.scatter(v, 0)
        });
        assert_eq!(out, vec![100, 101, 102, 103]);
    }

    #[test]
    fn allgather_everyone_sees_all() {
        let out = Universe::run(4, |comm| comm.allgather(&comm.rank()));
        for res in out {
            assert_eq!(res, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = Universe::run(3, |comm| {
            let values: Vec<usize> = (0..3).map(|dst| comm.rank() * 10 + dst).collect();
            comm.alltoall(values)
        });
        // out[r][s] == s*10 + r
        for (r, row) in out.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert_eq!(v, s * 10 + r);
            }
        }
    }

    #[test]
    fn reduce_sum_and_roots() {
        for root in 0..4 {
            let out = Universe::run(4, move |comm| {
                comm.reduce(comm.rank() as u64, &ops::sum, root)
            });
            for (r, res) in out.iter().enumerate() {
                if r == root {
                    assert_eq!(*res, Some(6));
                } else {
                    assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn reduce_respects_rank_order_for_noncommutative_op() {
        // String concatenation is associative but not commutative.
        let concat = |a: &String, b: &String| format!("{a}{b}");
        let out = Universe::run(5, move |comm| {
            comm.reduce(comm.rank().to_string(), &concat, 0)
        });
        assert_eq!(out[0].as_deref(), Some("01234"));
    }

    #[test]
    fn allreduce_xor() {
        let out = Universe::run(6, |comm| comm.allreduce(1u8 << comm.rank(), &ops::bxor));
        for v in out {
            assert_eq!(v, 0b111111);
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Universe::run(5, |comm| {
            comm.allreduce(comm.rank() as i64 * 3 - 4, &ops::max)
        });
        for v in out {
            assert_eq!(v, 8);
        }
    }

    #[test]
    fn scan_prefix_sums() {
        for n in [1, 2, 3, 4, 8] {
            let out = Universe::run(n, |comm| comm.scan(comm.rank() as u64 + 1, &ops::sum));
            for (r, v) in out.iter().enumerate() {
                let expect: u64 = (1..=(r as u64 + 1)).sum();
                assert_eq!(*v, expect, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn scan_respects_rank_order() {
        let concat = |a: &String, b: &String| format!("{a}{b}");
        let out = Universe::run(4, move |comm| comm.scan(comm.rank().to_string(), &concat));
        assert_eq!(out, vec!["0", "01", "012", "0123"]);
    }

    #[test]
    fn exscan_prefix_xor_matches_paper_usage() {
        // The Section 7.1 fixup: node k applies X^(r_1 xor ... xor r_{k-1}).
        for n in [2, 3, 5, 8] {
            let out = Universe::run(n, |comm| {
                let r = (comm.rank() % 2) as u8; // pretend parity outcomes
                comm.exscan(r, &ops::bxor)
            });
            let mut expect = Vec::new();
            let mut acc: Option<u8> = None;
            for r in 0..n {
                expect.push(acc);
                let v = (r % 2) as u8;
                acc = Some(acc.map_or(v, |a| a ^ v));
            }
            assert_eq!(out, expect, "n={n}");
        }
    }

    #[test]
    fn reduce_scatter_block_distributes_sums() {
        let out = Universe::run(3, |comm| {
            // values[r] = rank contribution to destination r.
            let values: Vec<u64> = (0..3).map(|dst| (comm.rank() + dst) as u64).collect();
            comm.reduce_scatter_block(values, &ops::sum)
        });
        // dest r receives sum over ranks s of (s + r) = (0+1+2) + 3r.
        assert_eq!(out, vec![3, 6, 9]);
    }

    #[test]
    fn gatherv_variable_lengths() {
        let out = Universe::run(3, |comm| {
            let mine: Vec<u32> = (0..comm.rank() as u32).collect();
            comm.gatherv(mine, 0)
        });
        assert_eq!(out[0].as_ref().unwrap(), &vec![vec![], vec![0], vec![0, 1]]);
    }

    #[test]
    fn scatterv_variable_lengths() {
        let out = Universe::run(3, |comm| {
            let v = if comm.rank() == 0 {
                Some(vec![vec![1u8], vec![2, 3], vec![4, 5, 6]])
            } else {
                None
            };
            comm.scatterv(v, 0)
        });
        assert_eq!(out, vec![vec![1], vec![2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // Interleave several collectives to exercise tag sequencing.
        let out = Universe::run(4, |comm| {
            let s = comm.allreduce(comm.rank() as u64, &ops::sum);
            comm.barrier();
            let g = comm.allgather(&s);
            let x = comm.scan(1u64, &ops::sum);
            (s, g, x)
        });
        for (r, (s, g, x)) in out.into_iter().enumerate() {
            assert_eq!(s, 6);
            assert_eq!(g, vec![6, 6, 6, 6]);
            assert_eq!(x, r as u64 + 1);
        }
    }
}
