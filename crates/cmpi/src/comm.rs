//! Communicators and point-to-point operations.
//!
//! A [`Communicator`] names an ordered group of ranks plus a private context
//! id, so traffic in different communicators can never match (as required by
//! MPI semantics). `QMPI_COMM_WORLD` from the paper corresponds to the world
//! communicator handed to each rank by [`crate::universe::Universe::run`].

use crate::encode::{from_bytes, to_bytes, Decode, Encode};
use crate::mailbox::{Envelope, Mailbox, SourceSel, Tag, TagSel};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared per-world state: one mailbox per world rank plus traffic counters.
pub struct World {
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
    next_context: AtomicU64,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl World {
    /// Creates the shared state for `n` ranks.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(World {
            mailboxes: (0..n).map(|_| Arc::new(Mailbox::new())).collect(),
            // Context 0/1 are reserved for the world communicator (p2p/coll).
            next_context: AtomicU64::new(2),
            messages_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        })
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// Total messages sent so far (all communicators).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far (all communicators).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    fn alloc_context_pair(&self) -> u64 {
        self.next_context.fetch_add(2, Ordering::Relaxed)
    }
}

/// Completion status of a receive (MPI_Status analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    /// Rank (within the communicator) that sent the message.
    pub source: usize,
    /// Tag the message was sent with.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// An ordered group of ranks with a private matching context.
pub struct Communicator {
    world: Arc<World>,
    /// Context id for point-to-point traffic.
    context: u64,
    /// Context id for collective traffic (context + 1).
    coll_context: u64,
    /// comm rank -> world rank.
    members: Arc<Vec<usize>>,
    /// This rank's position within `members`.
    rank: usize,
    /// Per-rank collective sequence number; identical across ranks because
    /// MPI requires collectives to be invoked in the same order on every rank.
    coll_seq: Cell<u32>,
}

impl Communicator {
    /// Builds the world communicator for `rank` over `world`.
    pub fn world(world: Arc<World>, rank: usize) -> Self {
        let n = world.size();
        Communicator {
            world,
            context: 0,
            coll_context: 1,
            members: Arc::new((0..n).collect()),
            rank,
            coll_seq: Cell::new(0),
        }
    }

    /// This rank's id within the communicator (MPI_Comm_rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator (MPI_Comm_size).
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The underlying shared world (for traffic statistics).
    pub fn world_handle(&self) -> &Arc<World> {
        &self.world
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    fn mailbox_of(&self, comm_rank: usize) -> &Mailbox {
        &self.world.mailboxes[self.members[comm_rank]]
    }

    fn deliver(&self, dest: usize, context: u64, tag: Tag, payload: bytes::Bytes) {
        assert!(
            dest < self.size(),
            "destination rank {dest} out of range (size {})",
            self.size()
        );
        self.world.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.world
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.mailbox_of(dest).push(Envelope {
            context,
            source: self.rank,
            tag,
            payload,
        });
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking send (buffered semantics; never deadlocks on its own).
    pub fn send<T: Encode + ?Sized>(&self, value: &T, dest: usize, tag: Tag) {
        self.deliver(dest, self.context, tag, to_bytes(value));
    }

    /// Blocking receive with wildcards; returns the value and its status.
    pub fn recv<T: Decode>(
        &self,
        source: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
    ) -> (T, Status) {
        let env = self.world.mailboxes[self.members[self.rank]].pop_matching(
            self.context,
            source.into(),
            tag.into(),
        );
        let status = Status {
            source: env.source,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        let value = from_bytes(&env.payload)
            .expect("message payload failed to decode: type mismatch between send and recv");
        (value, status)
    }

    /// Blocking receive with a deadline; `None` when no matching message
    /// arrives within `timeout`. This is the watchdog primitive used by
    /// long-lived shard workers and their controller: a peer that died or
    /// deadlocked turns into a diagnosable timeout instead of a CI hang.
    pub fn recv_timeout<T: Decode>(
        &self,
        source: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
        timeout: std::time::Duration,
    ) -> Option<(T, Status)> {
        let env = self.world.mailboxes[self.members[self.rank]].pop_matching_timeout(
            self.context,
            source.into(),
            tag.into(),
            timeout,
        )?;
        let status = Status {
            source: env.source,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        let value = from_bytes(&env.payload)
            .expect("message payload failed to decode: type mismatch between send and recv");
        Some((value, status))
    }

    /// Combined send+receive (MPI_Sendrecv): posts the send, then receives.
    pub fn sendrecv<S: Encode, R: Decode>(
        &self,
        send_value: &S,
        dest: usize,
        send_tag: Tag,
        source: impl Into<SourceSel>,
        recv_tag: impl Into<TagSel>,
    ) -> (R, Status) {
        self.send(send_value, dest, send_tag);
        self.recv(source, recv_tag)
    }

    /// Non-blocking send. With buffered delivery the operation completes
    /// immediately; a request is returned for symmetry with MPI.
    pub fn isend<T: Encode + ?Sized>(&self, value: &T, dest: usize, tag: Tag) -> SendRequest {
        self.send(value, dest, tag);
        SendRequest { _done: true }
    }

    /// Non-blocking receive; completes on [`RecvRequest::wait`] or a
    /// successful [`RecvRequest::test`].
    pub fn irecv<T: Decode>(
        &self,
        source: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
    ) -> RecvRequest<'_, T> {
        RecvRequest {
            comm: self,
            source: source.into(),
            tag: tag.into(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Non-destructively checks for a matching incoming message
    /// (MPI_Iprobe). Returns `(source, tag, bytes)`.
    pub fn iprobe(
        &self,
        source: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
    ) -> Option<(usize, Tag, usize)> {
        self.world.mailboxes[self.members[self.rank]].probe(self.context, source.into(), tag.into())
    }

    // ------------------------------------------------------------------
    // Collective plumbing (used by collectives.rs)
    // ------------------------------------------------------------------

    /// Starts a collective operation, returning its private tag.
    pub(crate) fn next_coll_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        seq
    }

    /// Sends on the collective context.
    pub(crate) fn coll_send<T: Encode + ?Sized>(&self, value: &T, dest: usize, tag: Tag) {
        self.deliver(dest, self.coll_context, tag, to_bytes(value));
    }

    /// Receives on the collective context.
    pub(crate) fn coll_recv<T: Decode>(&self, source: usize, tag: Tag) -> T {
        let env = self.world.mailboxes[self.members[self.rank]].pop_matching(
            self.coll_context,
            SourceSel::Rank(source),
            TagSel::Tag(tag),
        );
        from_bytes(&env.payload).expect("collective payload failed to decode")
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Duplicates the communicator with a fresh context (MPI_Comm_dup).
    /// Collective over all ranks.
    pub fn dup(&self) -> Communicator {
        let tag = self.next_coll_tag();
        let ctx = if self.rank == 0 {
            let ctx = self.world.alloc_context_pair();
            for r in 1..self.size() {
                self.coll_send(&ctx, r, tag);
            }
            ctx
        } else {
            self.coll_recv::<u64>(0, tag)
        };
        Communicator {
            world: Arc::clone(&self.world),
            context: ctx,
            coll_context: ctx + 1,
            members: Arc::clone(&self.members),
            rank: self.rank,
            coll_seq: Cell::new(0),
        }
    }

    /// Splits the communicator by `color`, ordering ranks by `(key, rank)`
    /// (MPI_Comm_split). Collective over all ranks. Returns `None` for
    /// ranks passing `color == None` (MPI_UNDEFINED).
    pub fn split(&self, color: Option<u64>, key: i64) -> Option<Communicator> {
        let tag = self.next_coll_tag();
        // Gather (color, key) from everyone at rank 0, which assigns contexts.
        let my_entry = (color.is_some(), color.unwrap_or(0), key);
        let assignments: Vec<(bool, u64, i64)> = if self.rank == 0 {
            let mut all = vec![my_entry];
            for r in 1..self.size() {
                let env = self.world.mailboxes[self.members[self.rank]].pop_matching(
                    self.coll_context,
                    SourceSel::Rank(r),
                    TagSel::Tag(tag),
                );
                all.push(from_bytes(&env.payload).expect("split payload"));
            }
            for r in 1..self.size() {
                self.coll_send(&all, r, tag);
            }
            all
        } else {
            self.coll_send(&my_entry, 0, tag);
            self.coll_recv(0, tag)
        };
        // Contexts per color: rank 0 allocates one pair per distinct color and
        // broadcasts the mapping.
        let mut colors: Vec<u64> = assignments
            .iter()
            .filter(|(some, _, _)| *some)
            .map(|(_, c, _)| *c)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        let tag2 = self.next_coll_tag();
        let contexts: Vec<u64> = if self.rank == 0 {
            let ctxs: Vec<u64> = colors
                .iter()
                .map(|_| self.world.alloc_context_pair())
                .collect();
            for r in 1..self.size() {
                self.coll_send(&ctxs, r, tag2);
            }
            ctxs
        } else {
            self.coll_recv(0, tag2)
        };
        let my_color = color?;
        let color_idx = colors.binary_search(&my_color).expect("own color present");
        let ctx = contexts[color_idx];
        // Build the new member list ordered by (key, old rank).
        let mut group: Vec<(i64, usize)> = assignments
            .iter()
            .enumerate()
            .filter(|(_, (some, c, _))| *some && *c == my_color)
            .map(|(r, (_, _, k))| (*k, r))
            .collect();
        group.sort_unstable();
        let members: Vec<usize> = group.iter().map(|&(_, r)| self.members[r]).collect();
        let new_rank = group
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("own rank in group");
        Some(Communicator {
            world: Arc::clone(&self.world),
            context: ctx,
            coll_context: ctx + 1,
            members: Arc::new(members),
            rank: new_rank,
            coll_seq: Cell::new(0),
        })
    }
}

/// Handle for a non-blocking send (always complete under buffered delivery).
#[derive(Debug)]
pub struct SendRequest {
    _done: bool,
}

impl SendRequest {
    /// Blocks until the send completes (immediately).
    pub fn wait(self) {}

    /// Tests for completion (always true).
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle for a non-blocking receive.
pub struct RecvRequest<'a, T: Decode> {
    comm: &'a Communicator,
    source: SourceSel,
    tag: TagSel,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Decode> RecvRequest<'_, T> {
    /// Blocks until a matching message arrives.
    pub fn wait(self) -> (T, Status) {
        self.comm.recv(self.source, self.tag)
    }

    /// Completes the receive if a matching message has already arrived.
    pub fn test(&self) -> Option<(T, Status)> {
        let env = self.comm.world.mailboxes[self.comm.members[self.comm.rank]].try_pop_matching(
            self.comm.context,
            self.source,
            self.tag,
        )?;
        let status = Status {
            source: env.source,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        let value = from_bytes(&env.payload).expect("message payload failed to decode");
        Some((value, status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn rank_and_size() {
        let out = Universe::run(4, |comm| (comm.rank(), comm.size()));
        for (r, (rank, size)) in out.into_iter().enumerate() {
            assert_eq!(rank, r);
            assert_eq!(size, 4);
        }
    }

    #[test]
    fn ping_pong() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&41u32, 1, 0);
                let (v, st) = comm.recv::<u32>(1, 0);
                assert_eq!(st.source, 1);
                v
            } else {
                let (v, _) = comm.recv::<u32>(0, 0);
                comm.send(&(v + 1), 0, 0);
                v
            }
        });
        assert_eq!(out, vec![42, 41]);
    }

    #[test]
    fn wildcard_receive() {
        let out = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (v, st) = comm.recv::<usize>(SourceSel::Any, TagSel::Any);
                    assert_eq!(v, st.source);
                    seen.push(st.source);
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(&comm.rank(), 0, comm.rank() as Tag);
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    #[test]
    fn tagged_messages_do_not_overtake() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(&i, 1, 7);
                }
                0
            } else {
                let mut last = None;
                for _ in 0..10 {
                    let (v, _) = comm.recv::<u32>(0, 7);
                    if let Some(prev) = last {
                        assert_eq!(v, prev + 1, "FIFO violated");
                    }
                    last = Some(v);
                }
                last.unwrap()
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn sendrecv_exchanges() {
        let out = Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            let (theirs, _) = comm.sendrecv::<usize, usize>(&comm.rank(), peer, 3, peer, 3);
            theirs
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn recv_timeout_delivers_or_expires() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&9u32, 1, 4);
                comm.recv::<()>(1, 5);
                0
            } else {
                // Wrong tag first: must expire without consuming the message.
                let miss = comm.recv_timeout::<u32>(0, 3, std::time::Duration::from_millis(20));
                assert!(miss.is_none());
                let (v, st) = comm
                    .recv_timeout::<u32>(0, 4, std::time::Duration::from_secs(5))
                    .expect("matching message pending");
                assert_eq!(st.source, 0);
                comm.send(&(), 0, 5);
                v
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn irecv_test_and_wait() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                comm.send(&123u32, 1, 0);
                0
            } else {
                let req = comm.irecv::<u32>(0, 0);
                // May or may not be there yet; wait() must return it regardless.
                let (v, _) = req.wait();
                v
            }
        });
        assert_eq!(out[1], 123);
    }

    #[test]
    fn iprobe_sees_pending_message() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&5u8, 1, 9);
                comm.recv::<()>(1, 1);
                true
            } else {
                // Wait for the probe to succeed.
                loop {
                    if let Some((src, tag, len)) = comm.iprobe(SourceSel::Any, TagSel::Any) {
                        assert_eq!((src, tag, len), (0, 9, 1));
                        break;
                    }
                    std::thread::yield_now();
                }
                let (v, _) = comm.recv::<u8>(0, 9);
                comm.send(&(), 0, 1);
                v == 5
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    fn dup_segregates_traffic() {
        let out = Universe::run(2, |comm| {
            let dup = comm.dup();
            if comm.rank() == 0 {
                comm.send(&1u8, 1, 0);
                dup.send(&2u8, 1, 0);
                0
            } else {
                // Receive from the dup first: must get 2, not 1.
                let (v_dup, _) = dup.recv::<u8>(0, 0);
                let (v_orig, _) = comm.recv::<u8>(0, 0);
                assert_eq!(v_dup, 2);
                assert_eq!(v_orig, 1);
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn split_into_even_odd() {
        let out = Universe::run(6, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(Some(color), comm.rank() as i64).unwrap();
            // Even ranks 0,2,4 -> subranks 0,1,2; odd 1,3,5 -> 0,1,2.
            (sub.rank(), sub.size())
        });
        assert_eq!(out[0], (0, 3));
        assert_eq!(out[2], (1, 3));
        assert_eq!(out[4], (2, 3));
        assert_eq!(out[1], (0, 3));
        assert_eq!(out[3], (1, 3));
        assert_eq!(out[5], (2, 3));
    }

    #[test]
    fn split_subcomm_communicates() {
        let out = Universe::run(4, |comm| {
            let color = (comm.rank() / 2) as u64;
            let sub = comm.split(Some(color), 0).unwrap();
            if sub.rank() == 0 {
                sub.send(&(comm.rank() * 10), 1, 0);
                comm.rank() * 10
            } else {
                sub.recv::<usize>(0, 0).0
            }
        });
        assert_eq!(out, vec![0, 0, 20, 20]);
    }

    #[test]
    fn split_with_undefined_color() {
        let out = Universe::run(3, |comm| {
            let color = if comm.rank() == 2 { None } else { Some(0) };
            match comm.split(color, 0) {
                Some(sub) => sub.size(),
                None => 0,
            }
        });
        assert_eq!(out, vec![2, 2, 0]);
    }

    #[test]
    fn traffic_counters_increase() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&vec![0u8; 100], 1, 0);
            } else {
                comm.recv::<Vec<u8>>(0, 0);
            }
            (
                comm.world_handle().messages_sent(),
                comm.world_handle().bytes_sent(),
            )
        });
        assert!(out[1].0 >= 1);
        assert!(out[1].1 >= 100);
    }
}
