//! Per-rank mailboxes with MPI-style `(context, source, tag)` matching.
//!
//! Every rank owns one mailbox; senders push envelopes into the receiver's
//! mailbox and receivers block on a condition variable until a matching
//! envelope arrives. Matching supports `MPI_ANY_SOURCE` / `MPI_ANY_TAG`
//! wildcards and is FIFO per (context, source, tag) triple, which gives the
//! non-overtaking guarantee of the MPI standard.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Message tag type (non-negative, like MPI tags).
pub type Tag = u32;

/// Source selector for receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceSel {
    /// Match messages from one specific rank.
    Rank(usize),
    /// Match messages from any rank (MPI_ANY_SOURCE).
    Any,
}

impl From<usize> for SourceSel {
    fn from(r: usize) -> Self {
        SourceSel::Rank(r)
    }
}

/// Tag selector for receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagSel {
    /// Match one specific tag.
    Tag(Tag),
    /// Match any tag (MPI_ANY_TAG).
    Any,
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Tag(t)
    }
}

/// A queued message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Communicator context id (segregates traffic between communicators).
    pub context: u64,
    /// Sending rank *within that communicator*.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Serialized payload.
    pub payload: Bytes,
}

impl Envelope {
    fn matches(&self, context: u64, source: SourceSel, tag: TagSel) -> bool {
        if self.context != context {
            return false;
        }
        if let SourceSel::Rank(r) = source {
            if self.source != r {
                return false;
            }
        }
        if let TagSel::Tag(t) = tag {
            if self.tag != t {
                return false;
            }
        }
        true
    }
}

/// A rank's incoming-message queue.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued messages (diagnostic).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Delivers an envelope (called by the *sender*).
    pub fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        // Wake all blocked receivers: several receives with different
        // selectors may be pending on other threads in tests/tools.
        self.arrived.notify_all();
    }

    /// Removes and returns the first matching envelope, blocking until one
    /// arrives.
    pub fn pop_matching(&self, context: u64, source: SourceSel, tag: TagSel) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|e| e.matches(context, source, tag)) {
                return q.remove(idx).expect("index valid under lock");
            }
            self.arrived.wait(&mut q);
        }
    }

    /// Non-blocking variant of [`Mailbox::pop_matching`].
    pub fn try_pop_matching(
        &self,
        context: u64,
        source: SourceSel,
        tag: TagSel,
    ) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let idx = q.iter().position(|e| e.matches(context, source, tag))?;
        q.remove(idx)
    }

    /// Blocking pop with a timeout; `None` on expiry. Used to detect
    /// deadlocks in tests.
    pub fn pop_matching_timeout(
        &self,
        context: u64,
        source: SourceSel,
        tag: TagSel,
        timeout: Duration,
    ) -> Option<Envelope> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|e| e.matches(context, source, tag)) {
                return q.remove(idx);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self.arrived.wait_until(&mut q, deadline).timed_out() {
                // Check once more under the lock before giving up.
                if let Some(idx) = q.iter().position(|e| e.matches(context, source, tag)) {
                    return q.remove(idx);
                }
                return None;
            }
        }
    }

    /// Peeks whether a matching message is available without removing it
    /// (MPI_Iprobe analogue). Returns `(source, tag, payload_len)`.
    pub fn probe(
        &self,
        context: u64,
        source: SourceSel,
        tag: TagSel,
    ) -> Option<(usize, Tag, usize)> {
        let q = self.queue.lock();
        q.iter()
            .find(|e| e.matches(context, source, tag))
            .map(|e| (e.source, e.tag, e.payload.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(context: u64, source: usize, tag: Tag, byte: u8) -> Envelope {
        Envelope {
            context,
            source,
            tag,
            payload: Bytes::copy_from_slice(&[byte]),
        }
    }

    #[test]
    fn fifo_within_matching_class() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 10));
        mb.push(env(0, 1, 5, 20));
        let a = mb.pop_matching(0, SourceSel::Rank(1), TagSel::Tag(5));
        let b = mb.pop_matching(0, SourceSel::Rank(1), TagSel::Tag(5));
        assert_eq!(a.payload[0], 10);
        assert_eq!(b.payload[0], 20);
    }

    #[test]
    fn tag_matching_skips_non_matching() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 10));
        mb.push(env(0, 1, 6, 20));
        let b = mb.pop_matching(0, SourceSel::Rank(1), TagSel::Tag(6));
        assert_eq!(b.payload[0], 20);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_any_tag() {
        let mb = Mailbox::new();
        mb.push(env(0, 3, 9, 42));
        let e = mb.pop_matching(0, SourceSel::Any, TagSel::Any);
        assert_eq!(e.source, 3);
        assert_eq!(e.tag, 9);
    }

    #[test]
    fn context_segregation() {
        let mb = Mailbox::new();
        mb.push(env(7, 0, 0, 1));
        assert!(mb
            .try_pop_matching(8, SourceSel::Any, TagSel::Any)
            .is_none());
        assert!(mb
            .try_pop_matching(7, SourceSel::Any, TagSel::Any)
            .is_some());
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            mb2.pop_matching(0, SourceSel::Rank(0), TagSel::Tag(1))
                .payload[0]
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(env(0, 0, 1, 77));
        assert_eq!(handle.join().unwrap(), 77);
    }

    #[test]
    fn timeout_expires_when_no_match() {
        let mb = Mailbox::new();
        mb.push(env(0, 0, 1, 1));
        let r = mb.pop_matching_timeout(
            0,
            SourceSel::Rank(0),
            TagSel::Tag(2),
            Duration::from_millis(30),
        );
        assert!(r.is_none());
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(0, 2, 4, 9));
        let (src, tag, len) = mb.probe(0, SourceSel::Any, TagSel::Any).unwrap();
        assert_eq!((src, tag, len), (2, 4, 1));
        assert_eq!(mb.len(), 1);
    }
}
