//! Wire transports: the OS-boundary substrate under remote shard workers.
//!
//! The in-process substrate ([`crate::comm`]) moves already-encoded frames
//! between threads through mailboxes. This module carries the *same* framed
//! payloads across real OS boundaries — a controller process talking to
//! worker child processes over Unix domain sockets (or TCP loopback) — so
//! the protocol layered on top ([`crate::Encode`]/[`crate::Decode`] command
//! frames) does not change when workers stop sharing an address space.
//!
//! ## Frame layout
//!
//! Every message on a stream is one length-prefixed frame:
//!
//! ```text
//! [ len: u32 LE ][ tag: u8 ][ epoch: u32 LE ][ peer: u32 LE ][ body... ]
//!   `len` counts everything after itself: HEADER_LEN + body.len()
//! ```
//!
//! * `tag` multiplexes logical channels over one stream (commands, replies,
//!   relayed stripe exchanges, control) — the socket analogue of the
//!   mailbox `(source, tag)` match key.
//! * `epoch` stamps the failover generation; receivers discard frames from
//!   an older epoch, which is what makes recovery safe against stale
//!   in-flight traffic.
//! * `peer` names the counterpart rank of a relayed frame (destination on
//!   the way in to the relay, source on the way out).
//!
//! A reader that hits EOF mid-frame gets [`std::io::ErrorKind::UnexpectedEof`];
//! a length over [`MAX_FRAME_LEN`] (or under the header size) is
//! [`std::io::ErrorKind::InvalidData`] — corruption is diagnosed, never
//! trusted. The body is read in bounded chunks, so a corrupt length cannot
//! force a giant up-front allocation.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Which wire substrate carries controller↔worker shard traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Workers are threads in this process; frames travel through
    /// [`crate::comm`] mailboxes. The default, and the only kind with no
    /// spawn/serialization overhead.
    #[default]
    InProcess,
    /// Workers are child processes connected over Unix domain sockets in
    /// the system temp directory.
    UnixSocket,
    /// Workers are child processes connected over TCP loopback
    /// (`127.0.0.1`, ephemeral port). Functionally identical to
    /// [`TransportKind::UnixSocket`]; exists so the same code path is
    /// provably address-family agnostic.
    Tcp,
}

impl TransportKind {
    /// Stable lowercase name (used in CI matrix entries and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::UnixSocket => "unix-socket",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Whether workers run as separate OS processes under this kind.
    pub fn is_multiprocess(self) -> bool {
        self != TransportKind::InProcess
    }

    /// Parses the names accepted by the `QMPI_TEST_TRANSPORT`-style knobs
    /// (`in-process`, `unix-socket`/`unix`, `tcp`, underscores tolerated).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s.to_lowercase().replace('_', "-").as_str() {
            "in-process" | "inprocess" | "thread" => Some(TransportKind::InProcess),
            "unix-socket" | "unix" | "uds" => Some(TransportKind::UnixSocket),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fixed per-frame header bytes following the length prefix.
pub const HEADER_LEN: usize = 1 + 4 + 4;

/// Total wire overhead of one frame: length prefix plus header.
pub const FRAME_OVERHEAD: usize = 4 + HEADER_LEN;

/// Upper bound on `len` a reader will honor. Generous (a 26-qubit stripe
/// gather is ~1 GiB) but finite: a corrupt length prefix fails fast as
/// `InvalidData` instead of hanging the stream waiting for garbage bytes.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Body bytes read per `read_exact` round while receiving a frame — bounds
/// the allocation a lying length prefix can trigger before EOF surfaces.
const READ_CHUNK: usize = 64 * 1024;

/// The routing header carried by every frame; see the [module docs](self)
/// for field semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Logical channel (command/reply/exchange/control).
    pub tag: u8,
    /// Failover generation stamp.
    pub epoch: u32,
    /// Counterpart rank for relayed frames; 0 where unused.
    pub peer: u32,
}

/// Writes one frame (header + body) as a single buffered write, returning
/// the bytes put on the wire. One `write_all` per frame keeps concurrent
/// writers (behind a lock) from interleaving partial frames.
pub fn write_frame(w: &mut impl Write, hdr: &FrameHeader, body: &[u8]) -> io::Result<usize> {
    let len = HEADER_LEN + body.len();
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds MAX_FRAME_LEN", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(hdr.tag);
    frame.extend_from_slice(&hdr.epoch.to_le_bytes());
    frame.extend_from_slice(&hdr.peer.to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads one frame. EOF *before* the length prefix surfaces as
/// `UnexpectedEof` with an empty message (clean peer shutdown); EOF
/// anywhere later is a mid-frame truncation, also `UnexpectedEof`. A length
/// outside `[HEADER_LEN, MAX_FRAME_LEN]` is `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(FrameHeader, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} shorter than the {HEADER_LEN}-byte header"),
        ));
    }
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut hdr_buf = [0u8; HEADER_LEN];
    r.read_exact(&mut hdr_buf)?;
    let hdr = FrameHeader {
        tag: hdr_buf[0],
        epoch: u32::from_le_bytes(hdr_buf[1..5].try_into().expect("4 bytes")),
        peer: u32::from_le_bytes(hdr_buf[5..9].try_into().expect("4 bytes")),
    };
    let mut body = Vec::new();
    let mut remaining = len - HEADER_LEN;
    let mut chunk = [0u8; READ_CHUNK];
    while remaining > 0 {
        let n = remaining.min(READ_CHUNK);
        r.read_exact(&mut chunk[..n])?;
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok((hdr, body))
}

/// Monotonic per-process counter for socket path uniqueness.
fn next_socket_serial() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    SERIAL.fetch_add(1, Ordering::Relaxed)
}

/// A bound, listening endpoint workers connect back to. Unix listeners own
/// their socket file and remove it on drop.
#[derive(Debug)]
pub enum WireListener {
    /// Unix domain socket in the system temp directory.
    Unix {
        /// The listening socket.
        listener: UnixListener,
        /// Path of the socket file (removed on drop).
        path: PathBuf,
    },
    /// TCP on loopback, ephemeral port.
    Tcp(TcpListener),
}

impl WireListener {
    /// Binds a listener for `kind`. [`TransportKind::InProcess`] has no
    /// wire endpoint and is rejected with `InvalidInput`.
    pub fn bind(kind: TransportKind) -> io::Result<WireListener> {
        match kind {
            TransportKind::InProcess => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the in-process transport has no socket listener",
            )),
            TransportKind::UnixSocket => {
                let path = std::env::temp_dir().join(format!(
                    "cmpi-{}-{}.sock",
                    std::process::id(),
                    next_socket_serial()
                ));
                // A stale file from a crashed previous process with a
                // recycled pid would fail the bind; it is ours to reclaim.
                if path.exists() {
                    let _ = std::fs::remove_file(&path);
                }
                let listener = UnixListener::bind(&path)?;
                Ok(WireListener::Unix { listener, path })
            }
            TransportKind::Tcp => Ok(WireListener::Tcp(TcpListener::bind("127.0.0.1:0")?)),
        }
    }

    /// The connect string workers are handed (`unix:<path>` or
    /// `tcp:<ip>:<port>`), parseable by [`WireStream::connect`].
    pub fn addr(&self) -> io::Result<String> {
        match self {
            WireListener::Unix { path, .. } => Ok(format!("unix:{}", path.display())),
            WireListener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
        }
    }

    /// Accepts one connection, waiting at most `timeout`. Uses a
    /// non-blocking accept poll (neither listener type has a native accept
    /// deadline); the accepted stream is returned in blocking mode.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<WireStream> {
        let deadline = std::time::Instant::now() + timeout;
        self.set_nonblocking(true)?;
        let result = loop {
            match self.accept_once() {
                Ok(stream) => break Ok(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        break Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no worker connected within {timeout:?}"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => break Err(e),
            }
        };
        self.set_nonblocking(false)?;
        let stream = result?;
        stream.set_nonblocking(false)?;
        Ok(stream)
    }

    fn accept_once(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Unix { listener, .. } => {
                listener.accept().map(|(s, _)| WireStream::Unix(s))
            }
            WireListener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            WireListener::Unix { listener, .. } => listener.set_nonblocking(nb),
            WireListener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

impl Drop for WireListener {
    fn drop(&mut self) {
        if let WireListener::Unix { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One connected wire endpoint; `Read`/`Write` pass straight through to
/// the underlying socket.
#[derive(Debug)]
pub enum WireStream {
    /// Unix domain socket stream.
    Unix(UnixStream),
    /// TCP loopback stream.
    Tcp(TcpStream),
}

impl WireStream {
    /// Connects to an address produced by [`WireListener::addr`].
    pub fn connect(addr: &str) -> io::Result<WireStream> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(WireStream::Unix(UnixStream::connect(path)?))
        } else if let Some(sock) = addr.strip_prefix("tcp:") {
            Ok(WireStream::Tcp(TcpStream::connect(sock)?))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("wire address '{addr}' must start with unix: or tcp:"),
            ))
        }
    }

    /// An independently-readable handle to the same socket (reader/writer
    /// split for the controller's per-worker router thread).
    pub fn try_clone(&self) -> io::Result<WireStream> {
        match self {
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
        }
    }

    /// Read deadline for subsequent reads (`None` blocks forever) — the
    /// hook the remote engine's deadlock watchdog maps onto.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.set_read_timeout(t),
            WireStream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Shuts down both directions, unblocking any reader on the peer side.
    pub fn shutdown(&self) {
        let _ = match self {
            WireStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            WireStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.set_nonblocking(nb),
            WireStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.read(buf),
            WireStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.write(buf),
            WireStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.flush(),
            WireStream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(hdr: &FrameHeader, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, hdr, body).unwrap();
        buf
    }

    #[test]
    fn transport_kind_names_roundtrip_through_parse() {
        for kind in [
            TransportKind::InProcess,
            TransportKind::UnixSocket,
            TransportKind::Tcp,
        ] {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            TransportKind::parse("unix_socket"),
            Some(TransportKind::UnixSocket)
        );
        assert_eq!(TransportKind::parse("shared-memory"), None);
        assert!(!TransportKind::InProcess.is_multiprocess());
        assert!(TransportKind::UnixSocket.is_multiprocess());
    }

    #[test]
    fn frame_roundtrips_and_reports_wire_size() {
        let hdr = FrameHeader {
            tag: 3,
            epoch: 7,
            peer: 2,
        };
        let body = vec![0xABu8; 300];
        let buf = frame_bytes(&hdr, &body);
        assert_eq!(buf.len(), FRAME_OVERHEAD + body.len());
        let (got_hdr, got_body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got_hdr, hdr);
        assert_eq!(got_body, body);
    }

    #[test]
    fn clean_eof_before_any_frame_is_unexpected_eof() {
        let empty: &[u8] = &[];
        let err = read_frame(&mut &*empty).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_is_invalid_data_not_a_hang() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; HEADER_LEN]);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn undersized_length_is_invalid_data() {
        let buf = (HEADER_LEN as u32 - 1).to_le_bytes();
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unix_socket_carries_frames_both_ways() {
        let listener = WireListener::bind(TransportKind::UnixSocket).unwrap();
        let addr = listener.addr().unwrap();
        assert!(addr.starts_with("unix:"));
        let client = std::thread::spawn(move || {
            let mut s = WireStream::connect(&addr).unwrap();
            let hdr = FrameHeader {
                tag: 1,
                epoch: 0,
                peer: 0,
            };
            write_frame(&mut s, &hdr, b"ping").unwrap();
            read_frame(&mut s).unwrap()
        });
        let mut server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        let (hdr, body) = read_frame(&mut server).unwrap();
        assert_eq!((hdr.tag, body.as_slice()), (1, &b"ping"[..]));
        write_frame(
            &mut server,
            &FrameHeader {
                tag: 2,
                epoch: 9,
                peer: 1,
            },
            b"pong",
        )
        .unwrap();
        let (hdr, body) = client.join().unwrap();
        assert_eq!((hdr.tag, hdr.epoch, body.as_slice()), (2, 9, &b"pong"[..]));
    }

    #[test]
    fn unix_listener_removes_socket_file_on_drop() {
        let listener = WireListener::bind(TransportKind::UnixSocket).unwrap();
        let path = match &listener {
            WireListener::Unix { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(listener);
        assert!(!path.exists());
    }

    #[test]
    fn tcp_transport_carries_frames() {
        let listener = WireListener::bind(TransportKind::Tcp).unwrap();
        let addr = listener.addr().unwrap();
        assert!(addr.starts_with("tcp:127.0.0.1:"));
        let client = std::thread::spawn(move || {
            let mut s = WireStream::connect(&addr).unwrap();
            write_frame(
                &mut s,
                &FrameHeader {
                    tag: 0,
                    epoch: 0,
                    peer: 0,
                },
                &[1, 2, 3],
            )
            .unwrap();
        });
        let mut server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        let (_, body) = read_frame(&mut server).unwrap();
        assert_eq!(body, [1, 2, 3]);
        client.join().unwrap();
    }

    #[test]
    fn accept_timeout_expires_without_a_connection() {
        let listener = WireListener::bind(TransportKind::UnixSocket).unwrap();
        let err = listener
            .accept_timeout(Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn read_timeout_surfaces_as_would_block_or_timed_out() {
        let listener = WireListener::bind(TransportKind::UnixSocket).unwrap();
        let addr = listener.addr().unwrap();
        let _client = WireStream::connect(&addr).unwrap();
        let mut server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        let err = read_frame(&mut server).unwrap_err();
        // Platform-dependent: sockets report an expired read deadline as
        // either WouldBlock or TimedOut.
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
    }

    #[test]
    fn in_process_kind_has_no_listener() {
        let err = WireListener::bind(TransportKind::InProcess).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}

/// Property pass over the length-prefixed framing: the stress lane reruns
/// these at `PROPTEST_CASES=320` alongside the corrupt-payload properties
/// of the command codec.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn frames_roundtrip(tag in any::<u8>(), epoch in any::<u32>(), peer in any::<u32>(),
                            body in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let hdr = FrameHeader { tag, epoch, peer };
            let mut buf = Vec::new();
            let written = write_frame(&mut buf, &hdr, &body).unwrap();
            prop_assert_eq!(written, FRAME_OVERHEAD + body.len());
            let (got_hdr, got_body) = read_frame(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(got_hdr, hdr);
            prop_assert_eq!(got_body, body);
        }

        #[test]
        fn truncation_at_every_split_is_unexpected_eof(cut_sel in any::<usize>(),
                                                       body in proptest::collection::vec(any::<u8>(), 0..256)) {
            let hdr = FrameHeader { tag: 2, epoch: 1, peer: 3 };
            let mut buf = Vec::new();
            write_frame(&mut buf, &hdr, &body).unwrap();
            // Any strict prefix of a valid frame is a mid-frame EOF.
            let cut = cut_sel % buf.len();
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }

        #[test]
        fn oversized_or_undersized_lengths_are_invalid_data(len_sel in any::<u32>(), junk in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Map the selector onto the invalid ranges: below HEADER_LEN or
            // above MAX_FRAME_LEN.
            let len = if len_sel.is_multiple_of(2) {
                len_sel % HEADER_LEN as u32
            } else {
                (MAX_FRAME_LEN as u32 + 1).saturating_add(len_sel / 2)
            };
            let mut buf = Vec::new();
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&junk);
            let err = read_frame(&mut buf.as_slice()).unwrap_err();
            prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            // Decode garbage: must return Ok or a clean io::Error, never
            // panic or over-allocate.
            let _ = read_frame(&mut bytes.as_slice());
        }
    }
}
