//! Self-contained binary message encoding.
//!
//! QMPI keeps classical and quantum communication strictly separated
//! (paper Section 4.2); the classical side needs a small, dependency-free
//! wire format for measurement outcomes, qubit ids, and collective
//! bookkeeping. Everything is little-endian and length-prefixed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Types that can be serialized into a message payload.
pub trait Encode {
    /// Appends the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Types that can be deserialized from a message payload.
pub trait Decode: Sized {
    /// Reads a value from the front of `buf`, advancing it.
    /// Returns `None` on underflow or malformed data.
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

/// Serializes a value into a standalone payload.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Deserializes a full payload; fails if bytes remain.
pub fn from_bytes<T: Decode>(payload: &Bytes) -> Option<T> {
    let mut buf = payload.clone();
    let v = T::decode(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some(v)
}

macro_rules! impl_scalar {
    ($t:ty, $put:ident, $get:ident) => {
        impl Encode for $t {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $t {
            #[inline]
            fn decode(buf: &mut Bytes) -> Option<Self> {
                if buf.remaining() < std::mem::size_of::<$t>() {
                    return None;
                }
                Some(buf.$get())
            }
        }
    };
}

impl_scalar!(u8, put_u8, get_u8);
impl_scalar!(u16, put_u16_le, get_u16_le);
impl_scalar!(u32, put_u32_le, get_u32_le);
impl_scalar!(u64, put_u64_le, get_u64_le);
impl_scalar!(i8, put_i8, get_i8);
impl_scalar!(i16, put_i16_le, get_i16_le);
impl_scalar!(i32, put_i32_le, get_i32_le);
impl_scalar!(i64, put_i64_le, get_i64_le);
impl_scalar!(f32, put_f32_le, get_f32_le);
impl_scalar!(f64, put_f64_le, get_f64_le);

impl Encode for bool {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    #[inline]
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Encode for usize {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    #[inline]
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u64::decode(buf).map(|v| v as usize)
    }
}

impl Encode for () {
    #[inline]
    fn encode(&self, _buf: &mut BytesMut) {}
}

impl Decode for () {
    #[inline]
    fn decode(_buf: &mut Bytes) -> Option<Self> {
        Some(())
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        self.len().encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = usize::decode(buf)?;
        if buf.remaining() < len {
            return None;
        }
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = usize::decode(buf)?;
        // Guard against corrupted lengths; each element takes >= 1 byte
        // except (), which we never transmit in vectors.
        if len > buf.remaining() && std::mem::size_of::<T>() > 0 {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut BytesMut) {
                $( self.$idx.encode(buf); )+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(buf: &mut Bytes) -> Option<Self> {
                Some(($( $name::decode(buf)?, )+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(&b).expect("decode failed");
        assert_eq!(v, back);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(-1i64);
        roundtrip(2.25f64);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(123_456usize);
    }

    #[test]
    fn string_roundtrip() {
        roundtrip(String::from(""));
        roundtrip(String::from("hello QMPI"));
        roundtrip(String::from("ünïcodé ✓"));
    }

    #[test]
    fn vec_roundtrip() {
        roundtrip::<Vec<u32>>(vec![]);
        roundtrip(vec![1u32, 2, 3, u32::MAX]);
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
        roundtrip(vec![1.5f64, -2.5, 0.0]);
    }

    #[test]
    fn option_roundtrip() {
        roundtrip::<Option<u32>>(None);
        roundtrip(Some(77u32));
        roundtrip(Some(vec![1u8, 2, 3]));
    }

    #[test]
    fn tuple_roundtrip() {
        roundtrip((1u32,));
        roundtrip((1u32, 2.5f64));
        roundtrip((true, String::from("x"), 9u64));
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip((1u8, 2u16, 3u32, 4u64, false));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = BytesMut::new();
        1u32.encode(&mut b);
        2u32.encode(&mut b);
        assert!(from_bytes::<u32>(&b.freeze()).is_none());
    }

    #[test]
    fn underflow_rejected() {
        let b = Bytes::from_static(&[1, 2]);
        assert!(from_bytes::<u32>(&b).is_none());
    }

    #[test]
    fn corrupt_bool_rejected() {
        let b = Bytes::from_static(&[7]);
        assert!(from_bytes::<bool>(&b).is_none());
    }

    #[test]
    fn corrupt_vec_length_rejected() {
        let mut b = BytesMut::new();
        usize::MAX.encode(&mut b);
        assert!(from_bytes::<Vec<u8>>(&b.freeze()).is_none());
    }
}
