//! # cmpi — classical message-passing substrate
//!
//! An in-process MPI: ranks are threads, mailboxes replace the network, and
//! the MPI semantics QMPI depends on (Section 4.1 of the paper: "QMPI
//! leverages MPI for classical communication") are implemented faithfully —
//! `(source, tag)` matching with wildcards, non-overtaking delivery,
//! non-blocking requests, communicator contexts (`dup`/`split`), and the
//! full set of collectives including the `MPI_Exscan` the cat-state
//! protocol of Section 7.1 relies on.
//!
//! See DESIGN.md substitution #1 for why an in-process transport preserves
//! everything the paper's prototype needs from MPI.

pub mod collectives;
pub mod comm;
pub mod encode;
pub mod mailbox;
pub mod pool;
pub mod transport;
pub mod universe;

pub use collectives::{ops, ReduceOp};
pub use comm::{Communicator, RecvRequest, SendRequest, Status, World};
pub use encode::{from_bytes, to_bytes, Decode, Encode};
pub use mailbox::{Envelope, Mailbox, SourceSel, Tag, TagSel};
pub use pool::{WorkerLease, WorkerPool};
pub use transport::{FrameHeader, TransportKind, WireListener, WireStream};
pub use universe::{Universe, WorkerGroup};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn allreduce_sum_matches_serial(values in proptest::collection::vec(0u32..1000, 2..6)) {
            let n = values.len();
            let vals = std::sync::Arc::new(values.clone());
            let out = Universe::run(n, move |comm| {
                comm.allreduce(vals[comm.rank()] as u64, &ops::sum)
            });
            let expect: u64 = values.iter().map(|&v| v as u64).sum();
            prop_assert!(out.into_iter().all(|v| v == expect));
        }

        #[test]
        fn scan_matches_serial_prefices(values in proptest::collection::vec(0u64..1000, 2..6)) {
            let n = values.len();
            let vals = std::sync::Arc::new(values.clone());
            let out = Universe::run(n, move |comm| comm.scan(vals[comm.rank()], &ops::sum));
            let mut acc = 0u64;
            for (r, v) in out.into_iter().enumerate() {
                acc += values[r];
                prop_assert_eq!(v, acc);
            }
        }

        #[test]
        fn bcast_delivers_payload(n in 2usize..6, root_sel in 0usize..6, payload in proptest::collection::vec(any::<u8>(), 0..64)) {
            let root = root_sel % n;
            let p = std::sync::Arc::new(payload.clone());
            let out = Universe::run(n, move |comm| {
                let v = if comm.rank() == root { Some(p.as_ref().clone()) } else { None };
                comm.bcast(v, root)
            });
            prop_assert!(out.into_iter().all(|v| v == payload));
        }

        #[test]
        fn alltoall_is_transpose(n in 2usize..5) {
            let out = Universe::run(n, move |comm| {
                let row: Vec<u64> = (0..n).map(|c| (comm.rank() * n + c) as u64).collect();
                comm.alltoall(row)
            });
            for (r, row) in out.iter().enumerate() {
                for (s, &v) in row.iter().enumerate() {
                    prop_assert_eq!(v, (s * n + r) as u64);
                }
            }
        }
    }
}
