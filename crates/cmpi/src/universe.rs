//! Thread-per-rank launcher — the substitute for `mpirun`.
//!
//! The paper's prototype runs QMPI ranks as MPI processes on one machine;
//! here each rank is an OS thread and the "network" is the shared set of
//! mailboxes in [`crate::comm::World`]. Message-passing semantics (matching,
//! ordering, collectives) are identical; only the transport differs, which
//! DESIGN.md documents as substitution #1.

use crate::comm::{Communicator, World};
use std::sync::Arc;

/// Launches rank closures and collects their results.
pub struct Universe;

impl Universe {
    /// Runs `f` on `n` ranks (threads), each receiving its world
    /// communicator. Returns the per-rank results in rank order.
    ///
    /// Panics if any rank panics (propagating the first panic payload), so
    /// test failures inside ranks surface as test failures.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "need at least one rank");
        let world = World::new(n);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let f = Arc::clone(&f);
            let builder = std::thread::Builder::new()
                .name(format!("cmpi-rank-{rank}"))
                // Dense chemistry payloads and deep recursion in tests need
                // more than the default stack on some platforms.
                .stack_size(8 << 20);
            handles.push(
                builder
                    .spawn(move || f(Communicator::world(world, rank)))
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut results = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(Some(v)),
                Err(e) => {
                    results.push(None);
                    if panic.is_none() {
                        panic = Some(e);
                    }
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        results
            .into_iter()
            .map(|r| r.expect("rank result present"))
            .collect()
    }

    /// Spawns `n` long-lived *worker* ranks and returns the controller's
    /// communicator without blocking.
    ///
    /// Unlike [`Universe::run`], which joins every rank before returning,
    /// this builds a world of `n + 1` ranks, runs `f` on ranks `1..=n`
    /// (each on its own thread), and hands rank 0 — the controller — back
    /// to the caller together with a [`WorkerGroup`] holding the join
    /// handles. This is the lifecycle used by process-separated simulation
    /// shards: the controller drives workers over point-to-point messages
    /// and each worker runs a mailbox event loop until told to shut down.
    ///
    /// The caller owns the shutdown protocol: workers must return from `f`
    /// (typically on receiving a shutdown message) before
    /// [`WorkerGroup::join`] can complete.
    pub fn spawn_workers<F>(n: usize, f: F) -> (Communicator, WorkerGroup)
    where
        F: Fn(Communicator) + Send + Sync + 'static,
    {
        assert!(n > 0, "need at least one worker");
        let world = World::new(n + 1);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for rank in 1..=n {
            let world = Arc::clone(&world);
            let f = Arc::clone(&f);
            let builder = std::thread::Builder::new()
                .name(format!("cmpi-worker-{rank}"))
                .stack_size(8 << 20);
            handles.push(
                builder
                    .spawn(move || f(Communicator::world(world, rank)))
                    .expect("failed to spawn worker thread"),
            );
        }
        (Communicator::world(world, 0), WorkerGroup { handles })
    }

    /// Like [`Universe::run`] but also hands each rank a shared context
    /// value (used by QMPI to share the simulator backend).
    pub fn run_with<C, T, F>(n: usize, ctx: Arc<C>, f: F) -> Vec<T>
    where
        C: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(Communicator, Arc<C>) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        Self::run(n, move |comm| f(comm, Arc::clone(&ctx)))
    }
}

/// Join handles for workers started by [`Universe::spawn_workers`].
///
/// Workers are expected to exit via the caller's shutdown protocol; `join`
/// then reaps the threads. Dropping the group without joining detaches the
/// threads (they keep running until their closures return).
pub struct WorkerGroup {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerGroup {
    /// Number of workers in the group.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when the group holds no workers.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins every worker thread, returning how many panicked. Unlike
    /// [`Universe::run`] this never resumes a worker panic: the group is
    /// typically joined from a destructor, where propagating would abort.
    pub fn join(self) -> usize {
        let mut panicked = 0;
        for h in self.handles {
            if h.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        Universe::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("rank 2 exploded");
            }
            comm.rank()
        });
    }

    #[test]
    fn spawn_workers_echo_and_shutdown() {
        // Workers double incoming numbers until they receive the shutdown
        // sentinel (u64::MAX); the controller drives them and joins.
        let (ctl, group) = Universe::spawn_workers(3, |comm| loop {
            let (v, _) = comm.recv::<u64>(0, 0);
            if v == u64::MAX {
                return;
            }
            comm.send(&(v * 2), 0, 1);
        });
        assert_eq!(group.len(), 3);
        for w in 1..=3usize {
            ctl.send(&(w as u64 * 10), w, 0);
        }
        let mut sum = 0u64;
        for w in 1..=3usize {
            let (v, _) = ctl.recv::<u64>(w, 1);
            sum += v;
        }
        assert_eq!(sum, 2 * (10 + 20 + 30));
        for w in 1..=3usize {
            ctl.send(&u64::MAX, w, 0);
        }
        assert_eq!(group.join(), 0);
    }

    #[test]
    fn worker_group_join_counts_panics() {
        let (ctl, group) = Universe::spawn_workers(2, |comm| {
            let (v, _) = comm.recv::<u64>(0, 0);
            if comm.rank() == 1 && v == 7 {
                panic!("worker 1 told to panic");
            }
        });
        ctl.send(&7u64, 1, 0);
        ctl.send(&0u64, 2, 0);
        assert_eq!(group.join(), 1);
    }

    #[test]
    fn run_with_shares_context() {
        let shared = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let out = Universe::run_with(4, shared.clone(), |comm, ctx| {
            ctx.fetch_add(comm.rank(), std::sync::atomic::Ordering::Relaxed);
            comm.rank()
        });
        assert_eq!(out.len(), 4);
        assert_eq!(shared.load(std::sync::atomic::Ordering::Relaxed), 1 + 2 + 3);
    }
}
