//! Thread-per-rank launcher — the substitute for `mpirun`.
//!
//! The paper's prototype runs QMPI ranks as MPI processes on one machine;
//! here each rank is an OS thread and the "network" is the shared set of
//! mailboxes in [`crate::comm::World`]. Message-passing semantics (matching,
//! ordering, collectives) are identical; only the transport differs, which
//! DESIGN.md documents as substitution #1.

use crate::comm::{Communicator, World};
use std::sync::Arc;

/// Launches rank closures and collects their results.
pub struct Universe;

impl Universe {
    /// Runs `f` on `n` ranks (threads), each receiving its world
    /// communicator. Returns the per-rank results in rank order.
    ///
    /// Panics if any rank panics (propagating the first panic payload), so
    /// test failures inside ranks surface as test failures.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "need at least one rank");
        let world = World::new(n);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let f = Arc::clone(&f);
            let builder = std::thread::Builder::new()
                .name(format!("cmpi-rank-{rank}"))
                // Dense chemistry payloads and deep recursion in tests need
                // more than the default stack on some platforms.
                .stack_size(8 << 20);
            handles.push(
                builder
                    .spawn(move || f(Communicator::world(world, rank)))
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut results = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(Some(v)),
                Err(e) => {
                    results.push(None);
                    if panic.is_none() {
                        panic = Some(e);
                    }
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        results
            .into_iter()
            .map(|r| r.expect("rank result present"))
            .collect()
    }

    /// Like [`Universe::run`] but also hands each rank a shared context
    /// value (used by QMPI to share the simulator backend).
    pub fn run_with<C, T, F>(n: usize, ctx: Arc<C>, f: F) -> Vec<T>
    where
        C: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(Communicator, Arc<C>) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        Self::run(n, move |comm| f(comm, Arc::clone(&ctx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        Universe::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("rank 2 exploded");
            }
            comm.rank()
        });
    }

    #[test]
    fn run_with_shares_context() {
        let shared = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let out = Universe::run_with(4, shared.clone(), |comm, ctx| {
            ctx.fetch_add(comm.rank(), std::sync::atomic::Ordering::Relaxed);
            comm.rank()
        });
        assert_eq!(out.len(), 4);
        assert_eq!(shared.load(std::sync::atomic::Ordering::Relaxed), 1 + 2 + 3);
    }
}
