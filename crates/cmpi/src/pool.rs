//! Long-lived worker pools with exclusive slot leases.
//!
//! [`crate::Universe::spawn_workers`] starts one worker world per call and
//! hands ownership of its lifecycle (shutdown protocol, thread joins) to
//! the caller — the spawn-per-engine model. A [`WorkerPool`] amortizes
//! that: it spawns a fixed number of *slots* up front, each slot being an
//! independent worker world, and hands them out one at a time as
//! [`WorkerLease`]s. A lease grants exclusive use of the slot's controller
//! communicator for as long as it lives; dropping it returns the slot —
//! with its workers still running their event loops — to the pool for the
//! next lessee.
//!
//! Isolation is structural, not cooperative: every slot is its own
//! [`crate::comm::World`], so two leaseholders can never observe each
//! other's traffic no matter how their operations interleave.
//!
//! The pool owns the shutdown protocol. Construction takes, along with the
//! worker closure, a `shutdown` closure that must make every worker in a
//! slot return from its event loop; the pool invokes it per slot when the
//! pool is dropped (or, for slots still leased at that point, when their
//! lease is dropped), then joins the worker threads.

use crate::comm::Communicator;
use crate::universe::{Universe, WorkerGroup};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shutdown protocol for one slot: must make every worker of the slot
/// return from its event loop. Receives the slot's controller
/// communicator and its worker count.
type ShutdownFn = Box<dyn Fn(&Communicator, usize) + Send + Sync>;

/// One pooled worker world: the controller communicator plus the join
/// handles of its (running) workers.
struct Slot {
    index: usize,
    comm: Communicator,
    group: Option<WorkerGroup>,
}

/// State shared between the pool handle and every outstanding lease.
struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
    /// Makes every worker of a slot return from its event loop (e.g. by
    /// sending each a shutdown message).
    shutdown: ShutdownFn,
    workers_per_slot: usize,
    slots: usize,
}

struct PoolState {
    free: Vec<Slot>,
    /// Set when the pool handle is dropped: freed slots are shut down
    /// instead of returned.
    closing: bool,
}

impl PoolShared {
    /// Terminates one slot: runs the shutdown protocol, then joins the
    /// worker threads. Worker panics are reported, never propagated (this
    /// runs from destructors).
    fn shutdown_slot(&self, mut slot: Slot) {
        (self.shutdown)(&slot.comm, self.workers_per_slot);
        if let Some(group) = slot.group.take() {
            let panicked = group.join();
            if panicked > 0 {
                eprintln!(
                    "cmpi worker pool: {panicked} worker(s) of slot {} panicked",
                    slot.index
                );
            }
        }
    }
}

/// A fixed set of long-lived worker worlds, leased out one at a time.
///
/// See the [module docs](self) for the lifecycle. All methods take `&self`;
/// the pool handle can be shared behind an `Arc` and leased from many
/// threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawns `slots` independent worker worlds of `workers_per_slot`
    /// workers each, all running `worker` (as in
    /// [`Universe::spawn_workers`]). `shutdown` is the pool's slot
    /// termination protocol: given a slot's controller communicator and
    /// worker count, it must make every worker return from `worker`.
    pub fn new<W, S>(slots: usize, workers_per_slot: usize, worker: W, shutdown: S) -> WorkerPool
    where
        W: Fn(Communicator) + Send + Sync + 'static,
        S: Fn(&Communicator, usize) + Send + Sync + 'static,
    {
        assert!(slots > 0, "need at least one pool slot");
        let worker = Arc::new(worker);
        let free = (0..slots)
            .map(|index| {
                let worker = Arc::clone(&worker);
                let (comm, group) = Universe::spawn_workers(workers_per_slot, move |c| worker(c));
                Slot {
                    index,
                    comm,
                    group: Some(group),
                }
            })
            .collect();
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    free,
                    closing: false,
                }),
                cv: Condvar::new(),
                shutdown: Box::new(shutdown),
                workers_per_slot,
                slots,
            }),
        }
    }

    /// Total slot count.
    pub fn slots(&self) -> usize {
        self.shared.slots
    }

    /// Workers per slot.
    pub fn workers_per_slot(&self) -> usize {
        self.shared.workers_per_slot
    }

    /// Slots currently free (racy by nature; useful for scheduling
    /// heuristics and tests).
    pub fn available(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .free
            .len()
    }

    /// Leases a slot if one is free right now.
    pub fn try_lease(&self) -> Option<WorkerLease> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.free.pop().map(|slot| WorkerLease {
            slot: Some(slot),
            shared: Arc::clone(&self.shared),
        })
    }

    /// Leases a slot, blocking until one is free.
    pub fn lease(&self) -> WorkerLease {
        self.lease_timeout(Duration::MAX)
            .expect("untimed lease wait cannot expire")
    }

    /// Leases a slot, blocking up to `timeout`; `None` on expiry.
    pub fn lease_timeout(&self, timeout: Duration) -> Option<WorkerLease> {
        let deadline = std::time::Instant::now().checked_add(timeout);
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(slot) = st.free.pop() {
                return Some(WorkerLease {
                    slot: Some(slot),
                    shared: Arc::clone(&self.shared),
                });
            }
            match deadline {
                // Duration::MAX overflowed Instant: wait without a deadline.
                None => {
                    st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _) = self
                        .shared
                        .cv
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closing = true;
        let free = std::mem::take(&mut st.free);
        drop(st);
        // Slots still leased shut down when their lease drops (it observes
        // `closing`); the free ones shut down here.
        for slot in free {
            self.shared.shutdown_slot(slot);
        }
    }
}

/// Exclusive use of one pool slot. Dropping the lease returns the slot —
/// workers still running — to the pool, or shuts it down if the pool
/// itself has been dropped.
pub struct WorkerLease {
    slot: Option<Slot>,
    shared: Arc<PoolShared>,
}

impl WorkerLease {
    fn slot(&self) -> &Slot {
        self.slot.as_ref().expect("slot present until drop")
    }

    /// The slot's controller communicator (rank 0 of its worker world).
    pub fn comm(&self) -> &Communicator {
        &self.slot().comm
    }

    /// Workers in the leased slot.
    pub fn workers(&self) -> usize {
        self.shared.workers_per_slot
    }

    /// Stable index of the leased slot within the pool.
    pub fn slot_index(&self) -> usize {
        self.slot().index
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        let slot = self.slot.take().expect("slot present until drop");
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closing {
            drop(st);
            self.shared.shutdown_slot(slot);
        } else {
            st.free.push(slot);
            drop(st);
            self.shared.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Echo workers: double incoming numbers until the shutdown sentinel.
    fn echo_pool(slots: usize, workers: usize) -> WorkerPool {
        WorkerPool::new(
            slots,
            workers,
            |comm| loop {
                let (v, _) = comm.recv::<u64>(0, 0);
                if v == u64::MAX {
                    return;
                }
                comm.send(&(v * 2), 0, 1);
            },
            |comm, workers| {
                for w in 1..=workers {
                    comm.send(&u64::MAX, w, 0);
                }
            },
        )
    }

    #[test]
    fn leases_are_exclusive_and_isolated() {
        let pool = echo_pool(2, 2);
        let a = pool.try_lease().expect("slot free");
        let b = pool.try_lease().expect("second slot free");
        assert!(pool.try_lease().is_none(), "both slots out");
        assert_ne!(a.slot_index(), b.slot_index());
        // Concurrent use of both leases: traffic never crosses worlds.
        a.comm().send(&10u64, 1, 0);
        b.comm().send(&100u64, 1, 0);
        let (va, _) = a.comm().recv::<u64>(1, 1);
        let (vb, _) = b.comm().recv::<u64>(1, 1);
        assert_eq!((va, vb), (20, 200));
    }

    #[test]
    fn released_slot_is_leased_again_with_workers_alive() {
        let pool = echo_pool(1, 1);
        let first = pool.lease();
        let idx = first.slot_index();
        first.comm().send(&3u64, 1, 0);
        assert_eq!(first.comm().recv::<u64>(1, 1).0, 6);
        drop(first);
        let second = pool.lease();
        assert_eq!(second.slot_index(), idx);
        // Same worker, still in its loop.
        second.comm().send(&4u64, 1, 0);
        assert_eq!(second.comm().recv::<u64>(1, 1).0, 8);
    }

    #[test]
    fn blocking_lease_wakes_on_release() {
        let pool = Arc::new(echo_pool(1, 1));
        let held = pool.lease();
        let woke = Arc::new(AtomicUsize::new(0));
        let (p2, w2) = (Arc::clone(&pool), Arc::clone(&woke));
        let waiter = std::thread::spawn(move || {
            let lease = p2.lease();
            w2.store(1, Ordering::SeqCst);
            drop(lease);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "lease still held");
        drop(held);
        waiter.join().unwrap();
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lease_timeout_expires_when_pool_exhausted() {
        let pool = echo_pool(1, 1);
        let _held = pool.lease();
        assert!(pool.lease_timeout(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn pool_drop_shuts_down_free_and_leased_slots() {
        let pool = echo_pool(2, 2);
        let held = pool.lease();
        drop(pool); // free slot shuts down here
        held.comm().send(&5u64, 1, 0);
        assert_eq!(held.comm().recv::<u64>(1, 1).0, 10);
        drop(held); // leased slot shuts down on release
    }
}
