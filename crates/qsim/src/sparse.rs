//! Sparse full-state simulator: only nonzero amplitudes are stored.
//!
//! Structured states — the cat/GHZ spanning trees and teleport chains the
//! paper's protocols are built from — have very few nonzero amplitudes, so a
//! map keyed by basis state simulates *real amplitudes* at hundreds of ranks
//! where the dense [`crate::Simulator`] caps out near 20 qubits (the design of
//! the Microsoft QDK `quantum_sparse_sim`). [`SparseSim`] mirrors the
//! [`crate::Simulator`] facade method-for-method and is proven against it by
//! the cross-backend conformance harness.
//!
//! # Canonical bit-identity rule
//!
//! `SparseSim` is bit-identical to the dense engine up to one canonical rule:
//!
//! 1. an **absent map entry is equivalent to an exact-zero dense amplitude**,
//!    and
//! 2. **`-0.0` is equivalent to `+0.0`** in either representation.
//!
//! Everything else — every nonzero amplitude, every measurement outcome,
//! every expectation value, every RNG draw — matches the dense engine
//! *bitwise* for the same seed and noise model. This works because the sparse
//! kernels evaluate the *same floating-point expressions in the same order*
//! as the dense kernels, treating absent entries as exact zero:
//!
//! * gate application computes `m[0][0]*a0 + m[0][1]*a1` (etc.) exactly as
//!   [`crate::apply::apply_1q`] does, and results that are exactly `±0.0` are
//!   dropped from the map (IEEE-754 guarantees a signed zero operand can only
//!   ever produce results differing in the sign of a zero — the difference
//!   never escapes the zero equivalence class);
//! * every probability/norm/expectation accumulation iterates present entries
//!   in **ascending basis-index order**, which matches the dense loop because
//!   dense's exact-zero entries contribute `+0.0` — a bitwise no-op on the
//!   accumulator;
//! * collapse, free-compaction (`j = (i & low) | ((i >> 1) & !low)`) and
//!   renormalization reuse the dense formulas verbatim;
//! * the measurement RNG and the decoupled noise RNG are seeded and drawn in
//!   exactly the same order as [`crate::Simulator`], so zero-rate noise models
//!   are bit-identical to noiseless runs and trajectories line up draw for
//!   draw.
//!
//! CNOT and SWAP are pure key permutations (no float arithmetic at all) and
//! CZ is a sign flip, mirroring the dense fast paths.

use crate::complex::{Complex, C_ONE, C_ZERO};
use crate::gates::{Gate, Mat2, Mat4, Pauli};
use crate::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use crate::registry::{classical_outcome, QubitRegistry};
use crate::sim::{QubitId, SimError};
use crate::state::{State, NORM_TOL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of 64-bit words in a [`BasisKey`].
pub const KEY_WORDS: usize = 8;

/// Maximum number of simultaneously live qubits (512). The 128-rank cat
/// broadcast peaks near 130 live qubits (one share per rank plus transient
/// EPR halves), comfortably inside this bound.
pub const MAX_QUBITS: usize = KEY_WORDS * 64;

/// A basis-state index wide enough for paper-scale rank counts: 512 bits,
/// little-endian words (`word 0` holds qubit positions 0..64).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct BasisKey(pub [u64; KEY_WORDS]);

impl BasisKey {
    /// The all-zero basis state |0...0>.
    pub const ZERO: BasisKey = BasisKey([0; KEY_WORDS]);

    /// Builds a key from a dense basis index (low 64 bits).
    pub fn from_index(i: usize) -> Self {
        let mut k = BasisKey::ZERO;
        k.0[0] = i as u64;
        k
    }

    /// The dense basis index, if it fits in a `usize`.
    pub fn to_index(self) -> Option<usize> {
        if self.0[1..].iter().any(|&w| w != 0) {
            return None;
        }
        usize::try_from(self.0[0]).ok()
    }

    /// Value of bit `pos`.
    #[inline]
    pub fn bit(self, pos: usize) -> bool {
        (self.0[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Copy with bit `pos` set.
    #[inline]
    pub fn with_set(mut self, pos: usize) -> Self {
        self.0[pos / 64] |= 1u64 << (pos % 64);
        self
    }

    /// Copy with bit `pos` cleared.
    #[inline]
    pub fn with_cleared(mut self, pos: usize) -> Self {
        self.0[pos / 64] &= !(1u64 << (pos % 64));
        self
    }

    /// Copy with bit `pos` flipped.
    #[inline]
    pub fn with_flipped(mut self, pos: usize) -> Self {
        self.0[pos / 64] ^= 1u64 << (pos % 64);
        self
    }

    /// Bitwise XOR.
    #[inline]
    pub fn xor(self, other: BasisKey) -> Self {
        let mut r = self;
        for (w, o) in r.0.iter_mut().zip(other.0) {
            *w ^= o;
        }
        r
    }

    /// Bitwise AND.
    #[inline]
    pub fn and(self, other: BasisKey) -> Self {
        let mut r = self;
        for (w, o) in r.0.iter_mut().zip(other.0) {
            *w &= o;
        }
        r
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Parity of the set-bit count (`true` = odd).
    #[inline]
    pub fn parity(self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Mask with bits `0..pos` set — the 512-bit analogue of `(1 << pos) - 1`.
    pub fn low_mask(pos: usize) -> Self {
        let mut m = BasisKey::ZERO;
        for (w, word) in m.0.iter_mut().enumerate() {
            let lo = w * 64;
            if pos >= lo + 64 {
                *word = u64::MAX;
            } else if pos > lo {
                *word = (1u64 << (pos - lo)) - 1;
            }
        }
        m
    }

    /// Shift right by one bit across all words.
    fn shr1(self) -> Self {
        let mut r = BasisKey::ZERO;
        for w in 0..KEY_WORDS {
            r.0[w] = self.0[w] >> 1;
            if w + 1 < KEY_WORDS {
                r.0[w] |= self.0[w + 1] << 63;
            }
        }
        r
    }

    /// Removes bit `pos`, shifting all higher bits down one position — the
    /// key analogue of the dense compaction `(i & low) | ((i >> 1) & !low)`
    /// in [`crate::state::State::remove_qubit`].
    pub fn remove_bit(self, pos: usize) -> Self {
        let low = BasisKey::low_mask(pos);
        let mut r = self.and(low);
        let hi = self.shr1();
        for w in 0..KEY_WORDS {
            r.0[w] |= hi.0[w] & !low.0[w];
        }
        r
    }
}

impl Ord for BasisKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Most-significant word first = numeric order of the 512-bit index.
        for w in (0..KEY_WORDS).rev() {
            match self.0[w].cmp(&other.0[w]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for BasisKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Inserts `a` at `k`, or removes `k` when `a` is exactly `±0.0` — the map
/// invariant is "no exact-zero entries".
fn set_or_prune(amps: &mut HashMap<BasisKey, Complex>, k: BasisKey, a: Complex) {
    if a.re == 0.0 && a.im == 0.0 {
        amps.remove(&k);
    } else {
        amps.insert(k, a);
    }
}

/// Present entries in ascending basis-index order — the iteration order every
/// accumulation must use to stay bitwise-aligned with the dense loops.
fn sorted_entries(amps: &HashMap<BasisKey, Complex>) -> Vec<(BasisKey, Complex)> {
    let mut v: Vec<(BasisKey, Complex)> = amps.iter().map(|(k, &a)| (*k, a)).collect();
    v.sort_unstable_by_key(|x| x.0);
    v
}

/// Probability of reading 1 at state position `pos` — free function so the
/// noise-sampling closure can borrow the map disjointly from the noise RNG,
/// exactly like `measure::prob_one(&self.state, pos)` on the dense path.
fn prob_one_at(amps: &HashMap<BasisKey, Complex>, pos: usize) -> f64 {
    sorted_entries(amps)
        .iter()
        .filter(|(k, _)| k.bit(pos))
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Sparse full-state simulator with dynamic qubit allocation. See the module
/// docs for the canonical bit-identity rule relative to [`crate::Simulator`].
pub struct SparseSim {
    amps: HashMap<BasisKey, Complex>,
    n_qubits: usize,
    reg: QubitRegistry,
    rng: StdRng,
    noise: NoiseState,
    gate_count: u64,
    measurement_count: u64,
}

impl SparseSim {
    /// Creates an empty, noiseless simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        SparseSim::with_noise(seed, NoiseModel::ideal())
    }

    /// Creates an empty simulator with seed and noise model; RNG streams are
    /// seeded exactly as [`crate::Simulator::with_noise`] so trajectories are
    /// draw-for-draw identical.
    pub fn with_noise(seed: u64, model: NoiseModel) -> Self {
        let mut amps = HashMap::new();
        amps.insert(BasisKey::ZERO, C_ONE); // the 0-qubit scalar state
        SparseSim {
            amps,
            n_qubits: 0,
            reg: QubitRegistry::new(),
            rng: StdRng::seed_from_u64(seed),
            noise: NoiseState::new(seed, model),
            gate_count: 0,
            measurement_count: 0,
        }
    }

    /// The configured noise model.
    pub fn noise_model(&self) -> NoiseModel {
        self.noise.model
    }

    /// Number of currently allocated qubits.
    pub fn n_qubits(&self) -> usize {
        self.reg.len()
    }

    /// Total gates applied so far.
    pub fn gate_count(&self) -> u64 {
        self.gate_count
    }

    /// Total measurements performed so far.
    pub fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    /// Number of nonzero amplitudes currently stored — the quantity that
    /// stays small for structured states and makes paper-scale runs feasible.
    pub fn nonzero_count(&self) -> usize {
        self.amps.len()
    }

    /// Samples and applies the `class` channel at each listed position, in
    /// the same draw order as the dense engine. Not counted as gates.
    fn inject(&mut self, class: OpClass, positions: &[usize]) {
        let ch = self.noise.model.channel(class);
        if ch.is_ideal() {
            return;
        }
        for &pos in positions {
            let action = ch.sample(|| prob_one_at(&self.amps, pos), &mut self.noise.rng);
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => self.apply_1q_at(pos, &p.matrix()),
                ChannelAction::Kraus(m) => self.apply_1q_at(pos, &m),
            }
        }
    }

    /// Allocates one fresh qubit in |0> as the new most-significant position.
    /// Existing keys keep their value (the new bit is 0 everywhere).
    pub fn alloc(&mut self) -> QubitId {
        assert!(self.n_qubits < MAX_QUBITS, "sparse qubit budget exhausted");
        let pos = self.n_qubits;
        self.n_qubits += 1;
        self.reg.push(pos)
    }

    /// Allocates `n` fresh qubits in |0>.
    pub fn alloc_n(&mut self, n: usize) -> Vec<QubitId> {
        (0..n).map(|_| self.alloc()).collect()
    }

    fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.reg.pos(q)
    }

    /// Frees a qubit already in a classical state; errors with
    /// [`SimError::NotClassical`] otherwise — same contract as the dense
    /// engine (`QMPI_Free_qmem`).
    pub fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        let outcome = classical_outcome(q, prob_one_at(&self.amps, pos))?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    /// Measures a qubit and frees it in one step.
    pub fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let outcome = self.measure(q)?;
        let pos = self.pos(q)?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn remove_at(&mut self, q: QubitId, pos: usize, outcome: bool) {
        // Mirror of State::remove_qubit: keep the `outcome` branch, compact
        // higher bits down, assert the discarded mass, renormalize.
        let mut out: HashMap<BasisKey, Complex> = HashMap::with_capacity(self.amps.len());
        let mut dropped = 0.0f64;
        for (k, a) in sorted_entries(&self.amps) {
            if k.bit(pos) == outcome {
                out.insert(k.remove_bit(pos), a);
            } else {
                dropped += a.norm_sqr();
            }
        }
        assert!(
            dropped < NORM_TOL,
            "removing qubit {pos} with outcome {outcome} would discard {dropped:.3e} probability; collapse it first"
        );
        self.amps = out;
        self.n_qubits -= 1;
        self.reg.remove(q, pos);
        self.renormalize();
    }

    fn renormalize(&mut self) {
        let norm_sqr: f64 = sorted_entries(&self.amps)
            .iter()
            .map(|(_, a)| a.norm_sqr())
            .sum();
        let n = norm_sqr.sqrt();
        assert!(n > 0.0, "cannot renormalize the zero vector");
        let inv = 1.0 / n;
        let keys: Vec<BasisKey> = self.amps.keys().copied().collect();
        for k in keys {
            let a = self.amps[&k].scale(inv);
            set_or_prune(&mut self.amps, k, a);
        }
    }

    /// Single-qubit pair kernel: same expressions as `apply::apply_1q`, with
    /// absent entries read as exact zero and exact-zero results pruned. With
    /// `cmask = Some(m)` only pairs whose base index has every bit of `m` set
    /// are touched (mirror of `apply::apply_controlled_1q`).
    fn apply_pairs(&mut self, target: usize, m: &Mat2, cmask: Option<BasisKey>) {
        let mut pairs: HashMap<BasisKey, [Complex; 2]> = HashMap::new();
        for (k, &a) in self.amps.iter() {
            if let Some(cm) = cmask {
                if k.and(cm) != cm {
                    continue;
                }
            }
            let base = k.with_cleared(target);
            pairs.entry(base).or_insert([C_ZERO; 2])[k.bit(target) as usize] = a;
        }
        for (base, [a0, a1]) in pairs {
            let n0 = m[0][0] * a0 + m[0][1] * a1;
            let n1 = m[1][0] * a0 + m[1][1] * a1;
            set_or_prune(&mut self.amps, base, n0);
            set_or_prune(&mut self.amps, base.with_set(target), n1);
        }
    }

    fn apply_1q_at(&mut self, target: usize, m: &Mat2) {
        self.apply_pairs(target, m, None);
    }

    /// CNOT fast path: a pure key permutation, mirroring the dense
    /// `amps.swap` walk (no floating-point arithmetic at all).
    fn apply_cnot_at(&mut self, control: usize, target: usize) {
        let moved: Vec<(BasisKey, Complex)> = self
            .amps
            .iter()
            .filter(|(k, _)| k.bit(control))
            .map(|(k, &a)| (*k, a))
            .collect();
        for (k, _) in &moved {
            self.amps.remove(k);
        }
        for (k, a) in moved {
            self.amps.insert(k.with_flipped(target), a);
        }
    }

    /// CZ fast path: phase −1 where both bits are 1, as in the dense kernel.
    fn apply_cz_at(&mut self, a: usize, b: usize) {
        for (k, amp) in self.amps.iter_mut() {
            if k.bit(a) && k.bit(b) {
                *amp = -*amp;
            }
        }
    }

    /// SWAP fast path: key permutation exchanging bits `a` and `b`.
    fn apply_swap_at(&mut self, a: usize, b: usize) {
        let moved: Vec<(BasisKey, Complex)> = self
            .amps
            .iter()
            .filter(|(k, _)| k.bit(a) != k.bit(b))
            .map(|(k, &amp)| (*k, amp))
            .collect();
        for (k, _) in &moved {
            self.amps.remove(k);
        }
        for (k, amp) in moved {
            self.amps.insert(k.with_flipped(a).with_flipped(b), amp);
        }
    }

    /// Applies a single-qubit gate.
    pub fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        self.apply_1q_at(pos, &gate.matrix());
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    /// Applies a pre-fused 2×2 unitary ([`crate::batch::BatchOp::Fused1q`])
    /// through the same pair kernel as [`SparseSim::apply`]; one gate.
    pub fn apply_fused_1q(&mut self, q: QubitId, m: &Mat2) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        self.apply_1q_at(pos, m);
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    /// Applies a merged diagonal sweep
    /// ([`crate::batch::BatchOp::PhaseSweep`]) in one pass over the stored
    /// entries: factors multiply sequentially in slice order, then odd
    /// CZ-parity negates — the identical per-amplitude sequence the dense
    /// engine runs (absent entries are exact zeros and stay zero under
    /// unit-modulus factors, so nothing needs pruning). One gate.
    pub fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, Complex, Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> Result<(), SimError> {
        let mut factors = Vec::with_capacity(diags.len());
        let mut touched = Vec::with_capacity(diags.len() + 2 * czs.len());
        for &(q, d0, d1) in diags {
            let pos = self.pos(q)?;
            factors.push((pos, d0, d1));
            touched.push(pos);
        }
        let mut flips = Vec::with_capacity(czs.len());
        for &(a, b) in czs {
            if a == b {
                return Err(SimError::DuplicateQubit(a));
            }
            let pa = self.pos(a)?;
            let pb = self.pos(b)?;
            flips.push((pa, pb));
            touched.push(pa);
            touched.push(pb);
        }
        for (k, amp) in self.amps.iter_mut() {
            let mut v = *amp;
            for &(pos, d0, d1) in &factors {
                v *= if k.bit(pos) { d1 } else { d0 };
            }
            if flips.iter().filter(|&&(a, b)| k.bit(a) && k.bit(b)).count() % 2 == 1 {
                v = -v;
            }
            *amp = v;
        }
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &touched);
        Ok(())
    }

    /// Applies a controlled single-qubit gate (any number of controls).
    pub fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        let tpos = self.pos(target)?;
        let mut cpos = Vec::with_capacity(controls.len());
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
            cpos.push(self.pos(c)?);
        }
        let mut cmask = BasisKey::ZERO;
        for &c in &cpos {
            cmask = cmask.with_set(c);
        }
        self.apply_pairs(tpos, &gate.matrix(), Some(cmask));
        self.gate_count += 1;
        cpos.push(tpos);
        self.inject(OpClass::Gate2q, &cpos);
        Ok(())
    }

    /// CNOT with `control`, `target`.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), SimError> {
        if control == target {
            return Err(SimError::DuplicateQubit(control));
        }
        let c = self.pos(control)?;
        let t = self.pos(target)?;
        self.apply_cnot_at(c, t);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[c, t]);
        Ok(())
    }

    /// Controlled-Z (symmetric).
    pub fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.apply_cz_at(pa, pb);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    /// SWAP two qubits.
    pub fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.apply_swap_at(pa, pb);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    /// Toffoli (doubly-controlled NOT).
    pub fn toffoli(&mut self, c1: QubitId, c2: QubitId, target: QubitId) -> Result<(), SimError> {
        self.apply_controlled(&[c1, c2], Gate::X, target)
    }

    /// Applies an arbitrary two-qubit unitary to `(high, low)`, quartet by
    /// quartet with the dense accumulation order (`acc += m[r][c] * a[c]`).
    pub fn apply_2q(&mut self, high: QubitId, low: QubitId, m: &Mat4) -> Result<(), SimError> {
        if high == low {
            return Err(SimError::DuplicateQubit(high));
        }
        let hp = self.pos(high)?;
        let lp = self.pos(low)?;
        let mut quartets: HashMap<BasisKey, [Complex; 4]> = HashMap::new();
        for (k, &a) in self.amps.iter() {
            let base = k.with_cleared(hp).with_cleared(lp);
            let slot = (k.bit(hp) as usize) << 1 | k.bit(lp) as usize;
            quartets.entry(base).or_insert([C_ZERO; 4])[slot] = a;
        }
        for (base, a) in quartets {
            let idx = [
                base,
                base.with_set(lp),
                base.with_set(hp),
                base.with_set(hp).with_set(lp),
            ];
            for (r, &out_k) in idx.iter().enumerate() {
                let mut acc = C_ZERO;
                for (c, &ac) in a.iter().enumerate() {
                    acc += m[r][c] * ac;
                }
                set_or_prune(&mut self.amps, out_k, acc);
            }
        }
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[hp, lp]);
        Ok(())
    }

    /// Probability of measuring 1 on `q` (non-destructive).
    pub fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        Ok(prob_one_at(&self.amps, self.pos(q)?))
    }

    /// Collapse mirror of `measure::collapse`: sector norm accumulated in
    /// ascending order, `assert norm > 1e-12`, scale by `1/sqrt(norm)`.
    fn collapse_at(&mut self, target: usize, outcome: bool) {
        let mut norm = 0.0f64;
        let mut doomed = Vec::new();
        for (k, a) in sorted_entries(&self.amps) {
            if k.bit(target) == outcome {
                norm += a.norm_sqr();
            } else {
                doomed.push(k);
            }
        }
        assert!(
            norm > 1e-12,
            "collapsing qubit {target} onto probability-zero outcome"
        );
        for k in doomed {
            self.amps.remove(&k);
        }
        let inv = 1.0 / norm.sqrt();
        let keys: Vec<BasisKey> = self.amps.keys().copied().collect();
        for k in keys {
            let a = self.amps[&k].scale(inv);
            set_or_prune(&mut self.amps, k, a);
        }
    }

    /// Projective measurement with collapse; readout noise applied first.
    pub fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        self.inject(OpClass::Measurement, &[pos]);
        self.measurement_count += 1;
        let p1 = prob_one_at(&self.amps, pos);
        let outcome = self.rng.gen::<f64>() < p1;
        self.collapse_at(pos, outcome);
        Ok(outcome)
    }

    /// Non-destructive joint Z-parity measurement over `qubits`.
    pub fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        let mut pos = Vec::with_capacity(qubits.len());
        for &q in qubits {
            pos.push(self.pos(q)?);
        }
        self.inject(OpClass::Measurement, &pos);
        self.measurement_count += 1;
        let mut mask = BasisKey::ZERO;
        for &p in &pos {
            mask = mask.with_set(p);
        }
        let mut p_odd = 0.0f64;
        for (k, a) in sorted_entries(&self.amps) {
            if k.and(mask).parity() {
                p_odd += a.norm_sqr();
            }
        }
        let outcome = self.rng.gen::<f64>() < p_odd;
        let want_odd = outcome;
        let mut norm = 0.0f64;
        let mut doomed = Vec::new();
        for (k, a) in sorted_entries(&self.amps) {
            if k.and(mask).parity() == want_odd {
                norm += a.norm_sqr();
            } else {
                doomed.push(k);
            }
        }
        for k in doomed {
            self.amps.remove(&k);
        }
        let inv = 1.0 / norm.sqrt();
        let keys: Vec<BasisKey> = self.amps.keys().copied().collect();
        for k in keys {
            let a = self.amps[&k].scale(inv);
            set_or_prune(&mut self.amps, k, a);
        }
        Ok(outcome)
    }

    /// Expectation value of a Pauli string given as `(qubit, pauli)` pairs —
    /// the mirror of `measure::expectation_pauli` over present entries in
    /// ascending order, with the identical `is_negligible(1e-300)` skip.
    pub fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        let mut x_mask = BasisKey::ZERO;
        let mut z_mask = BasisKey::ZERO;
        let mut y_count = 0u32;
        for &(q, op) in terms {
            let pos = self.pos(q)?;
            match op {
                Pauli::X => x_mask = x_mask.with_set(pos),
                Pauli::Z => z_mask = z_mask.with_set(pos),
                Pauli::Y => {
                    x_mask = x_mask.with_set(pos);
                    z_mask = z_mask.with_set(pos);
                    y_count += 1;
                }
            }
        }
        let mut acc = Complex::default();
        let i_pow = match y_count % 4 {
            0 => Complex::real(1.0),
            1 => crate::complex::C_I,
            2 => Complex::real(-1.0),
            _ => -crate::complex::C_I,
        };
        for (k, a) in sorted_entries(&self.amps) {
            if a.is_negligible(1e-300) {
                continue;
            }
            let sign = if k.and(z_mask).parity() { -1.0 } else { 1.0 };
            let partner = k.xor(x_mask);
            let b = self.amps.get(&partner).copied().unwrap_or(C_ZERO);
            acc += b.conj() * (a.scale(sign));
        }
        let val = i_pow * acc;
        debug_assert!(
            val.im.abs() < 1e-9,
            "expectation of Hermitian operator must be real"
        );
        Ok(val.re)
    }

    /// Entangles two fresh |0> qubits into (|00> + |11>)/sqrt(2); counted as
    /// the H + CNOT it stands for, with interconnect noise on the EPR class.
    pub fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        self.apply_1q_at(pa, &Gate::H.matrix());
        self.apply_cnot_at(pa, pb);
        self.gate_count += 2;
        self.inject(OpClass::Epr, &[pa, pb]);
        Ok(())
    }

    /// Dense snapshot with qubits ordered as in `order`, for states small
    /// enough to materialize (< 30 qubits). Absent entries appear as `+0.0`.
    pub fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        if self.n_qubits >= 30 {
            return Err(SimError::Unsupported(format!(
                "dense snapshot of {} qubits from the sparse engine",
                self.n_qubits
            )));
        }
        let perm = self.reg.permutation(order)?;
        let mut st = State::zero(self.n_qubits);
        st.amplitudes_mut()[0] = C_ZERO;
        for (k, &a) in self.amps.iter() {
            let idx = k
                .to_index()
                .expect("key exceeds dense range despite n_qubits < 30");
            st.amplitudes_mut()[idx] = a;
        }
        Ok(st.permuted(&perm))
    }

    /// The amplitude of the basis state where the qubits in `ones` are 1 and
    /// all other live qubits are 0 — usable at any rank count, unlike
    /// [`SparseSim::state_vector`].
    pub fn amplitude_of(&self, ones: &[QubitId]) -> Result<Complex, SimError> {
        let mut k = BasisKey::ZERO;
        for &q in ones {
            k = k.with_set(self.pos(q)?);
        }
        Ok(self.amps.get(&k).copied().unwrap_or(C_ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    const TOL: f64 = 1e-12;

    #[test]
    fn basis_key_orders_numerically() {
        let a = BasisKey::from_index(3);
        let mut b = BasisKey::ZERO;
        b.0[1] = 1; // bit 64
        assert!(a < b);
        assert!(BasisKey::ZERO < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn basis_key_bit_ops_across_words() {
        let k = BasisKey::ZERO
            .with_set(0)
            .with_set(63)
            .with_set(64)
            .with_set(511);
        assert!(k.bit(0) && k.bit(63) && k.bit(64) && k.bit(511));
        assert!(!k.bit(1) && !k.bit(65));
        assert_eq!(k.count_ones(), 4);
        assert!(!k.parity());
        assert_eq!(k.with_cleared(64).count_ones(), 3);
        assert_eq!(k.with_flipped(2).count_ones(), 5);
    }

    #[test]
    fn basis_key_remove_bit_compacts_across_words() {
        // Bits {2, 63, 64, 100}; removing bit 63 shifts 64 -> 63, 100 -> 99.
        let k = BasisKey::ZERO
            .with_set(2)
            .with_set(63)
            .with_set(64)
            .with_set(100);
        let r = k.remove_bit(63);
        assert!(r.bit(2) && r.bit(63) && r.bit(99));
        assert_eq!(r.count_ones(), 3);
        // Removing an unset low bit just shifts everything down.
        let r2 = k.remove_bit(0);
        assert!(r2.bit(1) && r2.bit(62) && r2.bit(63) && r2.bit(99));
    }

    #[test]
    fn low_mask_boundaries() {
        assert_eq!(BasisKey::low_mask(0), BasisKey::ZERO);
        assert_eq!(BasisKey::low_mask(64).0[0], u64::MAX);
        assert_eq!(BasisKey::low_mask(64).0[1], 0);
        assert_eq!(BasisKey::low_mask(65).0[1], 1);
        assert_eq!(BasisKey::low_mask(512).count_ones(), 512);
    }

    #[test]
    fn ghz_has_two_amplitudes() {
        let mut sim = SparseSim::new(1);
        let qs = sim.alloc_n(20); // already past the dense 29-qubit-alloc cap's comfort zone
        sim.apply(Gate::H, qs[0]).unwrap();
        for w in qs.windows(2) {
            sim.cnot(w[0], w[1]).unwrap();
        }
        assert_eq!(sim.nonzero_count(), 2);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let a0 = sim.amplitude_of(&[]).unwrap();
        let a1 = sim.amplitude_of(&qs).unwrap();
        assert!((a0.re - h).abs() < TOL && a0.im == 0.0);
        assert!((a1.re - h).abs() < TOL && a1.im == 0.0);
        let z: Vec<_> = qs.iter().map(|&q| (q, Pauli::Z)).collect();
        let x: Vec<_> = qs.iter().map(|&q| (q, Pauli::X)).collect();
        assert!((sim.expectation(&z).unwrap() - 1.0).abs() < TOL);
        assert!((sim.expectation(&x).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn wide_ghz_beyond_dense_reach() {
        // 300 qubits: impossible densely (2^300 amplitudes), two entries here.
        let mut sim = SparseSim::new(5);
        let qs = sim.alloc_n(300);
        sim.apply(Gate::H, qs[0]).unwrap();
        for w in qs.windows(2) {
            sim.cnot(w[0], w[1]).unwrap();
        }
        assert_eq!(sim.nonzero_count(), 2);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sim.amplitude_of(&qs).unwrap().re - h).abs() < TOL);
        assert!(sim.state_vector(&qs).is_err(), "dense snapshot must refuse");
        // Parity measurement across all 300 qubits is even, state survives.
        assert!(!sim.measure_z_parity(&qs).unwrap());
        assert_eq!(sim.nonzero_count(), 2);
        // Measure one share: the whole cat collapses to a single key.
        let m = sim.measure(qs[150]).unwrap();
        assert_eq!(sim.nonzero_count(), 1);
        for &q in &qs {
            assert_eq!(sim.free(q).unwrap(), m);
        }
        assert_eq!(sim.n_qubits(), 0);
    }

    /// Drives the same op sequence through dense and sparse and asserts
    /// *bitwise* equal snapshots under the canonical rule (+0.0 == -0.0 is
    /// free here because exact zeros never survive in either snapshot check).
    fn assert_matches_dense(seed: u64, noise: NoiseModel, ops: impl Fn(&mut dyn OpSink)) {
        let mut dense = Simulator::with_noise(seed, noise);
        let mut sparse = SparseSim::with_noise(seed, noise);
        ops(&mut DenseSink(&mut dense));
        ops(&mut SparseSink(&mut sparse));
        let dq: Vec<QubitId> = (0..dense.n_qubits() as u64).map(QubitId).collect();
        let ds = dense.state_vector(&dq).unwrap();
        let ss = sparse.state_vector(&dq).unwrap();
        assert_eq!(dense.gate_count(), sparse.gate_count());
        assert_eq!(dense.measurement_count(), sparse.measurement_count());
        for (i, (a, b)) in ds
            .amplitudes()
            .iter()
            .zip(ss.amplitudes().iter())
            .enumerate()
        {
            let canon = |x: f64| if x == 0.0 { 0.0f64 } else { x };
            assert_eq!(
                canon(a.re).to_bits(),
                canon(b.re).to_bits(),
                "re mismatch at index {i}: {a:?} vs {b:?}"
            );
            assert_eq!(
                canon(a.im).to_bits(),
                canon(b.im).to_bits(),
                "im mismatch at index {i}: {a:?} vs {b:?}"
            );
        }
    }

    trait OpSink {
        fn alloc_n(&mut self, n: usize) -> Vec<QubitId>;
        fn apply(&mut self, g: Gate, q: QubitId);
        fn cnot(&mut self, c: QubitId, t: QubitId);
        fn cz(&mut self, a: QubitId, b: QubitId);
        fn swap(&mut self, a: QubitId, b: QubitId);
        fn toffoli(&mut self, c1: QubitId, c2: QubitId, t: QubitId);
        fn measure(&mut self, q: QubitId) -> bool;
        fn measure_and_free(&mut self, q: QubitId) -> bool;
        fn entangle_epr(&mut self, a: QubitId, b: QubitId);
        fn expectation(&mut self, terms: &[(QubitId, Pauli)]) -> f64;
    }

    struct DenseSink<'a>(&'a mut Simulator);
    struct SparseSink<'a>(&'a mut SparseSim);

    macro_rules! impl_sink {
        ($t:ty) => {
            impl OpSink for $t {
                fn alloc_n(&mut self, n: usize) -> Vec<QubitId> {
                    self.0.alloc_n(n)
                }
                fn apply(&mut self, g: Gate, q: QubitId) {
                    self.0.apply(g, q).unwrap()
                }
                fn cnot(&mut self, c: QubitId, t: QubitId) {
                    self.0.cnot(c, t).unwrap()
                }
                fn cz(&mut self, a: QubitId, b: QubitId) {
                    self.0.cz(a, b).unwrap()
                }
                fn swap(&mut self, a: QubitId, b: QubitId) {
                    self.0.swap(a, b).unwrap()
                }
                fn toffoli(&mut self, c1: QubitId, c2: QubitId, t: QubitId) {
                    self.0.toffoli(c1, c2, t).unwrap()
                }
                fn measure(&mut self, q: QubitId) -> bool {
                    self.0.measure(q).unwrap()
                }
                fn measure_and_free(&mut self, q: QubitId) -> bool {
                    self.0.measure_and_free(q).unwrap()
                }
                fn entangle_epr(&mut self, a: QubitId, b: QubitId) {
                    self.0.entangle_epr(a, b).unwrap()
                }
                fn expectation(&mut self, terms: &[(QubitId, Pauli)]) -> f64 {
                    self.0.expectation(terms).unwrap()
                }
            }
        };
    }
    impl_sink!(DenseSink<'_>);
    impl_sink!(SparseSink<'_>);

    #[test]
    fn bitwise_matches_dense_on_clifford_t_mix() {
        assert_matches_dense(42, NoiseModel::ideal(), |s| {
            let q = s.alloc_n(5);
            s.apply(Gate::H, q[0]);
            s.apply(Gate::T, q[1]);
            s.cnot(q[0], q[1]);
            s.apply(Gate::Ry(0.37), q[2]);
            s.cz(q[1], q[2]);
            s.swap(q[0], q[3]);
            s.toffoli(q[0], q[1], q[4]);
            s.apply(Gate::Sdg, q[3]);
            s.apply(Gate::Rz(-1.2), q[4]);
            s.cnot(q[4], q[0]);
            s.apply(Gate::Tdg, q[2]);
            s.apply(Gate::H, q[4]);
        });
    }

    #[test]
    fn bitwise_matches_dense_through_measure_free_epr() {
        assert_matches_dense(7, NoiseModel::ideal(), |s| {
            let q = s.alloc_n(6);
            s.entangle_epr(q[0], q[1]);
            s.apply(Gate::H, q[2]);
            s.cnot(q[2], q[3]);
            let m = s.measure(q[2]);
            if m {
                s.apply(Gate::X, q[3]);
            }
            s.measure_and_free(q[4]);
            s.measure_and_free(q[5]);
            s.apply(Gate::T, q[3]);
            let _ = s.expectation(&[(q[0], Pauli::Z), (q[1], Pauli::Z)]);
            let _ = s.expectation(&[(q[0], Pauli::X), (q[1], Pauli::X)]);
            let _ = s.expectation(&[(q[3], Pauli::Y)]);
        });
    }

    #[test]
    fn bitwise_matches_dense_under_noise_trajectories() {
        for (seed, model) in [
            (1u64, NoiseModel::depolarizing(0.3)),
            (2, NoiseModel::dephasing(0.4)),
            (3, NoiseModel::amplitude_damping(0.25)),
            (4, NoiseModel::ideal()), // zero-rate must equal noiseless bitwise
        ] {
            assert_matches_dense(seed, model, |s| {
                let q = s.alloc_n(4);
                s.apply(Gate::H, q[0]);
                s.cnot(q[0], q[1]);
                s.entangle_epr(q[2], q[3]);
                s.apply(Gate::T, q[1]);
                s.cz(q[1], q[2]);
                s.measure(q[0]);
                s.apply(Gate::H, q[3]);
                s.swap(q[1], q[3]);
            });
        }
    }

    #[test]
    fn measurement_rng_stream_matches_dense() {
        // Same seed -> same outcome sequence on a maximally random circuit.
        let mut dense = Simulator::new(99);
        let mut sparse = SparseSim::new(99);
        let dq = dense.alloc_n(8);
        let sq = sparse.alloc_n(8);
        for i in 0..8 {
            dense.apply(Gate::H, dq[i]).unwrap();
            sparse.apply(Gate::H, sq[i]).unwrap();
        }
        for i in 0..8 {
            assert_eq!(
                dense.measure(dq[i]).unwrap(),
                sparse.measure(sq[i]).unwrap(),
                "outcome diverged at qubit {i}"
            );
        }
    }

    #[test]
    fn free_superposed_qubit_errors() {
        let mut sim = SparseSim::new(1);
        let q = sim.alloc();
        sim.apply(Gate::H, q).unwrap();
        assert_eq!(sim.free(q), Err(SimError::NotClassical(q)));
        assert!(sim.measure_and_free(q).is_ok());
        assert_eq!(sim.n_qubits(), 0);
    }

    #[test]
    fn unknown_and_duplicate_qubits_rejected() {
        let mut sim = SparseSim::new(1);
        let q = sim.alloc();
        assert_eq!(sim.cnot(q, q), Err(SimError::DuplicateQubit(q)));
        assert_eq!(sim.swap(q, q), Ok(()));
        sim.free(q).unwrap();
        assert_eq!(sim.apply(Gate::X, q), Err(SimError::UnknownQubit(q)));
        assert_eq!(sim.measure(q), Err(SimError::UnknownQubit(q)));
    }

    #[test]
    fn handles_stable_across_interleaved_free() {
        let mut sim = SparseSim::new(1);
        let a = sim.alloc();
        let b = sim.alloc();
        let c = sim.alloc();
        sim.apply(Gate::X, c).unwrap();
        sim.free(b).unwrap();
        assert!((sim.prob_one(c).unwrap() - 1.0).abs() < TOL);
        assert!(sim.prob_one(a).unwrap() < TOL);
        assert_eq!(sim.free(c), Ok(true));
        assert_eq!(sim.free(a), Ok(false));
    }
}
