//! Lock-striped sharded state vector.
//!
//! [`ShardedState`] stores the `2^n` amplitudes of an `n`-qubit register as
//! `2^k` *contiguous* shards, each guarded by its own mutex. Shard `s` holds
//! the amplitudes whose global basis-state index has top bits `s`; the low
//! `n - k` bits address within a shard. This makes gate dispatch local:
//!
//! * a gate on a **low** qubit (bit index `< n - k`) touches every shard but
//!   only *within-shard* amplitude pairs, so shards are processed
//!   independently — in parallel via `std::thread::scope` for large states,
//!   or pipelined across concurrently calling threads for small ones;
//! * a gate on a **high** qubit (bit index `>= n - k`) pairs shard `s` with
//!   shard `s | 2^(q - (n-k))` — the two stripes are locked together (in
//!   ascending index order, so lock acquisition cannot deadlock) and the
//!   amplitude pairs line up offset-for-offset.
//!
//! Gate application therefore needs no global lock: callers operating on
//! disjoint qubits (which is what QMPI locality guarantees across ranks)
//! stream through the stripes concurrently. Two safety arguments back
//! this, and they differ by pairing axis:
//!
//! * **within-shard pairing** (low-qubit targets, and diagonal gates like
//!   CZ): each stripe receives every concurrent gate as one atomic pass
//!   under its mutex, and operators on disjoint qubits commute *exactly*,
//!   so per-stripe ordering differences are unobservable;
//! * **cross-shard pairing** (high-qubit targets): a pair spans two
//!   stripes, and interleaving with a concurrent gate's per-stripe passes
//!   would mix amplitude generations (stripe A post-gate, stripe B
//!   pre-gate), which does *not* commute. These gates therefore take the
//!   write side of an internal axis lock — they exclude all other gates —
//!   while within-shard gates share the read side.
//!
//! Structural operations — allocation, collapse, removal, snapshots — take
//! `&mut self` and are serialized by the caller (the backend wrapper holds
//! them under its own write lock).
//!
//! The per-stripe arithmetic itself lives in [`crate::stripe`]: this type
//! supplies the locking and dispatch, while process-separated shard
//! workers (which own a stripe in another thread of control and receive
//! commands over a message channel) run the identical kernels on theirs.

use crate::complex::{Complex, C_ONE, C_ZERO};
use crate::gates::Mat2;
use crate::measure::PauliTerm;
use crate::state::{State, NORM_TOL};
use crate::stripe;
use parking_lot::{Mutex, RwLock};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-shard amplitude count at or above which shard processing fans out to
/// worker threads inside a single gate call. Below it, the calling threads
/// themselves are the parallelism (each pipelines through the stripes).
pub const SHARD_PAR_MIN_LEN: usize = 1 << 14;

/// Hard cap on the shard count (`2^8`); more stripes than this only adds
/// lock overhead on any machine this workspace targets.
pub const MAX_SHARD_BITS: u32 = 8;

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// The one shard-count normalization rule every sharded deployment
/// applies: clamp to `[1, 2^max_bits]`, then round up to a power of two.
/// Engine constructors and `BackendKind`'s clamp-warning diagnostics both
/// call this, so what the warning reports is by construction what the
/// engine runs with.
pub fn normalize_shards(requested: usize, max_bits: u32) -> usize {
    requested.clamp(1, 1 << max_bits).next_power_of_two()
}

struct Shard {
    amps: Mutex<Vec<Complex>>,
}

/// A pure quantum state over `n` qubits, stored as `2^min(k, n)` contiguous
/// lock-striped shards.
pub struct ShardedState {
    shards: Vec<Shard>,
    /// Active shard-index bits: `min(max_shard_bits, n_qubits)`.
    shard_bits: u32,
    /// Configured shard-count exponent `k`.
    max_shard_bits: u32,
    n_qubits: usize,
    /// Pairing-axis guard: within-shard gates hold `read`, cross-shard
    /// gates hold `write` (see the module docs for why partial application
    /// across stripes must not interleave with cross-stripe pairing).
    axis: RwLock<()>,
    /// Rotating entry point into the stripe ring. Concurrent within-shard
    /// gates all need every stripe; starting them at staggered offsets
    /// pipelines them around the ring instead of convoying behind stripe 0.
    next_start: AtomicUsize,
}

impl ShardedState {
    /// Creates the 0-qubit scalar state striped over (up to) `shards`
    /// shards. `shards` is rounded up to a power of two and clamped to
    /// `[1, 2^MAX_SHARD_BITS]`.
    pub fn new(shards: usize) -> Self {
        let shards = normalize_shards(shards, MAX_SHARD_BITS);
        ShardedState {
            shards: vec![Shard {
                amps: Mutex::new(vec![C_ONE]),
            }],
            shard_bits: 0,
            max_shard_bits: shards.trailing_zeros(),
            n_qubits: 0,
            axis: RwLock::new(()),
            next_start: AtomicUsize::new(0),
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of currently active shards (`2^min(k, n)`).
    #[inline]
    pub fn num_shards(&self) -> usize {
        1 << self.shard_bits
    }

    /// The configured maximum shard count (`2^k`).
    #[inline]
    pub fn max_shards(&self) -> usize {
        1 << self.max_shard_bits
    }

    /// Number of index bits addressing *within* a shard.
    #[inline]
    fn local_bits(&self) -> usize {
        self.n_qubits - self.shard_bits as usize
    }

    #[inline]
    fn shard_len(&self) -> usize {
        1 << self.local_bits()
    }

    // ---- structural operations (&mut self; caller serializes) ----

    /// Concatenates the shards into one dense vector (shards are contiguous
    /// index ranges, so this is a straight append in shard order).
    fn flatten(&mut self) -> Vec<Complex> {
        let mut flat = Vec::with_capacity(1usize << self.n_qubits);
        for sh in &mut self.shards {
            flat.append(sh.amps.get_mut());
        }
        flat
    }

    /// Rebuilds the stripes from a dense vector of `2^n_qubits` amplitudes.
    fn rebuild(&mut self, mut flat: Vec<Complex>, n_qubits: usize) {
        debug_assert_eq!(flat.len(), 1usize << n_qubits);
        self.n_qubits = n_qubits;
        self.shard_bits = self.max_shard_bits.min(n_qubits as u32);
        let len = flat.len() >> self.shard_bits;
        let mut shards = Vec::with_capacity(1 << self.shard_bits);
        for _ in 0..(1usize << self.shard_bits) {
            let rest = flat.split_off(len);
            shards.push(Shard {
                amps: Mutex::new(flat),
            });
            flat = rest;
        }
        self.shards = shards;
    }

    /// Appends a fresh qubit in |0> as the new most-significant qubit and
    /// returns its index. Existing qubit indices are stable.
    pub fn add_qubit(&mut self) -> usize {
        assert!(self.n_qubits < 29, "qubit budget exhausted");
        let idx = self.n_qubits;
        let mut flat = self.flatten();
        flat.resize(flat.len() * 2, C_ZERO);
        self.rebuild(flat, idx + 1);
        idx
    }

    /// Removes qubit `target`, which must already be collapsed to the
    /// classical value `outcome`. Qubits above `target` shift down by one.
    pub fn remove_qubit(&mut self, target: usize, outcome: bool) {
        assert!(target < self.n_qubits, "qubit {target} out of range");
        let flat = self.flatten();
        let (out, dropped) = stripe::remove_qubit_flat(&flat, target, outcome);
        assert!(
            dropped < NORM_TOL,
            "removing qubit {target} with outcome {outcome} would discard {dropped:.3e} probability; collapse it first"
        );
        let n = self.n_qubits - 1;
        self.rebuild(out, n);
        self.renormalize();
    }

    /// Rescales so that the squared norm is exactly 1.
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 0.0, "cannot renormalize the zero vector");
        let inv = 1.0 / norm;
        for sh in &mut self.shards {
            for a in sh.amps.get_mut().iter_mut() {
                *a = a.scale(inv);
            }
        }
    }

    /// Total squared norm (should always be ~1).
    pub fn norm_sqr(&mut self) -> f64 {
        self.shards
            .iter_mut()
            .map(|sh| sh.amps.get_mut().iter().map(|a| a.norm_sqr()).sum::<f64>())
            .sum()
    }

    /// Collapses `target` onto `outcome` and renormalizes. The caller must
    /// ensure the outcome has nonzero probability.
    pub fn collapse(&mut self, target: usize, outcome: bool) {
        let l = self.local_bits();
        let bit = 1usize << target;
        let keep = if outcome { bit } else { 0 };
        let mut norm = 0.0f64;
        for (s, sh) in self.shards.iter_mut().enumerate() {
            norm += stripe::collapse_keep(sh.amps.get_mut(), s << l, bit, keep);
        }
        assert!(
            norm > 1e-12,
            "collapsing qubit {target} onto probability-zero outcome"
        );
        let inv = 1.0 / norm.sqrt();
        for sh in &mut self.shards {
            stripe::scale(sh.amps.get_mut(), inv);
        }
    }

    /// Measures `target` in the computational basis, sampling with `rng`,
    /// collapsing the state, and returning the outcome.
    pub fn measure(&mut self, target: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(target);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(target, outcome);
        outcome
    }

    /// Non-destructive joint Z-parity measurement over `qubits`: projects
    /// onto the sampled parity subspace and returns the outcome.
    pub fn measure_z_parity(&mut self, qubits: &[usize], rng: &mut impl Rng) -> bool {
        let l = self.local_bits();
        let mut mask = 0usize;
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            mask |= 1usize << q;
        }
        let mut p_odd = 0.0f64;
        for (s, sh) in self.shards.iter_mut().enumerate() {
            p_odd += stripe::parity_prob_odd(sh.amps.get_mut(), s << l, mask);
        }
        let want_odd = rng.gen::<f64>() < p_odd;
        let mut norm = 0.0f64;
        for (s, sh) in self.shards.iter_mut().enumerate() {
            norm += stripe::collapse_parity(sh.amps.get_mut(), s << l, mask, want_odd);
        }
        let inv = 1.0 / norm.sqrt();
        for sh in &mut self.shards {
            stripe::scale(sh.amps.get_mut(), inv);
        }
        want_odd
    }

    // ---- read-only diagnostics (&self; lock every stripe) ----

    /// Probability that measuring `target` yields 1.
    pub fn prob_one(&self, target: usize) -> f64 {
        assert!(target < self.n_qubits, "qubit {target} out of range");
        let l = self.local_bits();
        let bit = 1usize << target;
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| stripe::masked_norm(&sh.amps.lock(), s << l, bit, bit))
            .sum()
    }

    /// Expectation value `<psi| P |psi>` of a Pauli string. Acquires every
    /// stripe for the duration (the string may couple any pair of shards).
    pub fn expectation_pauli(&self, terms: &[PauliTerm]) -> f64 {
        let l = self.local_bits();
        let lmask = (1usize << l) - 1;
        let guards: Vec<_> = self.shards.iter().map(|sh| sh.amps.lock()).collect();
        stripe::expectation_pauli(self.n_qubits, |g| guards[g >> l][g & lmask], terms)
    }

    /// Dense snapshot of the state in the internal (position) qubit order.
    pub fn to_dense(&self) -> State {
        let mut flat = Vec::with_capacity(1usize << self.n_qubits);
        for sh in &self.shards {
            flat.extend_from_slice(&sh.amps.lock());
        }
        State::from_amplitudes(flat)
    }

    // ---- concurrent gate kernels (&self; lock touched stripes only) ----

    /// Runs `work(id)` for every id in `0..count`, fanning out to scoped
    /// worker threads when the per-shard work is large enough to amortize a
    /// spawn. The sequential path walks the ring from a rotating start
    /// offset so concurrent callers pipeline through the stripes instead of
    /// convoying behind stripe 0.
    fn dispatch(&self, count: usize, work: impl Fn(usize) + Sync) {
        let nthreads = max_threads();
        if count > 1 && self.shard_len() >= SHARD_PAR_MIN_LEN && nthreads > 1 {
            let chunk = count.div_ceil(nthreads);
            std::thread::scope(|scope| {
                let work = &work;
                for t in 0..nthreads {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(count);
                    if lo >= hi {
                        break;
                    }
                    scope.spawn(move || {
                        for id in lo..hi {
                            work(id);
                        }
                    });
                }
            });
        } else {
            let start = if count > 1 {
                self.next_start.fetch_add(1, Ordering::Relaxed) % count
            } else {
                0
            };
            for k in 0..count {
                work((start + k) % count);
            }
        }
    }

    /// Core pairwise kernel: applies `f(a0, a1)` to every amplitude pair
    /// `(index, index | 2^target)` whose index satisfies the control masks
    /// (`c_lo` over within-shard bits, `c_hi` over shard-index bits).
    ///
    /// * `target < local_bits`: shard-parallel — each stripe is locked and
    ///   processed independently.
    /// * `target >= local_bits`: stripes pair up; both members of a pair
    ///   are held (ascending index order) while the offsets are zipped.
    fn for_pairs(
        &self,
        c_lo: usize,
        c_hi: usize,
        target: usize,
        f: impl Fn(&mut Complex, &mut Complex) + Sync,
    ) {
        let l = self.local_bits();
        let num = self.num_shards();
        if target < l {
            // Within-shard pairing: concurrent with any other within-shard
            // or diagonal gate (exact commutation per atomic stripe pass).
            let _shared_axis = self.axis.read();
            let tbit = 1usize << target;
            self.dispatch(num, |s| {
                if s & c_hi != c_hi {
                    return;
                }
                let mut amps = self.shards[s].amps.lock();
                stripe::pair_within(&mut amps, c_lo, tbit, &f);
            });
        } else {
            // Cross-shard pairing: exclusive, so no other gate can leave a
            // stripe half-updated while this pairing reads across stripes.
            let _exclusive_axis = self.axis.write();
            let tbit = 1usize << (target - l);
            self.dispatch(num, |s0| {
                if s0 & tbit != 0 || s0 & c_hi != c_hi {
                    return;
                }
                let mut a = self.shards[s0].amps.lock();
                let mut b = self.shards[s0 | tbit].amps.lock();
                stripe::pair_across(&mut a, &mut b, c_lo, &f);
            });
        }
    }

    /// Splits a global control/qubit set into (within-shard, shard-index)
    /// masks.
    fn split_masks(&self, qubits: &[usize]) -> (usize, usize) {
        let l = self.local_bits();
        let mut lo = 0usize;
        let mut hi = 0usize;
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            if q < l {
                lo |= 1 << q;
            } else {
                hi |= 1 << (q - l);
            }
        }
        (lo, hi)
    }

    /// Applies a single-qubit unitary `m` to `target`.
    pub fn apply_1q(&self, target: usize, m: &Mat2) {
        assert!(target < self.n_qubits, "qubit {target} out of range");
        let m = *m;
        self.for_pairs(0, 0, target, move |a0, a1| {
            let (x0, x1) = (*a0, *a1);
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        });
    }

    /// Applies `m` to `target` on basis states where every control is 1.
    pub fn apply_controlled_1q(&self, controls: &[usize], target: usize, m: &Mat2) {
        assert!(target < self.n_qubits, "qubit {target} out of range");
        for &c in controls {
            assert_ne!(c, target, "control equals target");
        }
        let (c_lo, c_hi) = self.split_masks(controls);
        let m = *m;
        self.for_pairs(c_lo, c_hi, target, move |a0, a1| {
            let (x0, x1) = (*a0, *a1);
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        });
    }

    /// CNOT fast path (amplitude swap, no complex multiplies).
    pub fn apply_cnot(&self, control: usize, target: usize) {
        assert_ne!(control, target, "CNOT needs distinct qubits");
        let (c_lo, c_hi) = self.split_masks(&[control]);
        self.for_pairs(c_lo, c_hi, target, |a0, a1| {
            std::mem::swap(a0, a1);
        });
    }

    /// CZ fast path: pure phase, so every stripe is independent regardless
    /// of which qubits are involved.
    pub fn apply_cz(&self, a: usize, b: usize) {
        assert_ne!(a, b, "CZ needs distinct qubits");
        let (lo_mask, hi_mask) = self.split_masks(&[a, b]);
        // Diagonal: stripe-local regardless of qubit positions, so it
        // shares the axis with within-shard pair gates.
        let _shared_axis = self.axis.read();
        self.dispatch(self.num_shards(), |s| {
            if s & hi_mask != hi_mask {
                return;
            }
            let mut amps = self.shards[s].amps.lock();
            stripe::phase_flip(&mut amps, lo_mask);
        });
    }

    /// One-pass merged diagonal sweep ([`crate::batch::BatchOp::PhaseSweep`]
    /// with qubits already resolved to positions): every stripe applies the
    /// factors sequentially in slice order against the *global* basis index
    /// (stripe base ORed with the offset) and negates on odd CZ parity —
    /// the identical per-amplitude sequence as the dense engine, in one
    /// stripe pass regardless of how many diagonal gates were merged.
    pub fn apply_phase_sweep(
        &self,
        factors: &[(usize, Complex, Complex)],
        flips: &[(usize, usize)],
    ) {
        let masked: Vec<(usize, Complex, Complex)> = factors
            .iter()
            .map(|&(q, d0, d1)| {
                assert!(q < self.n_qubits, "qubit {q} out of range");
                (1usize << q, d0, d1)
            })
            .collect();
        let flip_masks: Vec<usize> = flips
            .iter()
            .map(|&(a, b)| {
                assert!(
                    a < self.n_qubits && b < self.n_qubits,
                    "flip qubit out of range"
                );
                assert_ne!(a, b, "CZ needs distinct qubits");
                (1usize << a) | (1usize << b)
            })
            .collect();
        let l = self.local_bits();
        // Diagonal: stripe-local regardless of qubit positions (like CZ).
        let _shared_axis = self.axis.read();
        self.dispatch(self.num_shards(), |s| {
            let mut amps = self.shards[s].amps.lock();
            stripe::phase_sweep(&mut amps, s << l, &masked, &flip_masks);
        });
    }

    /// One-round SWAP: a single amplitude permutation pass instead of the
    /// three CNOT passes of the naive realization (which, cross-shard, cost
    /// three stripe-pair exchanges). Pure amplitude moves, so the result is
    /// bit-identical to the three-CNOT version — only the pass count
    /// changes.
    pub fn apply_swap(&self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let n = self.n_qubits;
        assert!(a < n && b < n, "qubit out of range (n={n})");
        let l = self.local_bits();
        let (lo, hi) = (a.min(b), a.max(b));
        if hi < l {
            // Both qubits address within every stripe: shard-parallel, and
            // (like any within-shard pass) concurrent with other
            // within-shard gates.
            let _shared_axis = self.axis.read();
            let (abit, bbit) = (1usize << lo, 1usize << hi);
            self.dispatch(self.num_shards(), |s| {
                let mut amps = self.shards[s].amps.lock();
                stripe::swap_within(&mut amps, abit, bbit);
            });
        } else if lo < l {
            // Mixed: `lo` addresses within the stripe, `hi` selects the
            // shard. One half-stripe exchange per shard pair.
            let _exclusive_axis = self.axis.write();
            let abit = 1usize << lo;
            let hbit = 1usize << (hi - l);
            self.dispatch(self.num_shards(), |s0| {
                if s0 & hbit != 0 {
                    return;
                }
                let mut low = self.shards[s0].amps.lock();
                let mut high = self.shards[s0 | hbit].amps.lock();
                stripe::swap_across_mixed(&mut low, &mut high, abit);
            });
        } else {
            // Both qubits select the shard: shards with (a=1, b=0) trade
            // entire stripes with their (a=0, b=1) partners,
            // offset-for-offset.
            let _exclusive_axis = self.axis.write();
            let abit = 1usize << (lo - l);
            let bbit = 1usize << (hi - l);
            self.dispatch(self.num_shards(), |s| {
                if s & abit == 0 || s & bbit != 0 {
                    return;
                }
                let partner = s ^ abit ^ bbit;
                // Ascending lock order, matching `for_pairs`.
                let (first, second) = (s.min(partner), s.max(partner));
                let mut x = self.shards[first].amps.lock();
                let mut y = self.shards[second].amps.lock();
                stripe::pair_across(&mut x, &mut y, 0, std::mem::swap);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;
    use crate::gates::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-10;

    /// Mirrors a circuit on a dense `State` and a `ShardedState`, then
    /// checks amplitudes agree exactly (same arithmetic, same order).
    fn assert_matches_dense(shards: usize, build: impl Fn(&mut State, &ShardedState)) {
        let mut dense = State::zero(0);
        let mut striped = ShardedState::new(shards);
        for _ in 0..6 {
            dense.add_qubit();
            striped.add_qubit();
        }
        build(&mut dense, &striped);
        let got = striped.to_dense();
        for i in 0..dense.len() {
            assert!(
                dense.amplitude(i).approx_eq(got.amplitude(i), TOL),
                "shards={shards} amp[{i}]: {:?} vs {:?}",
                dense.amplitude(i),
                got.amplitude(i)
            );
        }
    }

    #[test]
    fn local_and_cross_shard_gates_match_dense() {
        for shards in [1usize, 2, 4, 8, 16] {
            assert_matches_dense(shards, |dense, striped| {
                for q in 0..6 {
                    apply::apply_1q(dense, q, &Gate::H.matrix());
                    striped.apply_1q(q, &Gate::H.matrix());
                }
                apply::apply_1q(dense, 5, &Gate::T.matrix());
                striped.apply_1q(5, &Gate::T.matrix());
                apply::apply_cnot(dense, 0, 5); // low control, high target
                striped.apply_cnot(0, 5);
                apply::apply_cnot(dense, 5, 0); // high control, low target
                striped.apply_cnot(5, 0);
                apply::apply_cnot(dense, 4, 5); // both high (at 8+ shards)
                striped.apply_cnot(4, 5);
                apply::apply_cz(dense, 1, 4);
                striped.apply_cz(1, 4);
                apply::apply_swap(dense, 2, 5);
                striped.apply_swap(2, 5);
                apply::apply_controlled_1q(dense, &[0, 5], 3, &Gate::Ry(0.7).matrix());
                striped.apply_controlled_1q(&[0, 5], 3, &Gate::Ry(0.7).matrix());
            });
        }
    }

    #[test]
    fn phase_sweep_is_bit_identical_to_dense_in_every_sharding() {
        // Factors on low and shard-selecting qubits plus mixed CZ flips:
        // every stripe must run the identical sequential multiply the
        // dense single-stripe pass runs.
        let t = Gate::T.matrix();
        let s = Gate::S.matrix();
        for shards in [1usize, 2, 4, 8, 16] {
            assert_matches_dense(shards, |dense, striped| {
                for q in 0..6 {
                    apply::apply_1q(dense, q, &Gate::H.matrix());
                    striped.apply_1q(q, &Gate::H.matrix());
                }
                let factors = [(1, t[0][0], t[1][1]), (5, s[0][0], s[1][1])];
                let flips = [(0, 5), (2, 3)];
                let masked: Vec<(usize, Complex, Complex)> = factors
                    .iter()
                    .map(|&(q, d0, d1)| (1usize << q, d0, d1))
                    .collect();
                let flip_masks: Vec<usize> = flips
                    .iter()
                    .map(|&(a, b)| (1usize << a) | (1 << b))
                    .collect();
                stripe::phase_sweep(dense.amplitudes_mut(), 0, &masked, &flip_masks);
                striped.apply_phase_sweep(&factors, &flips);
            });
        }
    }

    #[test]
    fn one_round_swap_is_bit_identical_to_dense_in_every_pairing_regime() {
        // 6 qubits, 16 shards => 2 local bits: (0,1) is within-stripe,
        // (1,4) mixed, (3,5) both shard-selecting. The one-round exchange
        // is a pure permutation, so dense and striped must agree bit for
        // bit after a non-trivial scramble.
        for shards in [1usize, 2, 4, 16] {
            let mut dense = State::zero(0);
            let mut striped = ShardedState::new(shards);
            for _ in 0..6 {
                dense.add_qubit();
                striped.add_qubit();
            }
            for q in 0..6 {
                apply::apply_1q(&mut dense, q, &Gate::H.matrix());
                striped.apply_1q(q, &Gate::H.matrix());
            }
            apply::apply_1q(&mut dense, 3, &Gate::T.matrix());
            striped.apply_1q(3, &Gate::T.matrix());
            apply::apply_cnot(&mut dense, 0, 4);
            striped.apply_cnot(0, 4);
            for (a, b) in [(0usize, 1usize), (1, 4), (3, 5), (5, 2)] {
                apply::apply_swap(&mut dense, a, b);
                striped.apply_swap(a, b);
            }
            let got = striped.to_dense();
            for i in 0..dense.len() {
                let (w, g) = (dense.amplitude(i), got.amplitude(i));
                assert!(
                    w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                    "shards={shards} amp[{i}]: {w:?} vs {g:?}"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_amplitudes_degrades_gracefully() {
        // 2 qubits but 256 shards requested: active shards clamp to 4.
        let mut s = ShardedState::new(256);
        s.add_qubit();
        s.add_qubit();
        assert_eq!(s.num_shards(), 4);
        assert_eq!(s.max_shards(), 256);
        s.apply_1q(0, &Gate::X.matrix());
        assert!((s.prob_one(0) - 1.0).abs() < TOL);
        assert!(s.prob_one(1) < TOL);
    }

    #[test]
    fn add_and_remove_qubits_preserve_state() {
        let mut s = ShardedState::new(4);
        let a = s.add_qubit();
        let b = s.add_qubit();
        let c = s.add_qubit();
        s.apply_1q(c, &Gate::X.matrix());
        // Removing the middle qubit shifts c down; it must still read |1>.
        s.remove_qubit(b, false);
        assert_eq!(s.n_qubits(), 2);
        assert!((s.prob_one(c - 1) - 1.0).abs() < TOL);
        assert!(s.prob_one(a) < TOL);
    }

    #[test]
    fn measurement_collapses_epr_pair() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut s = ShardedState::new(8);
            let a = s.add_qubit();
            let b = s.add_qubit();
            s.apply_1q(a, &Gate::H.matrix());
            s.apply_cnot(a, b);
            let ma = s.measure(a, &mut rng);
            let mb = s.measure(b, &mut rng);
            assert_eq!(ma, mb, "EPR halves must agree");
        }
    }

    #[test]
    fn parity_measurement_matches_dense_behavior() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = ShardedState::new(4);
        let a = s.add_qubit();
        let b = s.add_qubit();
        s.apply_1q(a, &Gate::H.matrix());
        s.apply_cnot(a, b);
        // EPR pair lives entirely in the even-parity subspace.
        assert!(!s.measure_z_parity(&[a, b], &mut rng));
        let dense = s.to_dense();
        assert!((dense.probability(0b00) - 0.5).abs() < TOL);
        assert!((dense.probability(0b11) - 0.5).abs() < TOL);
    }

    #[test]
    fn expectation_of_bell_pair() {
        use crate::gates::Pauli;
        let mut s = ShardedState::new(8);
        let a = s.add_qubit();
        let b = s.add_qubit();
        s.apply_1q(a, &Gate::H.matrix());
        s.apply_cnot(a, b);
        let term = |q: usize, op: Pauli| PauliTerm { qubit: q, op };
        assert!((s.expectation_pauli(&[term(a, Pauli::Z), term(b, Pauli::Z)]) - 1.0).abs() < TOL);
        assert!((s.expectation_pauli(&[term(a, Pauli::X), term(b, Pauli::X)]) - 1.0).abs() < TOL);
        assert!((s.expectation_pauli(&[term(a, Pauli::Y), term(b, Pauli::Y)]) + 1.0).abs() < TOL);
    }

    #[test]
    fn concurrent_gates_on_disjoint_qubits_commute() {
        // Two threads hammer disjoint qubits through &self concurrently;
        // the result must equal the sequential application.
        let mut s = ShardedState::new(8);
        for _ in 0..8 {
            s.add_qubit();
        }
        for q in 0..8 {
            s.apply_1q(q, &Gate::H.matrix());
        }
        let s = &s;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..50 {
                    s.apply_1q(1, &Gate::T.matrix());
                    s.apply_cnot(0, 1);
                    s.apply_cnot(0, 1);
                    s.apply_1q(1, &Gate::Tdg.matrix());
                }
            });
            scope.spawn(|| {
                for _ in 0..50 {
                    s.apply_1q(7, &Gate::S.matrix());
                    s.apply_cnot(6, 7);
                    s.apply_cnot(6, 7);
                    s.apply_1q(7, &Gate::Sdg.matrix());
                }
            });
        });
        // Every round was self-inverse, so the state is back to |+...+>.
        let dense = s.to_dense();
        for i in 0..dense.len() {
            assert!(
                (dense.probability(i) - 1.0 / 256.0).abs() < 1e-9,
                "index {i}"
            );
        }
    }

    #[test]
    fn norm_preserved_under_random_circuit() {
        let mut s = ShardedState::new(8);
        for _ in 0..6 {
            s.add_qubit();
        }
        let gates = [
            Gate::H,
            Gate::Rx(0.4),
            Gate::T,
            Gate::Ry(2.2),
            Gate::S,
            Gate::Rz(-0.9),
        ];
        for (i, g) in gates.iter().enumerate() {
            s.apply_1q(i % 6, &g.matrix());
            s.apply_cnot(i % 6, (i + 1) % 6);
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
