//! Gate-application kernels.
//!
//! The kernels walk the amplitude vector with bit-stride loops. For large
//! states (>= [`PAR_THRESHOLD`] amplitudes) the single-qubit and controlled
//! kernels split the index space across threads with `std::thread::scope`; the
//! index pairs touched by one gate application are disjoint across loop
//! iterations, so chunks never alias.

use crate::complex::Complex;
use crate::gates::{Mat2, Mat4};
use crate::state::State;

/// Number of amplitudes above which kernels go multi-threaded.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Maximum number of worker threads used by the parallel kernels.
fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Raw-pointer wrapper so disjoint chunks of the amplitude vector can be
/// written from several threads inside a `std::thread::scope`.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
// SAFETY: every parallel kernel partitions the iteration space so that no two
// threads ever touch the same amplitude index.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

// The pair-index derivation is shared with the per-stripe kernels so the
// dense and sharded walks cannot drift apart.
use crate::stripe::pair_indices;

/// Applies a single-qubit unitary `m` to `target`.
pub fn apply_1q(state: &mut State, target: usize, m: &Mat2) {
    let n = state.n_qubits();
    assert!(target < n, "qubit {target} out of range (n={n})");
    let bit = 1usize << target;
    let half = state.len() / 2;
    let m = *m;
    if state.len() >= PAR_THRESHOLD {
        let nthreads = max_threads();
        let chunk = half.div_ceil(nthreads);
        let ptr = SendPtr(state.amplitudes_mut().as_mut_ptr());
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(half);
                if lo >= hi {
                    break;
                }
                s.spawn(move || {
                    let p = ptr;
                    for i in lo..hi {
                        let (i0, i1) = pair_indices(i, bit);
                        // SAFETY: (i0, i1) pairs are unique per i; chunks are disjoint.
                        unsafe {
                            let a0 = *p.0.add(i0);
                            let a1 = *p.0.add(i1);
                            *p.0.add(i0) = m[0][0] * a0 + m[0][1] * a1;
                            *p.0.add(i1) = m[1][0] * a0 + m[1][1] * a1;
                        }
                    }
                });
            }
        });
    } else {
        let amps = state.amplitudes_mut();
        for i in 0..half {
            let (i0, i1) = pair_indices(i, bit);
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// Applies `m` to `target` only on basis states where every qubit in
/// `controls` is 1 (multi-controlled single-qubit gate).
pub fn apply_controlled_1q(state: &mut State, controls: &[usize], target: usize, m: &Mat2) {
    let n = state.n_qubits();
    assert!(target < n, "qubit {target} out of range (n={n})");
    let mut cmask = 0usize;
    for &c in controls {
        assert!(c < n, "control {c} out of range (n={n})");
        assert_ne!(c, target, "control equals target");
        cmask |= 1usize << c;
    }
    let bit = 1usize << target;
    let half = state.len() / 2;
    let m = *m;
    let body = |amps: &mut [Complex], lo: usize, hi: usize| {
        for i in lo..hi {
            let (i0, i1) = pair_indices(i, bit);
            if i0 & cmask == cmask {
                let a0 = amps[i0];
                let a1 = amps[i1];
                amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    };
    if state.len() >= PAR_THRESHOLD {
        let nthreads = max_threads();
        let chunk = half.div_ceil(nthreads);
        let ptr = SendPtr(state.amplitudes_mut().as_mut_ptr());
        let len = state.len();
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(half);
                if lo >= hi {
                    break;
                }
                s.spawn(move || {
                    let p = ptr;
                    // SAFETY: disjoint (i0, i1) pairs per thread chunk.
                    let amps = unsafe { std::slice::from_raw_parts_mut(p.0, len) };
                    body(amps, lo, hi);
                });
            }
        });
    } else {
        body(state.amplitudes_mut(), 0, half);
    }
}

/// Applies an arbitrary two-qubit unitary to qubits `(q1, q0)`, where `q0`
/// indexes the low bit of the 4x4 matrix and `q1` the high bit.
pub fn apply_2q(state: &mut State, q1: usize, q0: usize, m: &Mat4) {
    let n = state.n_qubits();
    assert!(q0 < n && q1 < n, "qubit out of range (n={n})");
    assert_ne!(q0, q1, "two-qubit gate needs distinct qubits");
    let b0 = 1usize << q0;
    let b1 = 1usize << q1;
    let quarter = state.len() / 4;
    let (lo_bit, hi_bit) = if q0 < q1 { (b0, b1) } else { (b1, b0) };
    let amps = state.amplitudes_mut();
    for i in 0..quarter {
        // Spread i over positions with both gate bits cleared.
        let mut base = i & (lo_bit - 1);
        let mid = (i & !(lo_bit - 1)) << 1;
        base |= mid & (hi_bit - 1);
        base |= (mid & !(hi_bit - 1)) << 1;
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (r, &out_i) in idx.iter().enumerate() {
            let mut acc = crate::complex::C_ZERO;
            for (c, &ac) in a.iter().enumerate() {
                acc += m[r][c] * ac;
            }
            amps[out_i] = acc;
        }
    }
}

/// CNOT fast path: flips `target` where `control` is 1.
pub fn apply_cnot(state: &mut State, control: usize, target: usize) {
    let n = state.n_qubits();
    assert!(control < n && target < n, "qubit out of range (n={n})");
    assert_ne!(control, target, "CNOT needs distinct qubits");
    let cb = 1usize << control;
    let tb = 1usize << target;
    let amps = state.amplitudes_mut();
    for i in 0..amps.len() {
        // For each index with control=1 and target=0, swap with target=1 partner.
        if i & cb == cb && i & tb == 0 {
            amps.swap(i, i | tb);
        }
    }
}

/// CZ fast path: phase −1 where both qubits are 1 (symmetric).
pub fn apply_cz(state: &mut State, a: usize, b: usize) {
    let n = state.n_qubits();
    assert!(a < n && b < n, "qubit out of range (n={n})");
    assert_ne!(a, b, "CZ needs distinct qubits");
    let mask = (1usize << a) | (1usize << b);
    let amps = state.amplitudes_mut();
    for (i, amp) in amps.iter_mut().enumerate() {
        if i & mask == mask {
            *amp = -*amp;
        }
    }
}

/// SWAP fast path.
pub fn apply_swap(state: &mut State, a: usize, b: usize) {
    let n = state.n_qubits();
    assert!(a < n && b < n, "qubit out of range (n={n})");
    if a == b {
        return;
    }
    let ab = 1usize << a;
    let bb = 1usize << b;
    let amps = state.amplitudes_mut();
    for i in 0..amps.len() {
        if i & ab == ab && i & bb == 0 {
            amps.swap(i, (i & !ab) | bb);
        }
    }
}

/// Toffoli (CCX) fast path.
pub fn apply_toffoli(state: &mut State, c1: usize, c2: usize, target: usize) {
    apply_controlled_1q(state, &[c1, c2], target, &crate::gates::Gate::X.matrix());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C_ONE, C_ZERO};
    use crate::gates::{cnot_matrix, cz_matrix, swap_matrix, Gate};
    use crate::state::State;

    const TOL: f64 = 1e-10;

    fn basis(n: usize, idx: usize) -> State {
        let mut amps = vec![C_ZERO; 1 << n];
        amps[idx] = C_ONE;
        State::from_amplitudes(amps)
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = State::zero(1);
        apply_1q(&mut s, 0, &Gate::X.matrix());
        assert!((s.probability(1) - 1.0).abs() < TOL);
    }

    #[test]
    fn h_creates_uniform_superposition() {
        let mut s = State::zero(3);
        for q in 0..3 {
            apply_1q(&mut s, q, &Gate::H.matrix());
        }
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn hh_is_identity() {
        let mut s = basis(2, 0b10);
        apply_1q(&mut s, 1, &Gate::H.matrix());
        apply_1q(&mut s, 1, &Gate::H.matrix());
        assert!((s.probability(0b10) - 1.0).abs() < TOL);
    }

    #[test]
    fn cnot_fast_path_matches_matrix() {
        for init in 0..4 {
            let mut s1 = basis(2, init);
            let mut s2 = basis(2, init);
            apply_cnot(&mut s1, 1, 0);
            // cnot_matrix is ordered |c t> with t low, matching (q1=control, q0=target).
            apply_2q(&mut s2, 1, 0, &cnot_matrix());
            assert!((s1.fidelity(&s2) - 1.0).abs() < TOL, "init={init}");
        }
    }

    #[test]
    fn cnot_reversed_operands() {
        // Control on low bit: |01> -> |11>.
        let mut s = basis(2, 0b01);
        apply_cnot(&mut s, 0, 1);
        assert!((s.probability(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn cz_fast_path_matches_matrix() {
        let mut s1 = State::zero(2);
        let mut s2 = State::zero(2);
        for q in 0..2 {
            apply_1q(&mut s1, q, &Gate::H.matrix());
            apply_1q(&mut s2, q, &Gate::H.matrix());
        }
        apply_cz(&mut s1, 0, 1);
        apply_2q(&mut s2, 1, 0, &cz_matrix());
        assert!((s1.fidelity(&s2) - 1.0).abs() < TOL);
    }

    #[test]
    fn swap_fast_path_matches_matrix() {
        let mut s1 = basis(2, 0b01);
        let mut s2 = basis(2, 0b01);
        apply_swap(&mut s1, 0, 1);
        apply_2q(&mut s2, 1, 0, &swap_matrix());
        assert!((s1.fidelity(&s2) - 1.0).abs() < TOL);
        assert!((s1.probability(0b10) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_pair_construction() {
        let mut s = State::zero(2);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        apply_cnot(&mut s, 0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < TOL);
        assert!((s.probability(0b11) - 0.5).abs() < TOL);
        assert!(s.probability(0b01) < TOL);
        assert!(s.probability(0b10) < TOL);
    }

    #[test]
    fn toffoli_truth_table() {
        for init in 0..8usize {
            let mut s = basis(3, init);
            apply_toffoli(&mut s, 2, 1, 0);
            let expect = if init & 0b110 == 0b110 {
                init ^ 1
            } else {
                init
            };
            assert!((s.probability(expect) - 1.0).abs() < TOL, "init={init}");
        }
    }

    #[test]
    fn controlled_gate_with_zero_control_is_identity() {
        let mut s = basis(2, 0b00);
        apply_controlled_1q(&mut s, &[1], 0, &Gate::X.matrix());
        assert!((s.probability(0b00) - 1.0).abs() < TOL);
    }

    #[test]
    fn parallel_kernel_matches_serial() {
        // 15 qubits => 32768 amplitudes >= PAR_THRESHOLD, exercising the
        // multi-threaded path; compare against a small-state replica.
        let n = 15;
        let mut big = State::zero(n);
        for q in 0..n {
            apply_1q(&mut big, q, &Gate::H.matrix());
        }
        apply_1q(&mut big, 7, &Gate::Rz(0.3).matrix());
        apply_controlled_1q(&mut big, &[3], 7, &Gate::Ry(1.1).matrix());
        for q in 0..n {
            apply_1q(&mut big, q, &Gate::H.matrix());
        }
        assert!((big.norm_sqr() - 1.0).abs() < 1e-9);
        // Undo everything and verify we return to |0...0>.
        for q in 0..n {
            apply_1q(&mut big, q, &Gate::H.matrix());
        }
        apply_controlled_1q(&mut big, &[3], 7, &Gate::Ry(-1.1).matrix());
        apply_1q(&mut big, 7, &Gate::Rz(-0.3).matrix());
        for q in 0..n {
            apply_1q(&mut big, q, &Gate::H.matrix());
        }
        assert!((big.probability(0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn norm_preserved_under_random_circuit() {
        let mut s = State::zero(6);
        let gates = [
            Gate::H,
            Gate::Rx(0.4),
            Gate::T,
            Gate::Ry(2.2),
            Gate::S,
            Gate::Rz(-0.9),
        ];
        for (i, g) in gates.iter().enumerate() {
            apply_1q(&mut s, i % 6, &g.matrix());
            apply_cnot(&mut s, i % 6, (i + 1) % 6);
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_gate_only_affects_one_branch() {
        let mut s = State::zero(1);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        apply_1q(&mut s, 0, &Gate::Phase(std::f64::consts::PI).matrix());
        apply_1q(&mut s, 0, &Gate::H.matrix());
        // H Z H = X, so we should be in |1>.
        assert!((s.probability(1) - 1.0).abs() < TOL);
    }

    #[test]
    fn apply_2q_general_unitary_preserves_norm() {
        // Use an arbitrary product of the fixed 4x4 unitaries.
        let m = crate::gates::matmul4(&cnot_matrix(), &cz_matrix());
        let mut s = State::zero(4);
        for q in 0..4 {
            apply_1q(&mut s, q, &Gate::H.matrix());
        }
        apply_2q(&mut s, 3, 1, &m);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_parallel_controls_fig2() {
        // Fig. 2: fanout of control qubit, controlled gates in parallel on
        // distinct targets, then unfanout — equals two gates controlled on
        // the original qubit.
        let u1 = Gate::Ry(0.7);
        let u2 = Gate::Rz(1.3);
        // Reference: both controlled on qubit 0 directly. Targets 1, 2.
        let mut reference = State::zero(4);
        apply_1q(&mut reference, 0, &Gate::H.matrix());
        apply_controlled_1q(&mut reference, &[0], 1, &u1.matrix());
        apply_controlled_1q(&mut reference, &[0], 2, &u2.matrix());
        // Fanout version: qubit 3 is the auxiliary copy.
        let mut fan = State::zero(4);
        apply_1q(&mut fan, 0, &Gate::H.matrix());
        apply_cnot(&mut fan, 0, 3); // fanout
        apply_controlled_1q(&mut fan, &[0], 1, &u1.matrix());
        apply_controlled_1q(&mut fan, &[3], 2, &u2.matrix());
        apply_cnot(&mut fan, 0, 3); // unfanout
        assert!((reference.fidelity(&fan) - 1.0).abs() < TOL);
    }
}
