//! The quantum gate set used throughout the paper (Section 2 and Section 3).
//!
//! Single-qubit gates are represented as dense 2x2 unitaries, two-qubit gates
//! as 4x4 unitaries. The fault-tolerant gate set of Section 3 (Pauli, H, S, T,
//! CNOT) is covered, plus the Pauli-rotation gates `R_P(theta) = exp(-i theta P / 2)`
//! that dominate the cost model in Section 7.

use crate::complex::{Complex, C_I, C_ONE, C_ZERO};

/// A dense 2x2 complex matrix (row-major). Used for single-qubit unitaries.
pub type Mat2 = [[Complex; 2]; 2];
/// A dense 4x4 complex matrix (row-major). Used for two-qubit unitaries.
pub type Mat4 = [[Complex; 4]; 4];

/// `1/sqrt(2)`, the Hadamard normalization.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
}

impl Pauli {
    /// The 2x2 matrix of this Pauli operator.
    pub fn matrix(self) -> Mat2 {
        match self {
            Pauli::X => [[C_ZERO, C_ONE], [C_ONE, C_ZERO]],
            Pauli::Y => [[C_ZERO, -C_I], [C_I, C_ZERO]],
            Pauli::Z => [[C_ONE, C_ZERO], [C_ZERO, -C_ONE]],
        }
    }
}

/// A single-qubit gate.
///
/// `Rx/Ry/Rz(theta)` denote the Pauli rotations `exp(-i theta P / 2)` from the
/// paper's Section 2. `U` carries an arbitrary unitary for completeness (used
/// by tests and by gate-fusion utilities).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S† = diag(1, -i).
    Sdg,
    /// T = diag(1, e^{i pi/4}) = sqrt(S). The costly gate of Section 3.
    T,
    /// T† = diag(1, e^{-i pi/4}).
    Tdg,
    /// X rotation `exp(-i theta X / 2)`.
    Rx(f64),
    /// Y rotation `exp(-i theta Y / 2)`.
    Ry(f64),
    /// Z rotation `exp(-i theta Z / 2)`.
    Rz(f64),
    /// Phase rotation diag(1, e^{i theta}).
    Phase(f64),
    /// Arbitrary single-qubit unitary.
    U(Mat2),
}

impl Gate {
    /// A Pauli rotation `R_P(theta) = exp(-0.5 i theta P)` (paper Section 2).
    pub fn rotation(p: Pauli, theta: f64) -> Gate {
        match p {
            Pauli::X => Gate::Rx(theta),
            Pauli::Y => Gate::Ry(theta),
            Pauli::Z => Gate::Rz(theta),
        }
    }

    /// The 2x2 unitary matrix of this gate.
    pub fn matrix(&self) -> Mat2 {
        let h = FRAC_1_SQRT_2;
        match *self {
            Gate::X => Pauli::X.matrix(),
            Gate::Y => Pauli::Y.matrix(),
            Gate::Z => Pauli::Z.matrix(),
            Gate::H => [
                [Complex::real(h), Complex::real(h)],
                [Complex::real(h), Complex::real(-h)],
            ],
            Gate::S => [[C_ONE, C_ZERO], [C_ZERO, C_I]],
            Gate::Sdg => [[C_ONE, C_ZERO], [C_ZERO, -C_I]],
            Gate::T => [
                [C_ONE, C_ZERO],
                [C_ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Tdg => [
                [C_ONE, C_ZERO],
                [C_ZERO, Complex::cis(-std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Rx(t) => {
                let c = Complex::real((t / 2.0).cos());
                let s = Complex::new(0.0, -(t / 2.0).sin());
                [[c, s], [s, c]]
            }
            Gate::Ry(t) => {
                let c = Complex::real((t / 2.0).cos());
                let s = Complex::real((t / 2.0).sin());
                [[c, -s], [s, c]]
            }
            Gate::Rz(t) => [
                [Complex::cis(-t / 2.0), C_ZERO],
                [C_ZERO, Complex::cis(t / 2.0)],
            ],
            Gate::Phase(t) => [[C_ONE, C_ZERO], [C_ZERO, Complex::cis(t)]],
            Gate::U(m) => m,
        }
    }

    /// The inverse (Hermitian conjugate) of this gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::X | Gate::Y | Gate::Z | Gate::H => *self,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U(m) => Gate::U(dagger2(&m)),
        }
    }

    /// Whether this gate is a member of the single-qubit Clifford group
    /// (syntactic check: rotations and `U` report `false` even at Clifford
    /// angles). The stabilizer backend can only realize Clifford gates, so
    /// batching layers use this to reject non-Clifford gates *eagerly*
    /// instead of deferring the error to the next flush point.
    pub fn is_clifford(&self) -> bool {
        matches!(
            self,
            Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::S | Gate::Sdg
        )
    }

    /// Whether this gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) | Gate::Phase(_)
        ) || matches!(self, Gate::U(m) if m[0][1].is_negligible(1e-15) && m[1][0].is_negligible(1e-15))
    }
}

/// Hermitian conjugate of a 2x2 matrix.
pub fn dagger2(m: &Mat2) -> Mat2 {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// Product `a * b` of two 2x2 matrices.
pub fn matmul2(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[C_ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Hermitian conjugate of a 4x4 matrix.
pub fn dagger4(m: &Mat4) -> Mat4 {
    let mut out = [[C_ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = m[j][i].conj();
        }
    }
    out
}

/// Product `a * b` of two 4x4 matrices.
pub fn matmul4(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[C_ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            let mut acc = C_ZERO;
            for (k, bk) in b.iter().enumerate() {
                acc += a[i][k] * bk[j];
            }
            *v = acc;
        }
    }
    out
}

/// Checks `u * u† = I` to tolerance `tol` for a 2x2 matrix.
pub fn is_unitary2(m: &Mat2, tol: f64) -> bool {
    let p = matmul2(m, &dagger2(m));
    let id = [[C_ONE, C_ZERO], [C_ZERO, C_ONE]];
    (0..2).all(|i| (0..2).all(|j| p[i][j].approx_eq(id[i][j], tol)))
}

/// Checks `u * u† = I` to tolerance `tol` for a 4x4 matrix.
pub fn is_unitary4(m: &Mat4, tol: f64) -> bool {
    let p = matmul4(m, &dagger4(m));
    (0..4).all(|i| {
        (0..4).all(|j| {
            let expect = if i == j { C_ONE } else { C_ZERO };
            p[i][j].approx_eq(expect, tol)
        })
    })
}

/// The CNOT unitary, ordered as |control target> with the target in the low bit.
pub fn cnot_matrix() -> Mat4 {
    let mut m = [[C_ZERO; 4]; 4];
    m[0][0] = C_ONE;
    m[1][1] = C_ONE;
    m[2][3] = C_ONE;
    m[3][2] = C_ONE;
    m
}

/// The controlled-Z unitary (symmetric in control/target).
pub fn cz_matrix() -> Mat4 {
    let mut m = [[C_ZERO; 4]; 4];
    m[0][0] = C_ONE;
    m[1][1] = C_ONE;
    m[2][2] = C_ONE;
    m[3][3] = -C_ONE;
    m
}

/// The SWAP unitary.
pub fn swap_matrix() -> Mat4 {
    let mut m = [[C_ZERO; 4]; 4];
    m[0][0] = C_ONE;
    m[1][2] = C_ONE;
    m[2][1] = C_ONE;
    m[3][3] = C_ONE;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn all_fixed_gates() -> Vec<Gate> {
        vec![
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
        ]
    }

    #[test]
    fn fixed_gates_are_unitary() {
        for g in all_fixed_gates() {
            assert!(is_unitary2(&g.matrix(), TOL), "{g:?} not unitary");
        }
    }

    #[test]
    fn rotations_are_unitary() {
        for k in -8..=8 {
            let t = k as f64 * 0.37;
            for g in [Gate::Rx(t), Gate::Ry(t), Gate::Rz(t), Gate::Phase(t)] {
                assert!(is_unitary2(&g.matrix(), TOL), "{g:?} not unitary");
            }
        }
    }

    #[test]
    fn gate_times_dagger_is_identity() {
        for g in all_fixed_gates() {
            let p = matmul2(&g.matrix(), &g.dagger().matrix());
            assert!(p[0][0].approx_eq(C_ONE, TOL));
            assert!(p[1][1].approx_eq(C_ONE, TOL));
            assert!(p[0][1].approx_eq(C_ZERO, TOL));
            assert!(p[1][0].approx_eq(C_ZERO, TOL));
        }
    }

    #[test]
    fn s_is_t_squared() {
        let t2 = matmul2(&Gate::T.matrix(), &Gate::T.matrix());
        let s = Gate::S.matrix();
        for i in 0..2 {
            for j in 0..2 {
                assert!(t2[i][j].approx_eq(s[i][j], TOL));
            }
        }
    }

    #[test]
    fn z_is_s_squared() {
        let s2 = matmul2(&Gate::S.matrix(), &Gate::S.matrix());
        let z = Gate::Z.matrix();
        for i in 0..2 {
            for j in 0..2 {
                assert!(s2[i][j].approx_eq(z[i][j], TOL));
            }
        }
    }

    #[test]
    fn hxh_equals_z() {
        // H X H = Z, the identity behind Fig. 1(a).
        let h = Gate::H.matrix();
        let hxh = matmul2(&matmul2(&h, &Gate::X.matrix()), &h);
        let z = Gate::Z.matrix();
        for i in 0..2 {
            for j in 0..2 {
                assert!(hxh[i][j].approx_eq(z[i][j], TOL));
            }
        }
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        // Rz(pi) = -i Z.
        let rz = Gate::Rz(std::f64::consts::PI).matrix();
        let z = Gate::Z.matrix();
        let phase = Complex::cis(-std::f64::consts::FRAC_PI_2);
        for i in 0..2 {
            for j in 0..2 {
                assert!(rz[i][j].approx_eq(phase * z[i][j], TOL));
            }
        }
    }

    #[test]
    fn pauli_rotation_constructor_dispatches() {
        assert_eq!(Gate::rotation(Pauli::X, 0.5), Gate::Rx(0.5));
        assert_eq!(Gate::rotation(Pauli::Y, 0.5), Gate::Ry(0.5));
        assert_eq!(Gate::rotation(Pauli::Z, 0.5), Gate::Rz(0.5));
    }

    #[test]
    fn two_qubit_matrices_are_unitary() {
        assert!(is_unitary4(&cnot_matrix(), TOL));
        assert!(is_unitary4(&cz_matrix(), TOL));
        assert!(is_unitary4(&swap_matrix(), TOL));
    }

    #[test]
    fn cnot_is_h_cz_h_fig1a() {
        // Fig. 1(a): CNOT = (I ⊗ H) CZ (I ⊗ H), H on the target (low) qubit.
        let h = Gate::H.matrix();
        let mut ih = [[C_ZERO; 4]; 4]; // I ⊗ H acting on |c t>, t low bit
        for c in 0..2 {
            for t_out in 0..2 {
                for t_in in 0..2 {
                    ih[c * 2 + t_out][c * 2 + t_in] = h[t_out][t_in];
                }
            }
        }
        let prod = matmul4(&matmul4(&ih, &cz_matrix()), &ih);
        let cnot = cnot_matrix();
        for i in 0..4 {
            for j in 0..4 {
                assert!(prod[i][j].approx_eq(cnot[i][j], TOL), "mismatch at {i},{j}");
            }
        }
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Z.is_diagonal());
        assert!(Gate::Rz(0.3).is_diagonal());
        assert!(Gate::T.is_diagonal());
        assert!(!Gate::X.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Rx(0.3).is_diagonal());
    }
}
