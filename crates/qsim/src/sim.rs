//! The `Simulator` facade: stable qubit handles over a dynamic state vector.
//!
//! This is the component the paper's prototype runs on rank 0 ("all ranks
//! forward quantum operations to rank 0, which then applies the operation to
//! the state vector"). Qubits are identified by stable [`QubitId`]s; the
//! simulator maintains the id -> state-vector-position mapping across
//! allocations and deallocations.

use crate::apply;
use crate::complex::Complex;
use crate::gates::{Gate, Mat2, Mat4};
use crate::measure::{self, PauliTerm};
use crate::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use crate::state::State;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A stable handle to an allocated qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QubitId(pub u64);

/// Errors reported by the simulator facade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The qubit id is not currently allocated.
    UnknownQubit(QubitId),
    /// A multi-qubit operation was given duplicate qubits.
    DuplicateQubit(QubitId),
    /// `free` was called on a qubit still in superposition/entangled.
    NotClassical(QubitId),
    /// The operation is outside this engine's supported set (e.g. a
    /// non-Clifford gate on the stabilizer tableau, or a state-vector
    /// snapshot from an engine that tracks no amplitudes).
    Unsupported(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownQubit(q) => write!(f, "qubit {q:?} is not allocated"),
            SimError::DuplicateQubit(q) => write!(f, "duplicate qubit {q:?} in operation"),
            SimError::NotClassical(q) => {
                write!(
                    f,
                    "qubit {q:?} is not in a classical state; measure it before freeing"
                )
            }
            SimError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Full state-vector simulator with dynamic qubit allocation.
pub struct Simulator {
    state: State,
    reg: crate::registry::QubitRegistry,
    rng: StdRng,
    noise: NoiseState,
    gate_count: u64,
    measurement_count: u64,
}

impl Simulator {
    /// Creates an empty, noiseless simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator::with_noise(seed, NoiseModel::ideal())
    }

    /// Creates an empty simulator with a deterministic RNG seed and a noise
    /// model, realized as stochastic Pauli/Kraus insertions after each
    /// noisy operation (see [`crate::noise`]). The noise stream is seeded
    /// independently of the measurement stream, so a zero-rate model is
    /// bit-identical to [`Simulator::new`].
    pub fn with_noise(seed: u64, model: NoiseModel) -> Self {
        Simulator {
            state: State::zero(0),
            reg: crate::registry::QubitRegistry::new(),
            rng: StdRng::seed_from_u64(seed),
            noise: NoiseState::new(seed, model),
            gate_count: 0,
            measurement_count: 0,
        }
    }

    /// The configured noise model.
    pub fn noise_model(&self) -> NoiseModel {
        self.noise.model
    }

    /// Samples and applies the `class` channel to each listed state-vector
    /// position. Noise insertions are not counted as gates: the counters
    /// report the *program's* operations, and the trace backend's modeled
    /// fidelity stays comparable across engines.
    fn inject(&mut self, class: OpClass, positions: &[usize]) {
        let ch = self.noise.model.channel(class);
        if ch.is_ideal() {
            return;
        }
        for &pos in positions {
            let action = ch.sample(|| measure::prob_one(&self.state, pos), &mut self.noise.rng);
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => apply::apply_1q(&mut self.state, pos, &p.matrix()),
                ChannelAction::Kraus(m) => apply::apply_1q(&mut self.state, pos, &m),
            }
        }
    }

    /// Number of currently allocated qubits.
    pub fn n_qubits(&self) -> usize {
        self.reg.len()
    }

    /// Total gates applied so far.
    pub fn gate_count(&self) -> u64 {
        self.gate_count
    }

    /// Total measurements performed so far.
    pub fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    /// Allocates one fresh qubit in |0>.
    pub fn alloc(&mut self) -> QubitId {
        let pos = self.state.add_qubit();
        self.reg.push(pos)
    }

    /// Allocates `n` fresh qubits in |0>.
    pub fn alloc_n(&mut self, n: usize) -> Vec<QubitId> {
        (0..n).map(|_| self.alloc()).collect()
    }

    fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.reg.pos(q)
    }

    /// Frees a qubit that is already in a classical state (prob 0 or 1 of
    /// being |1>, up to tolerance). Errors with [`SimError::NotClassical`]
    /// otherwise — mirroring `QMPI_Free_qmem`'s contract.
    pub fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        let outcome = crate::registry::classical_outcome(q, measure::prob_one(&self.state, pos))?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    /// Measures a qubit and frees it in one step.
    pub fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let outcome = self.measure(q)?;
        let pos = self.pos(q)?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn remove_at(&mut self, q: QubitId, pos: usize, outcome: bool) {
        self.state.remove_qubit(pos, outcome);
        self.reg.remove(q, pos);
    }

    /// Applies a single-qubit gate.
    pub fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        apply::apply_1q(&mut self.state, pos, &gate.matrix());
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    /// Applies a pre-fused 2×2 unitary — a run of adjacent 1q gates
    /// multiplied at plan time ([`crate::batch::BatchOp::Fused1q`]).
    /// Executes through the same dense kernel as [`Simulator::apply`] with
    /// `Gate::U(m)`, so fusion cannot change per-pair arithmetic; counted
    /// as one gate (the counters report kernel sweeps, which is what the
    /// fused plan reduces).
    pub fn apply_fused_1q(&mut self, q: QubitId, m: &Mat2) -> Result<(), SimError> {
        let pos = self.pos(q)?;
        apply::apply_1q(&mut self.state, pos, m);
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    /// Applies a merged diagonal sweep
    /// ([`crate::batch::BatchOp::PhaseSweep`]) in one pass over the state:
    /// per amplitude, each `(q, d0, d1)` factor multiplies sequentially in
    /// slice order (`d1` when qubit `q` reads 1), then the amplitude is
    /// negated when an odd number of `czs` pairs have both qubits set.
    /// Counted as one gate.
    pub fn apply_phase_sweep(
        &mut self,
        diags: &[(QubitId, Complex, Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> Result<(), SimError> {
        let mut factors = Vec::with_capacity(diags.len());
        let mut touched = Vec::with_capacity(diags.len() + 2 * czs.len());
        for &(q, d0, d1) in diags {
            let pos = self.pos(q)?;
            factors.push((1usize << pos, d0, d1));
            touched.push(pos);
        }
        let mut flips = Vec::with_capacity(czs.len());
        for &(a, b) in czs {
            if a == b {
                return Err(SimError::DuplicateQubit(a));
            }
            let pa = self.pos(a)?;
            let pb = self.pos(b)?;
            flips.push((1usize << pa) | (1usize << pb));
            touched.push(pa);
            touched.push(pb);
        }
        crate::stripe::phase_sweep(self.state.amplitudes_mut(), 0, &factors, &flips);
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &touched);
        Ok(())
    }

    /// Applies a controlled single-qubit gate (any number of controls).
    pub fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        let tpos = self.pos(target)?;
        let mut cpos = Vec::with_capacity(controls.len());
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
            cpos.push(self.pos(c)?);
        }
        apply::apply_controlled_1q(&mut self.state, &cpos, tpos, &gate.matrix());
        self.gate_count += 1;
        cpos.push(tpos);
        self.inject(OpClass::Gate2q, &cpos);
        Ok(())
    }

    /// CNOT with `control`, `target`.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), SimError> {
        if control == target {
            return Err(SimError::DuplicateQubit(control));
        }
        let c = self.pos(control)?;
        let t = self.pos(target)?;
        apply::apply_cnot(&mut self.state, c, t);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[c, t]);
        Ok(())
    }

    /// Controlled-Z (symmetric).
    pub fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        apply::apply_cz(&mut self.state, pa, pb);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    /// SWAP two qubits.
    pub fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        apply::apply_swap(&mut self.state, pa, pb);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    /// Toffoli (doubly-controlled NOT), the gate whose count dominates the
    /// fault-tolerant applications cited in Section 3.
    pub fn toffoli(&mut self, c1: QubitId, c2: QubitId, target: QubitId) -> Result<(), SimError> {
        self.apply_controlled(&[c1, c2], Gate::X, target)
    }

    /// Applies an arbitrary two-qubit unitary to `(high, low)`.
    pub fn apply_2q(&mut self, high: QubitId, low: QubitId, m: &Mat4) -> Result<(), SimError> {
        if high == low {
            return Err(SimError::DuplicateQubit(high));
        }
        let hp = self.pos(high)?;
        let lp = self.pos(low)?;
        apply::apply_2q(&mut self.state, hp, lp, m);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[hp, lp]);
        Ok(())
    }

    /// Probability of measuring 1 on `q` (non-destructive).
    pub fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        Ok(measure::prob_one(&self.state, self.pos(q)?))
    }

    /// Projective measurement with collapse. The measurement channel of a
    /// configured noise model is applied before projection (readout error).
    pub fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        let pos = self.pos(q)?;
        self.inject(OpClass::Measurement, &[pos]);
        self.measurement_count += 1;
        Ok(measure::measure(&mut self.state, pos, &mut self.rng))
    }

    /// Non-destructive joint Z-parity measurement over `qubits`.
    pub fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        let mut pos = Vec::with_capacity(qubits.len());
        for &q in qubits {
            pos.push(self.pos(q)?);
        }
        self.inject(OpClass::Measurement, &pos);
        self.measurement_count += 1;
        Ok(measure::measure_z_parity(
            &mut self.state,
            &pos,
            &mut self.rng,
        ))
    }

    /// Expectation value of a Pauli string given as `(qubit, pauli)` pairs.
    pub fn expectation(&self, terms: &[(QubitId, crate::gates::Pauli)]) -> Result<f64, SimError> {
        let mut mapped = Vec::with_capacity(terms.len());
        for &(q, op) in terms {
            mapped.push(PauliTerm {
                qubit: self.pos(q)?,
                op,
            });
        }
        Ok(measure::expectation_pauli(&self.state, &mapped))
    }

    /// Entangles two fresh |0> qubits into (|00> + |11>)/sqrt(2), modeling
    /// the quantum-coherent interconnect. Counted as the H + CNOT it stands
    /// for; a configured EPR noise channel is applied to *each half* after
    /// entangling (not the gate channels — interconnect noise is its own
    /// [`OpClass::Epr`] class).
    pub fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        apply::apply_1q(&mut self.state, pa, &Gate::H.matrix());
        apply::apply_cnot(&mut self.state, pa, pb);
        self.gate_count += 2;
        self.inject(OpClass::Epr, &[pa, pb]);
        Ok(())
    }

    /// Snapshot of the state vector with qubits ordered as given in `order`
    /// (`order[0]` is the least-significant bit). `order` must contain every
    /// live qubit exactly once.
    pub fn state_vector(&self, order: &[QubitId]) -> Result<State, SimError> {
        Ok(self.state.permuted(&self.reg.permutation(order)?))
    }

    /// Raw internal state (position ordering); mostly for diagnostics.
    pub fn raw_state(&self) -> &State {
        &self.state
    }

    /// The amplitude of the basis state where the qubits listed in `ones` are
    /// 1 and all other live qubits are 0.
    pub fn amplitude_of(&self, ones: &[QubitId]) -> Result<Complex, SimError> {
        let mut idx = 0usize;
        for &q in ones {
            idx |= 1usize << self.pos(q)?;
        }
        Ok(self.state.amplitude(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{Gate, Pauli};

    const TOL: f64 = 1e-10;

    #[test]
    fn alloc_free_roundtrip() {
        let mut sim = Simulator::new(1);
        let q = sim.alloc();
        assert_eq!(sim.n_qubits(), 1);
        assert_eq!(sim.free(q), Ok(false));
        assert_eq!(sim.n_qubits(), 0);
    }

    #[test]
    fn free_after_x_returns_one() {
        let mut sim = Simulator::new(1);
        let q = sim.alloc();
        sim.apply(Gate::X, q).unwrap();
        assert_eq!(sim.free(q), Ok(true));
    }

    #[test]
    fn free_superposed_qubit_errors() {
        let mut sim = Simulator::new(1);
        let q = sim.alloc();
        sim.apply(Gate::H, q).unwrap();
        assert_eq!(sim.free(q), Err(SimError::NotClassical(q)));
        // measure_and_free works regardless.
        assert!(sim.measure_and_free(q).is_ok());
        assert_eq!(sim.n_qubits(), 0);
    }

    #[test]
    fn unknown_qubit_rejected() {
        let mut sim = Simulator::new(1);
        let q = sim.alloc();
        sim.free(q).unwrap();
        assert_eq!(sim.apply(Gate::X, q), Err(SimError::UnknownQubit(q)));
        assert_eq!(sim.measure(q), Err(SimError::UnknownQubit(q)));
    }

    #[test]
    fn handles_stable_across_interleaved_free() {
        let mut sim = Simulator::new(1);
        let a = sim.alloc();
        let b = sim.alloc();
        let c = sim.alloc();
        sim.apply(Gate::X, c).unwrap();
        sim.free(b).unwrap(); // removing the middle qubit shifts positions
                              // c must still read as |1>.
        assert!((sim.prob_one(c).unwrap() - 1.0).abs() < TOL);
        assert!(sim.prob_one(a).unwrap() < TOL);
        assert_eq!(sim.free(c), Ok(true));
        assert_eq!(sim.free(a), Ok(false));
    }

    #[test]
    fn epr_pair_correlations() {
        let mut sim = Simulator::new(7);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::H, a).unwrap();
        sim.cnot(a, b).unwrap();
        let ma = sim.measure(a).unwrap();
        let mb = sim.measure(b).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn teleportation_within_simulator() {
        // Full teleportation circuit (Fig. 3c) inside one simulator: state of
        // `src` (arbitrary) moves to `dst` exactly.
        let mut sim = Simulator::new(3);
        let src = sim.alloc();
        sim.apply(Gate::Ry(0.73), src).unwrap();
        sim.apply(Gate::Rz(-1.2), src).unwrap();
        let reference = {
            let mut s = Simulator::new(0);
            let q = s.alloc();
            s.apply(Gate::Ry(0.73), q).unwrap();
            s.apply(Gate::Rz(-1.2), q).unwrap();
            s.state_vector(&[q]).unwrap()
        };
        // EPR pair between "nodes".
        let e1 = sim.alloc();
        let e2 = sim.alloc();
        sim.apply(Gate::H, e1).unwrap();
        sim.cnot(e1, e2).unwrap();
        // Fanout: parity of (src, e1).
        sim.cnot(src, e1).unwrap();
        let m_f = sim.measure_and_free(e1).unwrap();
        if m_f {
            sim.apply(Gate::X, e2).unwrap();
        }
        // Unfanout: X-basis measurement of src.
        sim.apply(Gate::H, src).unwrap();
        let m_u = sim.measure_and_free(src).unwrap();
        if m_u {
            sim.apply(Gate::Z, e2).unwrap();
        }
        let out = sim.state_vector(&[e2]).unwrap();
        assert!((out.fidelity(&reference) - 1.0).abs() < TOL);
    }

    #[test]
    fn cnot_reset_fig1b() {
        // Fig. 1(b): when CNOT would reset the target to |0>, replace it by
        // H + measure + conditional Z on the control side.
        // Build alpha|0>|0> + beta|1>|1> (target is a fanned-out copy).
        for (a, b) in [(0.6f64, 0.8f64), (0.28, 0.96)] {
            let mut sim = Simulator::new(11);
            let ctrl = sim.alloc();
            let copy = sim.alloc();
            sim.apply(Gate::Ry(2.0 * (b).atan2(a)), ctrl).unwrap();
            sim.cnot(ctrl, copy).unwrap();
            // Reference: undo with an actual CNOT.
            let mut reference = Simulator::new(11);
            let rc = reference.alloc();
            let rcopy = reference.alloc();
            reference.apply(Gate::Ry(2.0 * (b).atan2(a)), rc).unwrap();
            reference.cnot(rc, rcopy).unwrap();
            reference.cnot(rc, rcopy).unwrap();
            reference.free(rcopy).unwrap();
            let ref_state = reference.state_vector(&[rc]).unwrap();
            // Deferred-measurement version.
            sim.apply(Gate::H, copy).unwrap();
            let m = sim.measure_and_free(copy).unwrap();
            if m {
                sim.apply(Gate::Z, ctrl).unwrap();
            }
            let out = sim.state_vector(&[ctrl]).unwrap();
            assert!((out.fidelity(&ref_state) - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn expectation_through_handles() {
        let mut sim = Simulator::new(5);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::H, a).unwrap();
        sim.cnot(a, b).unwrap();
        let zz = sim.expectation(&[(a, Pauli::Z), (b, Pauli::Z)]).unwrap();
        assert!((zz - 1.0).abs() < TOL);
    }

    #[test]
    fn state_vector_ordering() {
        let mut sim = Simulator::new(5);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::X, b).unwrap();
        // Order [a, b]: expect |10> (b is high bit).
        let s = sim.state_vector(&[a, b]).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < TOL);
        // Order [b, a]: expect |01>.
        let s = sim.state_vector(&[b, a]).unwrap();
        assert!((s.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn gate_and_measurement_counters() {
        let mut sim = Simulator::new(5);
        let q = sim.alloc();
        sim.apply(Gate::H, q).unwrap();
        sim.apply(Gate::H, q).unwrap();
        sim.measure(q).unwrap();
        assert_eq!(sim.gate_count(), 2);
        assert_eq!(sim.measurement_count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let qs = sim.alloc_n(4);
            for &q in &qs {
                sim.apply(Gate::H, q).unwrap();
            }
            qs.iter()
                .map(|&q| sim.measure(q).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123));
    }
}
