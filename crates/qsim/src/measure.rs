//! Projective measurement, collapse, and Pauli-string expectation values.

use crate::complex::Complex;
use crate::state::State;
use rand::Rng;

/// Probability that measuring `target` yields 1.
pub fn prob_one(state: &State, target: usize) -> f64 {
    assert!(target < state.n_qubits(), "qubit {target} out of range");
    let bit = 1usize << target;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit == bit)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Collapses `target` onto `outcome` and renormalizes. The caller must ensure
/// the outcome has nonzero probability.
pub fn collapse(state: &mut State, target: usize, outcome: bool) {
    let bit = 1usize << target;
    let keep = if outcome { bit } else { 0 };
    let mut norm = 0.0f64;
    for (i, a) in state.amplitudes_mut().iter_mut().enumerate() {
        if i & bit == keep {
            norm += a.norm_sqr();
        } else {
            *a = crate::complex::C_ZERO;
        }
    }
    assert!(
        norm > 1e-12,
        "collapsing qubit {target} onto probability-zero outcome"
    );
    let inv = 1.0 / norm.sqrt();
    for a in state.amplitudes_mut() {
        *a = a.scale(inv);
    }
}

/// Measures `target` in the computational basis, sampling with `rng`,
/// collapsing the state, and returning the outcome.
pub fn measure(state: &mut State, target: usize, rng: &mut impl Rng) -> bool {
    let p1 = prob_one(state, target);
    let outcome = rng.gen::<f64>() < p1;
    collapse(state, target, outcome);
    outcome
}

/// Non-destructive joint Z-parity measurement over `qubits`: projects onto
/// the even (+1, `false`) or odd (−1, `true`) parity subspace, sampling the
/// outcome, and returns it. No qubit is individually collapsed.
pub fn measure_z_parity(state: &mut State, qubits: &[usize], rng: &mut impl Rng) -> bool {
    let mut mask = 0usize;
    for &q in qubits {
        assert!(q < state.n_qubits(), "qubit {q} out of range");
        mask |= 1usize << q;
    }
    let mut p_odd = 0.0f64;
    for (i, a) in state.amplitudes().iter().enumerate() {
        if (i & mask).count_ones() % 2 == 1 {
            p_odd += a.norm_sqr();
        }
    }
    let outcome = rng.gen::<f64>() < p_odd;
    let want_odd = outcome;
    let mut norm = 0.0f64;
    for (i, a) in state.amplitudes_mut().iter_mut().enumerate() {
        let odd = (i & mask).count_ones() % 2 == 1;
        if odd == want_odd {
            norm += a.norm_sqr();
        } else {
            *a = crate::complex::C_ZERO;
        }
    }
    let inv = 1.0 / norm.sqrt();
    for a in state.amplitudes_mut() {
        *a = a.scale(inv);
    }
    outcome
}

/// One factor of a Pauli-string observable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PauliTerm {
    /// Which qubit the operator acts on.
    pub qubit: usize,
    /// Which Pauli operator.
    pub op: crate::gates::Pauli,
}

/// Expectation value `<psi| P |psi>` of a Pauli string (a tensor product of
/// single-qubit Paulis on distinct qubits; identity elsewhere).
pub fn expectation_pauli(state: &State, terms: &[PauliTerm]) -> f64 {
    use crate::gates::Pauli;
    let n = state.n_qubits();
    let mut x_mask = 0usize; // qubits flipped by the string (X or Y)
    let mut z_mask = 0usize; // qubits acquiring a (-1)^bit phase (Z or Y)
    let mut y_count = 0u32;
    for t in terms {
        assert!(t.qubit < n, "qubit {} out of range", t.qubit);
        match t.op {
            Pauli::X => x_mask |= 1 << t.qubit,
            Pauli::Z => z_mask |= 1 << t.qubit,
            Pauli::Y => {
                x_mask |= 1 << t.qubit;
                z_mask |= 1 << t.qubit;
                y_count += 1;
            }
        }
    }
    // P|i> = i^{y_count} * (-1)^{parity(i & z_eff)} |i ^ x_mask>, where for Y the
    // phase acts on the flipped bit; using the convention Y = i X Z.
    // <psi|P|psi> = sum_i conj(a[i ^ x_mask]) * phase(i) * a[i].
    let amps = state.amplitudes();
    let mut acc = Complex::default();
    let i_pow = match y_count % 4 {
        0 => Complex::real(1.0),
        1 => crate::complex::C_I,
        2 => Complex::real(-1.0),
        _ => -crate::complex::C_I,
    };
    for (i, &a) in amps.iter().enumerate() {
        if a.is_negligible(1e-300) {
            continue;
        }
        let sign = if (i & z_mask).count_ones() % 2 == 1 {
            -1.0
        } else {
            1.0
        };
        let j = i ^ x_mask;
        acc += amps[j].conj() * (a.scale(sign));
    }
    let val = i_pow * acc;
    debug_assert!(
        val.im.abs() < 1e-9,
        "expectation of Hermitian operator must be real"
    );
    val.re
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_1q, apply_cnot};
    use crate::gates::{Gate, Pauli};
    use crate::state::State;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-10;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn prob_one_of_zero_state_is_zero() {
        let s = State::zero(2);
        assert!(prob_one(&s, 0) < TOL);
        assert!(prob_one(&s, 1) < TOL);
    }

    #[test]
    fn prob_one_after_x() {
        let mut s = State::zero(2);
        apply_1q(&mut s, 1, &Gate::X.matrix());
        assert!((prob_one(&s, 1) - 1.0).abs() < TOL);
        assert!(prob_one(&s, 0) < TOL);
    }

    #[test]
    fn measurement_statistics_of_plus_state() {
        let mut ones = 0u32;
        let trials = 2000;
        let mut r = rng();
        for _ in 0..trials {
            let mut s = State::zero(1);
            apply_1q(&mut s, 0, &Gate::H.matrix());
            if measure(&mut s, 0, &mut r) {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn measurement_collapses_entanglement() {
        let mut r = rng();
        for _ in 0..50 {
            let mut s = State::zero(2);
            apply_1q(&mut s, 0, &Gate::H.matrix());
            apply_cnot(&mut s, 0, 1);
            let m0 = measure(&mut s, 0, &mut r);
            let m1 = measure(&mut s, 1, &mut r);
            assert_eq!(m0, m1, "EPR halves must agree");
        }
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = State::zero(1);
        apply_1q(&mut s, 0, &Gate::Ry(1.0).matrix());
        collapse(&mut s, 0, true);
        assert!((s.norm_sqr() - 1.0).abs() < TOL);
        assert!((prob_one(&s, 0) - 1.0).abs() < TOL);
    }

    #[test]
    fn parity_measurement_of_epr_pair_is_even() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = State::zero(2);
            apply_1q(&mut s, 0, &Gate::H.matrix());
            apply_cnot(&mut s, 0, 1);
            // EPR pair lives entirely in the even-parity subspace.
            assert!(!measure_z_parity(&mut s, &[0, 1], &mut r));
            // State must still be the EPR pair (projection was trivial).
            assert!((s.probability(0b00) - 0.5).abs() < TOL);
            assert!((s.probability(0b11) - 0.5).abs() < TOL);
        }
    }

    #[test]
    fn parity_measurement_preserves_superposition() {
        // |++> has equal weight in both parity sectors; after measurement the
        // state is a GHZ-like superposition within one sector.
        let mut r = rng();
        let mut s = State::zero(2);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        apply_1q(&mut s, 1, &Gate::H.matrix());
        let odd = measure_z_parity(&mut s, &[0, 1], &mut r);
        if odd {
            assert!((s.probability(0b01) - 0.5).abs() < TOL);
            assert!((s.probability(0b10) - 0.5).abs() < TOL);
        } else {
            assert!((s.probability(0b00) - 0.5).abs() < TOL);
            assert!((s.probability(0b11) - 0.5).abs() < TOL);
        }
        assert!((s.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn expectation_z_of_zero_and_one() {
        let s = State::zero(1);
        assert!(
            (expectation_pauli(
                &s,
                &[PauliTerm {
                    qubit: 0,
                    op: Pauli::Z
                }]
            ) - 1.0)
                .abs()
                < TOL
        );
        let mut s1 = State::zero(1);
        apply_1q(&mut s1, 0, &Gate::X.matrix());
        assert!(
            (expectation_pauli(
                &s1,
                &[PauliTerm {
                    qubit: 0,
                    op: Pauli::Z
                }]
            ) + 1.0)
                .abs()
                < TOL
        );
    }

    #[test]
    fn expectation_x_of_plus_state() {
        let mut s = State::zero(1);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        assert!(
            (expectation_pauli(
                &s,
                &[PauliTerm {
                    qubit: 0,
                    op: Pauli::X
                }]
            ) - 1.0)
                .abs()
                < TOL
        );
        assert!(
            expectation_pauli(
                &s,
                &[PauliTerm {
                    qubit: 0,
                    op: Pauli::Z
                }]
            )
            .abs()
                < TOL
        );
    }

    #[test]
    fn expectation_y_of_y_eigenstate() {
        // S H |0> = (|0> + i|1>)/sqrt(2), the +1 eigenstate of Y.
        let mut s = State::zero(1);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        apply_1q(&mut s, 0, &Gate::S.matrix());
        assert!(
            (expectation_pauli(
                &s,
                &[PauliTerm {
                    qubit: 0,
                    op: Pauli::Y
                }]
            ) - 1.0)
                .abs()
                < TOL
        );
    }

    #[test]
    fn expectation_zz_of_epr_pair() {
        let mut s = State::zero(2);
        apply_1q(&mut s, 0, &Gate::H.matrix());
        apply_cnot(&mut s, 0, 1);
        let zz = expectation_pauli(
            &s,
            &[
                PauliTerm {
                    qubit: 0,
                    op: Pauli::Z,
                },
                PauliTerm {
                    qubit: 1,
                    op: Pauli::Z,
                },
            ],
        );
        let xx = expectation_pauli(
            &s,
            &[
                PauliTerm {
                    qubit: 0,
                    op: Pauli::X,
                },
                PauliTerm {
                    qubit: 1,
                    op: Pauli::X,
                },
            ],
        );
        let yy = expectation_pauli(
            &s,
            &[
                PauliTerm {
                    qubit: 0,
                    op: Pauli::Y,
                },
                PauliTerm {
                    qubit: 1,
                    op: Pauli::Y,
                },
            ],
        );
        // Bell state (|00>+|11>)/sqrt(2): <ZZ> = <XX> = 1, <YY> = -1.
        assert!((zz - 1.0).abs() < TOL);
        assert!((xx - 1.0).abs() < TOL);
        assert!((yy + 1.0).abs() < TOL);
    }
}
