//! Pluggable noise channels for the simulation engines.
//!
//! The QMPI paper's performance model becomes interesting once EPR pairs and
//! gates are *imperfect*: fidelity under a constrained SENDQ `S` budget is
//! the quantity Häner et al. reason about. This module defines the channel
//! vocabulary shared by every engine:
//!
//! * [`NoiseChannel`] — one single-qubit channel (depolarizing, dephasing,
//!   or amplitude damping) with its rate;
//! * [`NoiseModel`] — independent channels for the four operation classes
//!   ([`OpClass`]): single-qubit gates, multi-qubit gates, measurement, and
//!   EPR establishment over the interconnect;
//! * [`NoiseState`] — the model plus its own seeded RNG stream, used by the
//!   engines to sample stochastic insertions.
//!
//! ## Unraveling
//!
//! Dense engines realize channels as stochastic quantum trajectories: after
//! each noisy operation the channel [samples](NoiseChannel::sample) an
//! action per involved qubit — nothing, a Pauli insertion, or (for amplitude
//! damping) a renormalized Kraus jump/no-jump operator. Averaged over seeds,
//! the trajectories reproduce the channel's density-matrix action; a single
//! seeded run is one member of the ensemble, exactly like QCMPI-style
//! ensemble experiments.
//!
//! ## Determinism
//!
//! Noise draws come from a dedicated RNG whose seed is derived from the
//! world seed via [`noise_stream_seed`]. The measurement RNG stream is never
//! touched by noise sampling, and a channel whose rate is zero draws
//! nothing, so a zero-rate model is bit-identical to the noiseless path on
//! every engine. Two engines given the same seed and the same operation
//! sequence draw identical noise streams — this is what keeps the dense and
//! sharded state-vector engines amplitude-identical under noise.

use crate::complex::{Complex, C_ZERO};
use crate::gates::{Mat2, Pauli};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operation classes a [`NoiseModel`] distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-qubit gates.
    Gate1q,
    /// Multi-qubit gates (CNOT, CZ, SWAP, controlled gates): the channel is
    /// applied independently to *every* involved qubit.
    Gate2q,
    /// Measurement (projective, parity, and measuring frees): the channel is
    /// applied to every measured qubit *before* projection, modeling
    /// readout error.
    Measurement,
    /// EPR establishment over the interconnect: the channel is applied to
    /// *each half* of the pair after entangling.
    Epr,
}

/// One single-qubit noise channel with its rate.
///
/// Rates are probabilities in `[0, 1]` per application site (see
/// [`OpClass`] for the per-qubit conventions).
///
/// ```
/// use qsim::noise::NoiseChannel;
///
/// let ch = NoiseChannel::Depolarizing { p: 0.01 };
/// assert!(ch.is_clifford());
/// assert!((ch.error_free_probability() - 0.99).abs() < 1e-12);
/// assert!(!NoiseChannel::AmplitudeDamping { gamma: 0.1 }.is_clifford());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum NoiseChannel {
    /// The ideal (identity) channel.
    #[default]
    None,
    /// With probability `p`, apply a uniformly random Pauli (X, Y, or Z
    /// each with probability `p/3`).
    Depolarizing {
        /// Total error probability.
        p: f64,
    },
    /// With probability `p`, apply Z.
    Dephasing {
        /// Phase-flip probability.
        p: f64,
    },
    /// Amplitude damping (energy relaxation |1> -> |0>) with damping
    /// parameter `gamma`, unraveled as a quantum trajectory: the jump
    /// fires with probability `gamma * P(|1>)`. Not Clifford — rejected by
    /// the stabilizer backend.
    AmplitudeDamping {
        /// Damping parameter in `[0, 1]`.
        gamma: f64,
    },
}

/// What a sampled channel application does to one qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelAction {
    /// No error this time.
    Nothing,
    /// Insert this Pauli.
    Pauli(Pauli),
    /// Apply this (non-unitary, renormalization included) 2x2 Kraus map.
    Kraus(Mat2),
}

impl NoiseChannel {
    /// The channel's error rate (`p` or `gamma`; 0 for the ideal channel).
    pub fn rate(self) -> f64 {
        match self {
            NoiseChannel::None => 0.0,
            NoiseChannel::Depolarizing { p } | NoiseChannel::Dephasing { p } => p,
            NoiseChannel::AmplitudeDamping { gamma } => gamma,
        }
    }

    /// True when the channel can never fire (ideal, or rate exactly zero).
    /// Ideal channels draw nothing from the noise RNG, which is what makes
    /// zero-rate runs bit-identical to noiseless runs.
    pub fn is_ideal(self) -> bool {
        self.rate() == 0.0
    }

    /// True when every sampled action is a Pauli insertion, i.e. the
    /// channel can run on the stabilizer tableau.
    pub fn is_clifford(self) -> bool {
        match self {
            NoiseChannel::None
            | NoiseChannel::Depolarizing { .. }
            | NoiseChannel::Dephasing { .. } => true,
            NoiseChannel::AmplitudeDamping { .. } => self.is_ideal(),
        }
    }

    /// Probability that no error event fires at one application site —
    /// the factor the trace backend multiplies into its modeled fidelity.
    pub fn error_free_probability(self) -> f64 {
        1.0 - self.rate()
    }

    /// Checks the rate is a probability.
    pub fn validate(self) -> Result<(), String> {
        let r = self.rate();
        if (0.0..=1.0).contains(&r) {
            Ok(())
        } else {
            Err(format!("noise rate {r} of {self:?} is outside [0, 1]"))
        }
    }

    /// Samples this channel's action on one qubit.
    ///
    /// `prob_one` lazily reports the qubit's current probability of reading
    /// |1> — only the amplitude-damping trajectory evaluates it. Ideal
    /// channels return [`ChannelAction::Nothing`] without drawing from
    /// `rng`; every non-ideal channel draws exactly one `f64`, so engines
    /// fed the same seed and operation sequence consume identical streams.
    pub fn sample(self, prob_one: impl FnOnce() -> f64, rng: &mut StdRng) -> ChannelAction {
        if self.is_ideal() {
            return ChannelAction::Nothing;
        }
        match self {
            NoiseChannel::None => ChannelAction::Nothing,
            NoiseChannel::Depolarizing { p } => {
                let u = rng.gen::<f64>();
                if u >= p {
                    ChannelAction::Nothing
                } else {
                    // Reuse the draw: u/p is uniform in [0, 1) given u < p.
                    match ((u / p) * 3.0) as usize {
                        0 => ChannelAction::Pauli(Pauli::X),
                        1 => ChannelAction::Pauli(Pauli::Y),
                        _ => ChannelAction::Pauli(Pauli::Z),
                    }
                }
            }
            NoiseChannel::Dephasing { p } => {
                if rng.gen::<f64>() < p {
                    ChannelAction::Pauli(Pauli::Z)
                } else {
                    ChannelAction::Nothing
                }
            }
            NoiseChannel::AmplitudeDamping { gamma } => {
                let p1 = prob_one();
                let p_jump = gamma * p1;
                if rng.gen::<f64>() < p_jump {
                    // Jump K1 = sqrt(gamma)|0><1|, renormalized by
                    // sqrt(p_jump): the |1> component relaxes to |0>.
                    let k = Complex::real(1.0 / p1.sqrt());
                    ChannelAction::Kraus([[C_ZERO, k], [C_ZERO, C_ZERO]])
                } else {
                    // No-jump K0 = diag(1, sqrt(1-gamma)), renormalized by
                    // sqrt(1 - p_jump).
                    let inv = 1.0 / (1.0 - p_jump).sqrt();
                    ChannelAction::Kraus([
                        [Complex::real(inv), C_ZERO],
                        [C_ZERO, Complex::real((1.0 - gamma).sqrt() * inv)],
                    ])
                }
            }
        }
    }
}

impl std::fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoiseChannel::None => write!(f, "ideal"),
            NoiseChannel::Depolarizing { p } => write!(f, "depolarizing(p={p})"),
            NoiseChannel::Dephasing { p } => write!(f, "dephasing(p={p})"),
            NoiseChannel::AmplitudeDamping { gamma } => {
                write!(f, "amplitude-damping(gamma={gamma})")
            }
        }
    }
}

/// Independent noise channels for the four [`OpClass`]es.
///
/// Built fluently; the default is the ideal model:
///
/// ```
/// use qsim::noise::{NoiseChannel, NoiseModel, OpClass};
///
/// // Uniform 0.1% depolarizing everywhere, but 2% on the interconnect.
/// let model = NoiseModel::depolarizing(0.001)
///     .with_epr(NoiseChannel::Depolarizing { p: 0.02 });
/// assert_eq!(model.channel(OpClass::Epr), NoiseChannel::Depolarizing { p: 0.02 });
/// assert!(model.is_clifford());
/// assert!(!model.is_ideal());
/// assert!(NoiseModel::ideal().is_ideal());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// Channel applied after every single-qubit gate.
    pub gate_1q: NoiseChannel,
    /// Channel applied to every qubit involved in a multi-qubit gate.
    pub gate_2q: NoiseChannel,
    /// Channel applied to every measured qubit before projection.
    pub measurement: NoiseChannel,
    /// Channel applied to each half of an EPR pair after establishment.
    pub epr: NoiseChannel,
}

impl NoiseModel {
    /// The ideal (noiseless) model; identical to `NoiseModel::default()`.
    pub fn ideal() -> Self {
        NoiseModel::default()
    }

    /// Uniform depolarizing noise with probability `p` on all four classes.
    pub fn depolarizing(p: f64) -> Self {
        let ch = NoiseChannel::Depolarizing { p };
        NoiseModel {
            gate_1q: ch,
            gate_2q: ch,
            measurement: ch,
            epr: ch,
        }
    }

    /// Uniform dephasing noise with probability `p` on all four classes.
    pub fn dephasing(p: f64) -> Self {
        let ch = NoiseChannel::Dephasing { p };
        NoiseModel {
            gate_1q: ch,
            gate_2q: ch,
            measurement: ch,
            epr: ch,
        }
    }

    /// Uniform amplitude damping with parameter `gamma` on all four classes.
    pub fn amplitude_damping(gamma: f64) -> Self {
        let ch = NoiseChannel::AmplitudeDamping { gamma };
        NoiseModel {
            gate_1q: ch,
            gate_2q: ch,
            measurement: ch,
            epr: ch,
        }
    }

    /// Noise on the interconnect only: `ch` on EPR establishment, every
    /// other class ideal. The configuration of the paper's
    /// fidelity-vs-`S`-budget studies, where imperfect EPR pairs dominate.
    pub fn epr_only(ch: NoiseChannel) -> Self {
        NoiseModel::ideal().with_epr(ch)
    }

    /// Replaces the single-qubit-gate channel.
    pub fn with_gate_1q(mut self, ch: NoiseChannel) -> Self {
        self.gate_1q = ch;
        self
    }

    /// Replaces the multi-qubit-gate channel.
    pub fn with_gate_2q(mut self, ch: NoiseChannel) -> Self {
        self.gate_2q = ch;
        self
    }

    /// Replaces the measurement channel.
    pub fn with_measurement(mut self, ch: NoiseChannel) -> Self {
        self.measurement = ch;
        self
    }

    /// Replaces the EPR-establishment channel.
    pub fn with_epr(mut self, ch: NoiseChannel) -> Self {
        self.epr = ch;
        self
    }

    /// The channel for one operation class.
    pub fn channel(&self, class: OpClass) -> NoiseChannel {
        match class {
            OpClass::Gate1q => self.gate_1q,
            OpClass::Gate2q => self.gate_2q,
            OpClass::Measurement => self.measurement,
            OpClass::Epr => self.epr,
        }
    }

    /// True when no channel can ever fire.
    pub fn is_ideal(&self) -> bool {
        self.channels().iter().all(|ch| ch.is_ideal())
    }

    /// True when every channel runs on the stabilizer tableau.
    pub fn is_clifford(&self) -> bool {
        self.channels().iter().all(|ch| ch.is_clifford())
    }

    /// True when some channel's sampling decision depends on the quantum
    /// state (amplitude damping reads `P(|1>)` to decide the jump). A
    /// state-dependent model cannot be sampled ahead of applying the gates
    /// it rides on, so batching engines fall back to gate-at-a-time
    /// dispatch under it; Pauli-only models sample state-free and batch
    /// fully.
    pub fn is_state_dependent(&self) -> bool {
        self.channels()
            .iter()
            .any(|ch| !ch.is_ideal() && matches!(ch, NoiseChannel::AmplitudeDamping { .. }))
    }

    /// Checks every rate is a probability.
    pub fn validate(&self) -> Result<(), String> {
        for ch in self.channels() {
            ch.validate()?;
        }
        Ok(())
    }

    fn channels(&self) -> [NoiseChannel; 4] {
        [self.gate_1q, self.gate_2q, self.measurement, self.epr]
    }
}

/// Derives the noise RNG seed from the world seed. Kept separate from the
/// measurement stream so enabling (or zeroing) noise never perturbs
/// measurement outcomes — splitmix64's finalizer over a tagged seed.
pub fn noise_stream_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0x4E4F_4953_4551_4D50; // "NOISEQMP"
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`NoiseModel`] plus its dedicated RNG stream — the state an engine
/// carries to sample stochastic insertions.
#[derive(Clone, Debug)]
pub struct NoiseState {
    /// The configured model.
    pub model: NoiseModel,
    /// The dedicated noise stream (seeded via [`noise_stream_seed`]).
    pub rng: StdRng,
}

impl NoiseState {
    /// Builds the noise state for a world seeded with `seed`.
    pub fn new(seed: u64, model: NoiseModel) -> Self {
        NoiseState {
            model,
            rng: StdRng::seed_from_u64(noise_stream_seed(seed)),
        }
    }

    /// Samples the action of the `class` channel on one qubit; see
    /// [`NoiseChannel::sample`].
    pub fn sample(&mut self, class: OpClass, prob_one: impl FnOnce() -> f64) -> ChannelAction {
        self.model.channel(class).sample(prob_one, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_channels_draw_nothing() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for ch in [
            NoiseChannel::None,
            NoiseChannel::Depolarizing { p: 0.0 },
            NoiseChannel::Dephasing { p: 0.0 },
            NoiseChannel::AmplitudeDamping { gamma: 0.0 },
        ] {
            assert!(ch.is_ideal());
            assert_eq!(ch.sample(|| 0.3, &mut a), ChannelAction::Nothing);
        }
        // The streams must still be aligned: no draw was consumed.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn depolarizing_frequencies_match_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let ch = NoiseChannel::Depolarizing { p: 0.3 };
        let mut counts = [0u32; 4]; // nothing, x, y, z
        let n = 30_000;
        for _ in 0..n {
            match ch.sample(|| 0.0, &mut rng) {
                ChannelAction::Nothing => counts[0] += 1,
                ChannelAction::Pauli(Pauli::X) => counts[1] += 1,
                ChannelAction::Pauli(Pauli::Y) => counts[2] += 1,
                ChannelAction::Pauli(Pauli::Z) => counts[3] += 1,
                ChannelAction::Kraus(_) => unreachable!(),
            }
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.7).abs() < 0.02, "{counts:?}");
        for &c in &counts[1..] {
            assert!((f(c) - 0.1).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn amplitude_damping_jump_rate_tracks_population() {
        let mut rng = StdRng::seed_from_u64(11);
        let ch = NoiseChannel::AmplitudeDamping { gamma: 0.4 };
        let mut jumps = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if let ChannelAction::Kraus(m) = ch.sample(|| 0.5, &mut rng) {
                if m[0][0] == C_ZERO {
                    jumps += 1;
                }
            }
        }
        // P(jump) = gamma * p1 = 0.2.
        assert!((jumps as f64 / n as f64 - 0.2).abs() < 0.015);
    }

    #[test]
    fn model_validation_and_clifford_subset() {
        assert!(NoiseModel::depolarizing(0.1).validate().is_ok());
        assert!(NoiseModel::depolarizing(1.5).validate().is_err());
        assert!(NoiseModel::depolarizing(0.1).is_clifford());
        assert!(NoiseModel::dephasing(0.1).is_clifford());
        assert!(!NoiseModel::amplitude_damping(0.1).is_clifford());
        // Zero-gamma amplitude damping is trivially Clifford (it never fires).
        assert!(NoiseModel::amplitude_damping(0.0).is_clifford());
    }

    #[test]
    fn noise_stream_is_independent_of_world_seed_stream() {
        assert_ne!(noise_stream_seed(5), 5);
        assert_ne!(noise_stream_seed(5), noise_stream_seed(6));
    }
}
