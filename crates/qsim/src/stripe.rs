//! Shard-local amplitude kernels.
//!
//! A sharded state vector stores the `2^n` amplitudes of an `n`-qubit
//! register as `2^k` *contiguous* stripes: stripe `s` holds the amplitudes
//! whose global basis-state index has top bits `s`, and the low
//! `l = n - k` bits address within the stripe. Every per-stripe operation —
//! within-stripe pair gates, the within-stripe half of a cross-stripe pair
//! gate, diagonal phase passes, masked probability sums, and collapse
//! passes — only needs the stripe slice plus its global base index
//! `s << l`.
//!
//! These kernels are that per-stripe work, factored out of
//! [`crate::sharded::ShardedState`] so that an execution engine which does
//! *not* share an address space with the stripes — a process-separated
//! shard worker receiving commands over a message channel — can run the
//! identical arithmetic on its own stripe. The in-process lock-striped
//! store calls the same functions under its stripe locks, so the two
//! deployments cannot drift apart on kernel semantics.
//!
//! All pair kernels perform the same per-amplitude arithmetic as the dense
//! kernels in [`crate::apply`] (same operations, same order), which is what
//! keeps dense, lock-striped, and remote-sharded engines bit-identical on
//! gate circuits.

use crate::complex::{Complex, C_ZERO};
use crate::gates::Mat2;
use crate::measure::PauliTerm;

/// Yields the amplitude-pair indices for iteration `i` of a pair loop over
/// a register, where `bit` is the target-qubit bit: the `i`-th index with
/// `bit` cleared, and its partner with `bit` set.
#[inline(always)]
pub fn pair_indices(i: usize, bit: usize) -> (usize, usize) {
    let low = i & (bit - 1);
    let high = (i & !(bit - 1)) << 1;
    let i0 = high | low;
    (i0, i0 | bit)
}

/// Applies `f` to every within-stripe amplitude pair `(i, i | tbit)` whose
/// low member satisfies the within-stripe control mask `c_lo`. The target
/// bit `tbit` must address within the stripe (`tbit < amps.len()`).
pub fn pair_within(
    amps: &mut [Complex],
    c_lo: usize,
    tbit: usize,
    f: impl Fn(&mut Complex, &mut Complex),
) {
    let half = amps.len() / 2;
    for i in 0..half {
        let (i0, i1) = pair_indices(i, tbit);
        if i0 & c_lo == c_lo {
            let (lo, hi) = amps.split_at_mut(i1);
            f(&mut lo[i0], &mut hi[0]);
        }
    }
}

/// Applies `f` to amplitude pairs spanning two stripes: `a` is the stripe
/// whose shard index has the target bit clear, `b` its partner with the
/// target bit set, and the pairs line up offset-for-offset. Offsets are
/// filtered by the within-stripe control mask `c_lo`.
pub fn pair_across(
    a: &mut [Complex],
    b: &mut [Complex],
    c_lo: usize,
    f: impl Fn(&mut Complex, &mut Complex),
) {
    debug_assert_eq!(a.len(), b.len(), "paired stripes must have equal length");
    for i in 0..a.len() {
        if i & c_lo == c_lo {
            f(&mut a[i], &mut b[i]);
        }
    }
}

/// One-pass SWAP kernel for two qubits that both address *within* the
/// stripe: exchanges the amplitudes of basis states with `(a=1, b=0)` and
/// `(a=0, b=1)`. A pure permutation — no complex arithmetic — so any
/// engine realizing SWAP this way stays bit-identical to one realizing it
/// as three CNOT passes.
pub fn swap_within(amps: &mut [Complex], abit: usize, bbit: usize) {
    debug_assert_ne!(abit, bbit, "SWAP needs distinct qubits");
    let xor = abit | bbit;
    for i in 0..amps.len() {
        if i & abit != 0 && i & bbit == 0 {
            amps.swap(i, i ^ xor);
        }
    }
}

/// One-round SWAP kernel for a mixed pair: qubit `a` addresses within the
/// stripe (`abit`), qubit `b` selects the shard. `low` is the stripe whose
/// shard index has the `b` bit clear, `high` its partner with the bit set;
/// the `(a=1, b=0)` amplitudes in `low` exchange with the `(a=0, b=1)`
/// amplitudes in `high` at offset `i ^ abit`. One stripe exchange replaces
/// the three cross-shard CNOT passes (6 transfers) of the naive
/// realization.
pub fn swap_across_mixed(low: &mut [Complex], high: &mut [Complex], abit: usize) {
    debug_assert_eq!(low.len(), high.len(), "paired stripes must match");
    for i in 0..low.len() {
        if i & abit != 0 {
            std::mem::swap(&mut low[i], &mut high[i ^ abit]);
        }
    }
}

/// Applies an arbitrary 2×2 unitary to every within-stripe amplitude pair
/// `(i, i | tbit)` whose low member satisfies the control mask `c_lo` —
/// the kernel behind fused 1q runs ([`crate::batch::BatchOp::Fused1q`]).
/// Performs the exact per-pair arithmetic of the dense
/// [`crate::apply::apply_1q`] kernel (two reads, then two multiply-add
/// rows in matrix order), so fused application stays bit-identical across
/// dense, lock-striped, and remote-sharded engines.
pub fn pair_unitary(amps: &mut [Complex], c_lo: usize, tbit: usize, m: &Mat2) {
    pair_within(amps, c_lo, tbit, |a0, a1| {
        let (x0, x1) = (*a0, *a1);
        *a0 = m[0][0] * x0 + m[0][1] * x1;
        *a1 = m[1][0] * x0 + m[1][1] * x1;
    });
}

/// One-pass diagonal sweep (the [`crate::batch::BatchOp::PhaseSweep`]
/// kernel). For every amplitude, the global basis index is `base | i`;
/// each `(mask, d0, d1)` factor multiplies **sequentially in slice
/// order** — `d1` when `g & mask != 0`, else `d0` — and the amplitude is
/// finally negated when an odd number of `flips` masks are fully set
/// (`g & f == f`).
///
/// The factor order is the only floating-point degree of freedom (the
/// negation is exact), so callers on different deployments must present
/// factors in the same order to stay bit-identical. A factor constant
/// over the stripe (e.g. a shard-selecting qubit's contribution on a
/// remote worker) is encoded as `(0, c, c)` — `g & 0` is never nonzero,
/// so `d0 = c` always applies and the multiply sequence matches the
/// global-index run exactly. A flip mask of `0` is always fully set and
/// toggles the whole stripe.
pub fn phase_sweep(
    amps: &mut [Complex],
    base: usize,
    factors: &[(usize, Complex, Complex)],
    flips: &[usize],
) {
    for (i, a) in amps.iter_mut().enumerate() {
        let g = base | i;
        let mut v = *a;
        for &(mask, d0, d1) in factors {
            v *= if g & mask != 0 { d1 } else { d0 };
        }
        if flips.iter().filter(|&&f| g & f == f).count() % 2 == 1 {
            v = -v;
        }
        *a = v;
    }
}

/// Diagonal phase pass (the CZ kernel): negates every amplitude whose
/// within-stripe offset satisfies `lo_mask`. The caller is responsible for
/// only running it on stripes whose shard index satisfies the high mask.
pub fn phase_flip(amps: &mut [Complex], lo_mask: usize) {
    for (i, amp) in amps.iter_mut().enumerate() {
        if i & lo_mask == lo_mask {
            *amp = -*amp;
        }
    }
}

/// Partial probability mass of the basis states in this stripe whose
/// *global* index (stripe base ORed with the offset) matches `want` under
/// `mask`. Summing the partials over all stripes gives the global mass.
pub fn masked_norm(amps: &[Complex], base: usize, mask: usize, want: usize) -> f64 {
    amps.iter()
        .enumerate()
        .filter(|(i, _)| (base | i) & mask == want)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Collapse pass: zeroes every amplitude whose global index does *not*
/// match `want` under `mask` and returns the kept probability mass of this
/// stripe. The caller renormalizes once the global mass is known.
pub fn collapse_keep(amps: &mut [Complex], base: usize, mask: usize, want: usize) -> f64 {
    let mut kept = 0.0f64;
    for (i, a) in amps.iter_mut().enumerate() {
        if (base | i) & mask == want {
            kept += a.norm_sqr();
        } else {
            *a = C_ZERO;
        }
    }
    kept
}

/// Partial probability mass of odd `mask`-parity basis states in this
/// stripe (joint Z-parity measurement, phase 1).
pub fn parity_prob_odd(amps: &[Complex], base: usize, mask: usize) -> f64 {
    amps.iter()
        .enumerate()
        .filter(|(i, _)| ((base | i) & mask).count_ones() % 2 == 1)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Parity-collapse pass: keeps the `want_odd` parity subspace, zeroes the
/// rest, returns the kept mass of this stripe (joint Z-parity, phase 2).
pub fn collapse_parity(amps: &mut [Complex], base: usize, mask: usize, want_odd: bool) -> f64 {
    let mut kept = 0.0f64;
    for (i, a) in amps.iter_mut().enumerate() {
        let odd = ((base | i) & mask).count_ones() % 2 == 1;
        if odd == want_odd {
            kept += a.norm_sqr();
        } else {
            *a = C_ZERO;
        }
    }
    kept
}

/// Rescales every amplitude by the real factor (collapse renormalization,
/// phase 3 — broadcast once the global kept mass is reduced).
pub fn scale(amps: &mut [Complex], factor: f64) {
    for a in amps.iter_mut() {
        *a = a.scale(factor);
    }
}

/// Expectation value `<psi| P |psi>` of a Pauli string over an `n`-qubit
/// register, reading amplitudes through `at` (global basis index →
/// amplitude). The accessor indirection lets the caller serve amplitudes
/// from locked stripes, a gathered flat vector, or anything else.
pub fn expectation_pauli(
    n_qubits: usize,
    at: impl Fn(usize) -> Complex,
    terms: &[PauliTerm],
) -> f64 {
    let (x_mask, z_mask, i_pow) = pauli_masks(n_qubits, terms);
    let mut acc = Complex::default();
    for g in 0..(1usize << n_qubits) {
        if let Some(t) = expectation_term(&at, g, x_mask, z_mask) {
            acc += t;
        }
    }
    let val = i_pow * acc;
    debug_assert!(
        val.im.abs() < 1e-9,
        "expectation of Hermitian operator must be real"
    );
    val.re
}

/// Derives the X/Z bit masks and the `i^{#Y}` phase factor of a Pauli
/// string — the quantities both the accessor-based evaluation above and
/// the distributed (per-stripe, gather-free) evaluation need.
pub fn pauli_masks(n_qubits: usize, terms: &[PauliTerm]) -> (usize, usize, Complex) {
    use crate::gates::Pauli;
    let mut x_mask = 0usize;
    let mut z_mask = 0usize;
    let mut y_count = 0u32;
    for t in terms {
        assert!(t.qubit < n_qubits, "qubit {} out of range", t.qubit);
        match t.op {
            Pauli::X => x_mask |= 1 << t.qubit,
            Pauli::Z => z_mask |= 1 << t.qubit,
            Pauli::Y => {
                x_mask |= 1 << t.qubit;
                z_mask |= 1 << t.qubit;
                y_count += 1;
            }
        }
    }
    let i_pow = match y_count % 4 {
        0 => Complex::real(1.0),
        1 => crate::complex::C_I,
        2 => Complex::real(-1.0),
        _ => -crate::complex::C_I,
    };
    (x_mask, z_mask, i_pow)
}

/// One basis state's contribution to the (pre-phase) Pauli expectation
/// accumulator: `conj(a[g ^ x_mask]) * a[g] * (-1)^{|g & z_mask|}`.
/// `None` when the amplitude at `g` is negligible — the caller must *skip*
/// (not add zero), so every evaluation path accumulates the identical
/// floating-point sequence.
#[inline]
pub fn expectation_term(
    at: &impl Fn(usize) -> Complex,
    g: usize,
    x_mask: usize,
    z_mask: usize,
) -> Option<Complex> {
    let a = at(g);
    if a.is_negligible(1e-300) {
        return None;
    }
    let sign = if (g & z_mask).count_ones() % 2 == 1 {
        -1.0
    } else {
        1.0
    };
    Some(at(g ^ x_mask).conj() * a.scale(sign))
}

/// Removes qubit `target` from a dense amplitude vector, keeping the
/// `outcome` branch; qubits above `target` shift down one position. Returns
/// the halved vector plus the probability mass that was discarded — the
/// caller asserts it is negligible (the qubit must already be collapsed)
/// and renormalizes.
pub fn remove_qubit_flat(flat: &[Complex], target: usize, outcome: bool) -> (Vec<Complex>, f64) {
    let bit = 1usize << target;
    let low_mask = bit - 1;
    let keep = if outcome { bit } else { 0 };
    let mut out = vec![C_ZERO; flat.len() / 2];
    let mut dropped = 0.0f64;
    for (i, &a) in flat.iter().enumerate() {
        if i & bit == keep {
            let j = (i & low_mask) | ((i >> 1) & !low_mask);
            out[j] = a;
        } else {
            dropped += a.norm_sqr();
        }
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_ONE;
    use crate::gates::Gate;

    fn uniform(n: usize) -> Vec<Complex> {
        let len = 1usize << n;
        vec![Complex::real(1.0 / (len as f64).sqrt()); len]
    }

    #[test]
    fn pair_within_matches_dense_1q_kernel() {
        // One 8-amplitude stripe; H on the low qubit via the stripe kernel
        // vs the dense kernel must be bit-identical.
        let mut dense = crate::state::State::zero(3);
        crate::apply::apply_1q(&mut dense, 1, &Gate::H.matrix());
        let mut amps = vec![C_ZERO; 8];
        amps[0] = C_ONE;
        let m = Gate::H.matrix();
        pair_within(&mut amps, 0, 1 << 1, |a0, a1| {
            let (x0, x1) = (*a0, *a1);
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        });
        for (i, &a) in amps.iter().enumerate() {
            assert_eq!(a, dense.amplitude(i), "amp[{i}]");
        }
    }

    #[test]
    fn pair_across_swaps_between_stripes() {
        // 2 stripes of 2 amps = 2 qubits; X on the high qubit swaps the
        // stripes offset-for-offset.
        let mut a = vec![Complex::real(1.0), Complex::real(2.0)];
        let mut b = vec![Complex::real(3.0), Complex::real(4.0)];
        pair_across(&mut a, &mut b, 0, std::mem::swap);
        assert_eq!(a, vec![Complex::real(3.0), Complex::real(4.0)]);
        assert_eq!(b, vec![Complex::real(1.0), Complex::real(2.0)]);
    }

    #[test]
    fn swap_within_matches_dense_swap_kernel() {
        // Arbitrary 3-qubit state; SWAP(0, 2) via the stripe kernel must be
        // bit-identical to the dense one-pass kernel.
        let raw: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f64 + 0.25, -(i as f64) * 0.5))
            .collect();
        let norm: f64 = raw.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<Complex> = raw.iter().map(|a| a.scale(1.0 / norm)).collect();
        let mut dense = crate::state::State::from_amplitudes(amps.clone());
        crate::apply::apply_swap(&mut dense, 0, 2);
        let mut striped = amps;
        swap_within(&mut striped, 1 << 0, 1 << 2);
        for (i, &a) in striped.iter().enumerate() {
            assert_eq!(a, dense.amplitude(i), "amp[{i}]");
        }
    }

    #[test]
    fn swap_across_mixed_exchanges_half_stripes() {
        // 2 stripes of 4 amps = 3 qubits; swap local qubit 0 with the
        // shard-selecting qubit 2. Global (a=1,b=0) indices are 1, 3 (in
        // low); partners (a=0,b=1) are 4, 6 (in high, offsets 0 and 2).
        let mut low: Vec<Complex> = (0..4).map(|i| Complex::real(i as f64)).collect();
        let mut high: Vec<Complex> = (0..4).map(|i| Complex::real(10.0 + i as f64)).collect();
        swap_across_mixed(&mut low, &mut high, 1 << 0);
        assert_eq!(low[1], Complex::real(10.0));
        assert_eq!(low[3], Complex::real(12.0));
        assert_eq!(high[0], Complex::real(1.0));
        assert_eq!(high[2], Complex::real(3.0));
        // Untouched members stay put.
        assert_eq!(low[0], Complex::real(0.0));
        assert_eq!(high[1], Complex::real(11.0));
    }

    #[test]
    fn pair_unitary_matches_dense_1q_kernel_bitwise() {
        let raw: Vec<Complex> = (0..8)
            .map(|i| Complex::new(0.1 + i as f64, 0.7 - (i as f64) * 0.2))
            .collect();
        let norm: f64 = raw.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<Complex> = raw.iter().map(|a| a.scale(1.0 / norm)).collect();
        let m = crate::gates::matmul2(&Gate::H.matrix(), &Gate::T.matrix());
        let mut dense = crate::state::State::from_amplitudes(amps.clone());
        crate::apply::apply_1q(&mut dense, 1, &m);
        let mut striped = amps;
        pair_unitary(&mut striped, 0, 1 << 1, &m);
        for (i, &a) in striped.iter().enumerate() {
            assert_eq!(a, dense.amplitude(i), "amp[{i}]");
        }
    }

    #[test]
    fn phase_sweep_applies_factors_in_order_and_flips_by_parity() {
        // S on qubit 0, T on qubit 1, CZ(0,1) over a 2-qubit stripe at
        // base 0: check each amplitude against the hand-applied sequence.
        let amps: Vec<Complex> = vec![
            Complex::new(0.5, 0.1),
            Complex::new(-0.3, 0.4),
            Complex::new(0.2, -0.6),
            Complex::new(0.1, 0.3),
        ];
        let s = Gate::S.matrix();
        let t = Gate::T.matrix();
        let factors = [(0b01, s[0][0], s[1][1]), (0b10, t[0][0], t[1][1])];
        let flips = [0b11usize];
        let mut swept = amps.clone();
        phase_sweep(&mut swept, 0, &factors, &flips);
        for (g, &a) in amps.iter().enumerate() {
            let mut want = a;
            for &(mask, d0, d1) in &factors {
                want *= if g & mask != 0 { d1 } else { d0 };
            }
            if g & 0b11 == 0b11 {
                want = -want;
            }
            assert_eq!(swept[g], want, "amp[{g}]");
        }
    }

    #[test]
    fn phase_sweep_constant_factor_and_base_offset() {
        // A stripe at base 4 (shard bit 2 set): qubit 2's d1 is constant
        // over the stripe and can equivalently be encoded as (0, d1, d1);
        // both encodings must produce bit-identical amplitudes.
        let t = Gate::T.matrix();
        let amps: Vec<Complex> = (0..4)
            .map(|i| Complex::new(0.3 - i as f64 * 0.1, 0.2 * i as f64))
            .collect();
        let mut global = amps.clone();
        phase_sweep(&mut global, 4, &[(0b100, t[0][0], t[1][1])], &[]);
        let mut local = amps.clone();
        phase_sweep(&mut local, 0, &[(0, t[1][1], t[1][1])], &[]);
        assert_eq!(global, local);
        // A flip mask of 0 negates the entire stripe.
        let mut flipped = amps.clone();
        phase_sweep(&mut flipped, 0, &[], &[0]);
        for (i, &a) in amps.iter().enumerate() {
            assert_eq!(flipped[i], -a);
        }
        // An even flip count cancels exactly.
        let mut twice = amps.clone();
        phase_sweep(&mut twice, 0, &[], &[0, 0]);
        assert_eq!(twice, amps);
    }

    #[test]
    fn masked_norm_and_collapse_agree() {
        let mut amps = uniform(3);
        // Global indices 4..8 have bit 2 set; this stripe's base is 0.
        let p = masked_norm(&amps, 0, 0b100, 0b100);
        assert!((p - 0.5).abs() < 1e-12);
        let kept = collapse_keep(&mut amps, 0, 0b100, 0b100);
        assert!((kept - 0.5).abs() < 1e-12);
        assert_eq!(amps[0], C_ZERO);
        assert!(amps[4].norm_sqr() > 0.0);
    }

    #[test]
    fn base_offsets_masked_queries() {
        // The same stripe content at base 4 (= top bit set) now matches on
        // the high bit for every offset.
        let amps = uniform(2);
        assert!((masked_norm(&amps, 4, 0b100, 0b100) - 1.0).abs() < 1e-12);
        assert!(masked_norm(&amps, 4, 0b100, 0) < 1e-12);
    }

    #[test]
    fn parity_kernels_split_mass() {
        let mut amps = uniform(2);
        let p_odd = parity_prob_odd(&amps, 0, 0b11);
        assert!((p_odd - 0.5).abs() < 1e-12);
        let kept = collapse_parity(&mut amps, 0, 0b11, false);
        assert!((kept - 0.5).abs() < 1e-12);
        assert_eq!(amps[0b01], C_ZERO);
        assert_eq!(amps[0b10], C_ZERO);
        scale(&mut amps, 1.0 / kept.sqrt());
        let total: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remove_qubit_flat_drops_collapsed_branch() {
        // |10>: removing qubit 0 (value 0) keeps qubit 1's |1>.
        let mut flat = vec![C_ZERO; 4];
        flat[0b10] = C_ONE;
        let (out, dropped) = remove_qubit_flat(&flat, 0, false);
        assert!(dropped < 1e-12);
        assert_eq!(out, vec![C_ZERO, C_ONE]);
    }

    #[test]
    fn single_qubit_register_is_one_two_amplitude_stripe() {
        // The smallest register the kernels ever see: n=1, one stripe of
        // two amplitudes, tbit == 1. Every kernel must degrade cleanly.
        let mut dense = crate::state::State::zero(1);
        crate::apply::apply_1q(&mut dense, 0, &Gate::H.matrix());
        let mut amps = vec![C_ONE, C_ZERO];
        let m = Gate::H.matrix();
        pair_within(&mut amps, 0, 1, |a0, a1| {
            let (x0, x1) = (*a0, *a1);
            *a0 = m[0][0] * x0 + m[0][1] * x1;
            *a1 = m[1][0] * x0 + m[1][1] * x1;
        });
        assert_eq!(amps[0], dense.amplitude(0));
        assert_eq!(amps[1], dense.amplitude(1));
        // Diagonal pass on the only |1> state.
        phase_flip(&mut amps, 0b1);
        assert_eq!(amps[1], -dense.amplitude(1));
        // Probability and collapse over the whole (single-stripe) mass.
        assert!((masked_norm(&amps, 0, 0b1, 0b1) - 0.5).abs() < 1e-12);
        let kept = collapse_keep(&mut amps, 0, 0b1, 0);
        assert!((kept - 0.5).abs() < 1e-12);
        assert_eq!(amps[1], C_ZERO);
    }

    #[test]
    fn one_shard_configuration_covers_the_full_register() {
        // k=0 stripes: the single stripe holds all 2^n amplitudes at base
        // 0 and the cross-stripe kernels never fire. The within-stripe
        // CNOT (control mask + swap pair) must match the dense kernel
        // bit-for-bit on an arbitrary state.
        let raw: Vec<Complex> = (0..8)
            .map(|i| Complex::new(0.5 + i as f64, (i as f64) * 0.3 - 1.0))
            .collect();
        let norm: f64 = raw.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<Complex> = raw.iter().map(|a| a.scale(1.0 / norm)).collect();
        let mut dense = crate::state::State::from_amplitudes(amps.clone());
        crate::apply::apply_cnot(&mut dense, 2, 0);
        let mut striped = amps;
        pair_within(&mut striped, 1 << 2, 1 << 0, |a0, a1| {
            std::mem::swap(a0, a1)
        });
        for (i, &a) in striped.iter().enumerate() {
            assert_eq!(a, dense.amplitude(i), "amp[{i}]");
        }
        // With one stripe, its masked partial IS the global mass.
        let p1: f64 = masked_norm(&striped, 0, 0b1, 0b1);
        let p0: f64 = masked_norm(&striped, 0, 0b1, 0);
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn removing_the_last_remaining_qubit_leaves_the_scalar_state() {
        // Freeing the final qubit halves a 2-amplitude vector down to the
        // 0-qubit register: one amplitude, carrying the full phase.
        let one = [C_ZERO, C_ONE];
        let (out, dropped) = remove_qubit_flat(&one, 0, true);
        assert!(dropped < 1e-12);
        assert_eq!(out, vec![C_ONE]);
        // The kept branch's complex phase survives the removal untouched.
        let phase = Complex::new(0.6, 0.8);
        let zero = [phase, C_ZERO];
        let (out, dropped) = remove_qubit_flat(&zero, 0, false);
        assert!(dropped < 1e-12);
        assert_eq!(out, vec![phase]);
        // Removing against the empty branch reports the discarded mass
        // instead of silently keeping it.
        let (out, dropped) = remove_qubit_flat(&one, 0, false);
        assert_eq!(out, vec![C_ZERO]);
        assert!((dropped - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_via_accessor_matches_known_values() {
        use crate::gates::Pauli;
        // Bell pair: <ZZ> = +1, <XX> = +1.
        let s = 1.0 / 2.0f64.sqrt();
        let flat = [Complex::real(s), C_ZERO, C_ZERO, Complex::real(s)];
        let term = |q: usize, op: Pauli| PauliTerm { qubit: q, op };
        let zz = expectation_pauli(2, |g| flat[g], &[term(0, Pauli::Z), term(1, Pauli::Z)]);
        let xx = expectation_pauli(2, |g| flat[g], &[term(0, Pauli::X), term(1, Pauli::X)]);
        assert!((zz - 1.0).abs() < 1e-12);
        assert!((xx - 1.0).abs() < 1e-12);
    }
}
