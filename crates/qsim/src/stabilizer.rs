//! CHP-style stabilizer-tableau simulator (Aaronson & Gottesman,
//! arXiv:quant-ph/0406196).
//!
//! Every QMPI communication primitive — EPR establishment, entangled copy,
//! teleportation, cat-state fanout, parity reduction — is pure Clifford, so
//! a tableau simulator executes the paper's protocols in polynomial time and
//! memory where the dense state vector of [`crate::Simulator`] caps out near
//! 25 qubits. This engine backs the `Stabilizer` QMPI backend, which scales
//! the protocol suite to thousands of ranks.
//!
//! The tableau keeps `n` destabilizer and `n` stabilizer generators as
//! bit-packed X/Z rows plus a sign. Supported gates: Pauli X/Y/Z, H, S, S†,
//! CNOT, CZ, SWAP. Non-Clifford gates (T, rotations, arbitrary unitaries)
//! return [`SimError::Unsupported`]. Measurement follows the standard CHP
//! procedure; joint Z-parity measurement and Pauli-string expectations use
//! its textbook generalization to arbitrary Pauli operators.
//!
//! Qubit handles are stable [`QubitId`]s with dynamic allocate/free, matching
//! the [`crate::Simulator`] surface so the two engines are interchangeable
//! behind the QMPI backend trait.

use crate::gates::{Gate, Pauli};
use crate::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use crate::sim::{QubitId, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One tableau row: a Pauli string in the binary symplectic representation
/// (`x` and `z` bit-vectors) plus a sign bit. A set `x` bit alone is X, a
/// set `z` bit alone is Z, both set is Y (the factor of `i` is folded into
/// the convention, as in CHP).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Row {
    x: Vec<u64>,
    z: Vec<u64>,
    /// Sign: `true` represents a leading minus.
    neg: bool,
}

impl Row {
    fn zero(words: usize) -> Row {
        Row {
            x: vec![0; words],
            z: vec![0; words],
            neg: false,
        }
    }

    #[inline]
    fn get_x(&self, col: usize) -> bool {
        self.x[col / 64] >> (col % 64) & 1 == 1
    }

    #[inline]
    fn get_z(&self, col: usize) -> bool {
        self.z[col / 64] >> (col % 64) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, col: usize, v: bool) {
        let (w, b) = (col / 64, col % 64);
        self.x[w] = (self.x[w] & !(1 << b)) | (u64::from(v) << b);
    }

    #[inline]
    fn set_z(&mut self, col: usize, v: bool) {
        let (w, b) = (col / 64, col % 64);
        self.z[w] = (self.z[w] & !(1 << b)) | (u64::from(v) << b);
    }

    fn grow(&mut self, words: usize) {
        self.x.resize(words, 0);
        self.z.resize(words, 0);
    }

    /// Whether this row anticommutes with the Pauli string `other`
    /// (symplectic inner product is odd).
    fn anticommutes(&self, other: &Row) -> bool {
        let mut acc = 0u32;
        for w in 0..self.x.len().min(other.x.len()) {
            acc ^= (self.x[w] & other.z[w]).count_ones() & 1;
            acc ^= (self.z[w] & other.x[w]).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Swaps the bits of two columns (used when compacting after a free).
    fn swap_cols(&mut self, a: usize, b: usize) {
        let (xa, za) = (self.get_x(a), self.get_z(a));
        let (xb, zb) = (self.get_x(b), self.get_z(b));
        self.set_x(a, xb);
        self.set_z(a, zb);
        self.set_x(b, xa);
        self.set_z(b, za);
    }
}

/// CHP `rowsum`: `dst := src * dst` as Pauli operators, tracking the sign.
///
/// The phase bookkeeping follows Aaronson–Gottesman's `g` function: for each
/// column, `g(x1, z1, x2, z2)` is the exponent of `i` contributed by
/// multiplying the column-`j` Paulis of `src` (1) and `dst` (2). The total
/// `2·neg_dst + 2·neg_src + Σ g` is always even; the new sign is its half,
/// mod 2.
fn rowsum(dst: &mut Row, src: &Row) {
    let mut g_total: i64 = 0;
    for w in 0..src.x.len() {
        let (x1, z1) = (src.x[w], src.z[w]);
        let (x2, z2) = (dst.x[w], dst.z[w]);
        // src column is Y: contributes z2 - x2.
        let y1 = x1 & z1;
        g_total += i64::from((y1 & z2).count_ones()) - i64::from((y1 & x2).count_ones());
        // src column is X: contributes z2 * (2*x2 - 1).
        let x_only = x1 & !z1;
        g_total += i64::from((x_only & z2 & x2).count_ones());
        g_total -= i64::from((x_only & z2 & !x2).count_ones());
        // src column is Z: contributes x2 * (1 - 2*z2).
        let z_only = !x1 & z1;
        g_total += i64::from((z_only & x2 & !z2).count_ones());
        g_total -= i64::from((z_only & x2 & z2).count_ones());
        dst.x[w] ^= x1;
        dst.z[w] ^= z1;
    }
    let total = 2 * i64::from(dst.neg) + 2 * i64::from(src.neg) + g_total;
    debug_assert!(
        total.rem_euclid(4) % 2 == 0,
        "odd i-power in stabilizer product"
    );
    dst.neg = total.rem_euclid(4) == 2;
}

/// Stabilizer-tableau simulator with dynamic qubit allocation.
pub struct StabilizerSim {
    n: usize,
    words: usize,
    destab: Vec<Row>,
    stab: Vec<Row>,
    positions: HashMap<QubitId, usize>,
    by_position: Vec<QubitId>,
    next_id: u64,
    rng: StdRng,
    noise: NoiseState,
    gate_count: u64,
    measurement_count: u64,
}

impl StabilizerSim {
    /// Creates an empty, noiseless simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        StabilizerSim::with_noise(seed, NoiseModel::ideal())
    }

    /// Creates an empty simulator with a deterministic RNG seed and a noise
    /// model. Only the Clifford-compatible Pauli channels (depolarizing,
    /// dephasing) can run on the tableau; an operation whose channel is
    /// amplitude damping surfaces [`SimError::Unsupported`].
    pub fn with_noise(seed: u64, model: NoiseModel) -> Self {
        StabilizerSim {
            n: 0,
            words: 0,
            destab: Vec::new(),
            stab: Vec::new(),
            positions: HashMap::new(),
            by_position: Vec::new(),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            noise: NoiseState::new(seed, model),
            gate_count: 0,
            measurement_count: 0,
        }
    }

    /// The configured noise model.
    pub fn noise_model(&self) -> NoiseModel {
        self.noise.model
    }

    /// Number of currently allocated qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Total gates applied so far.
    pub fn gate_count(&self) -> u64 {
        self.gate_count
    }

    /// Total measurements performed so far.
    pub fn measurement_count(&self) -> u64 {
        self.measurement_count
    }

    fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.positions
            .get(&q)
            .copied()
            .ok_or(SimError::UnknownQubit(q))
    }

    /// Allocates one fresh qubit in |0>.
    pub fn alloc(&mut self) -> QubitId {
        let id = QubitId(self.next_id);
        self.next_id += 1;
        let col = self.n;
        self.n += 1;
        let words = self.n.div_ceil(64);
        if words > self.words {
            self.words = words;
            for row in self.destab.iter_mut().chain(self.stab.iter_mut()) {
                row.grow(words);
            }
        }
        let mut d = Row::zero(self.words);
        d.set_x(col, true);
        let mut s = Row::zero(self.words);
        s.set_z(col, true);
        self.destab.push(d);
        self.stab.push(s);
        self.positions.insert(id, col);
        self.by_position.push(id);
        id
    }

    /// Allocates `n` fresh qubits in |0>.
    pub fn alloc_n(&mut self, n: usize) -> Vec<QubitId> {
        (0..n).map(|_| self.alloc()).collect()
    }

    fn for_each_row(&mut self, mut f: impl FnMut(&mut Row)) {
        for row in self.destab.iter_mut().chain(self.stab.iter_mut()) {
            f(row);
        }
    }

    fn apply_h(&mut self, j: usize) {
        self.for_each_row(|row| {
            let (x, z) = (row.get_x(j), row.get_z(j));
            row.neg ^= x & z;
            row.set_x(j, z);
            row.set_z(j, x);
        });
    }

    fn apply_s(&mut self, j: usize) {
        self.for_each_row(|row| {
            let (x, z) = (row.get_x(j), row.get_z(j));
            row.neg ^= x & z;
            row.set_z(j, z ^ x);
        });
    }

    fn apply_cnot_cols(&mut self, c: usize, t: usize) {
        self.for_each_row(|row| {
            let (xc, zc) = (row.get_x(c), row.get_z(c));
            let (xt, zt) = (row.get_x(t), row.get_z(t));
            row.neg ^= xc & zt & !(xt ^ zc);
            row.set_x(t, xt ^ xc);
            row.set_z(c, zc ^ zt);
        });
    }

    /// Applies one Pauli to column `j` without touching the gate counter —
    /// the tableau realization of a sampled noise insertion.
    fn inject_pauli(&mut self, j: usize, p: Pauli) {
        match p {
            Pauli::X => self.for_each_row(|row| row.neg ^= row.get_z(j)),
            Pauli::Y => self.for_each_row(|row| row.neg ^= row.get_x(j) ^ row.get_z(j)),
            Pauli::Z => self.for_each_row(|row| row.neg ^= row.get_x(j)),
        }
    }

    /// Errors when the `class` channel cannot run on the tableau. Gate and
    /// measurement methods call this *before* mutating anything, so an
    /// unsupported-noise error leaves the simulator state untouched.
    fn check_noise(&self, class: OpClass) -> Result<(), SimError> {
        let ch = self.noise.model.channel(class);
        if ch.is_clifford() {
            Ok(())
        } else {
            Err(SimError::Unsupported(format!(
                "noise channel {ch} is not Clifford; the stabilizer backend supports \
                 depolarizing/dephasing noise only"
            )))
        }
    }

    /// Samples and applies the `class` channel to each listed column. Only
    /// Pauli channels are Clifford; amplitude damping is rejected (callers
    /// pre-check via [`Self::check_noise`] so the gate itself never lands).
    fn inject(&mut self, class: OpClass, cols: &[usize]) -> Result<(), SimError> {
        let ch = self.noise.model.channel(class);
        if ch.is_ideal() {
            return Ok(());
        }
        self.check_noise(class)?;
        for &j in cols {
            // Pauli channels never query the |1> probability.
            let action = ch.sample(|| 0.0, &mut self.noise.rng);
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => self.inject_pauli(j, p),
                ChannelAction::Kraus(_) => unreachable!("non-Clifford channels rejected above"),
            }
        }
        Ok(())
    }

    /// Applies a single-qubit gate; non-Clifford gates are rejected.
    pub fn apply(&mut self, gate: Gate, q: QubitId) -> Result<(), SimError> {
        self.check_noise(OpClass::Gate1q)?;
        let j = self.pos(q)?;
        match gate {
            Gate::X => self.for_each_row(|row| row.neg ^= row.get_z(j)),
            Gate::Y => self.for_each_row(|row| row.neg ^= row.get_x(j) ^ row.get_z(j)),
            Gate::Z => self.for_each_row(|row| row.neg ^= row.get_x(j)),
            Gate::H => self.apply_h(j),
            Gate::S => self.apply_s(j),
            Gate::Sdg => {
                // S† = Z · S (diagonal gates commute).
                self.for_each_row(|row| row.neg ^= row.get_x(j));
                self.apply_s(j);
            }
            other => {
                return Err(SimError::Unsupported(format!(
                    "gate {other:?} is not Clifford; the stabilizer backend supports X/Y/Z/H/S/Sdg/CNOT/CZ/SWAP"
                )));
            }
        }
        self.gate_count += 1;
        self.inject(OpClass::Gate1q, &[j])
    }

    /// CNOT with `control`, `target`.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), SimError> {
        self.check_noise(OpClass::Gate2q)?;
        if control == target {
            return Err(SimError::DuplicateQubit(control));
        }
        let c = self.pos(control)?;
        let t = self.pos(target)?;
        self.apply_cnot_cols(c, t);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[c, t])
    }

    /// Controlled-Z (symmetric).
    pub fn cz(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.check_noise(OpClass::Gate2q)?;
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.apply_h(pb);
        self.apply_cnot_cols(pa, pb);
        self.apply_h(pb);
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb])
    }

    /// SWAP two qubits.
    pub fn swap(&mut self, a: QubitId, b: QubitId) -> Result<(), SimError> {
        self.check_noise(OpClass::Gate2q)?;
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.for_each_row(|row| row.swap_cols(pa, pb));
        self.gate_count += 1;
        self.inject(OpClass::Gate2q, &[pa, pb])
    }

    /// Controlled single-qubit gate. Only single-controlled X and Z are
    /// Clifford; everything else is rejected.
    pub fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<(), SimError> {
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
        }
        match (controls, gate) {
            ([c], Gate::X) => self.cnot(*c, target),
            ([c], Gate::Z) => self.cz(*c, target),
            _ => Err(SimError::Unsupported(format!(
                "controlled {gate:?} with {} controls is not Clifford",
                controls.len()
            ))),
        }
    }

    /// The Pauli string `Z` on every listed column, as a [`Row`].
    fn z_string(&self, cols: &[usize]) -> Row {
        let mut p = Row::zero(self.words);
        for &j in cols {
            p.set_z(j, true);
        }
        p
    }

    /// Measures the Pauli operator `p`, collapsing when the outcome is
    /// random. Returns `true` for the −1 eigenvalue.
    fn measure_pauli(&mut self, p: &Row) -> bool {
        self.measurement_count += 1;
        if let Some(pivot) = (0..self.n).find(|&i| self.stab[i].anticommutes(p)) {
            // Random outcome: restructure the tableau around the collapse.
            let row_p = self.stab[pivot].clone();
            for i in 0..self.n {
                if i != pivot && self.stab[i].anticommutes(p) {
                    rowsum(&mut self.stab[i], &row_p);
                }
                if i != pivot && self.destab[i].anticommutes(p) {
                    rowsum(&mut self.destab[i], &row_p);
                }
            }
            let outcome = self.rng.gen_bool(0.5);
            self.destab[pivot] = row_p;
            let mut new_stab = p.clone();
            new_stab.neg = outcome;
            self.stab[pivot] = new_stab;
            outcome
        } else {
            self.deterministic_outcome(p)
        }
    }

    /// Outcome of measuring `p` when it commutes with every stabilizer
    /// (so ±`p` is in the stabilizer group and the outcome is determined).
    fn deterministic_outcome(&self, p: &Row) -> bool {
        let mut scratch = Row::zero(self.words);
        for i in 0..self.n {
            if self.destab[i].anticommutes(p) {
                rowsum(&mut scratch, &self.stab[i]);
            }
        }
        debug_assert_eq!(
            scratch.x, p.x,
            "reconstructed operator must match the measured one"
        );
        debug_assert_eq!(
            scratch.z, p.z,
            "reconstructed operator must match the measured one"
        );
        scratch.neg != p.neg
    }

    /// Projective Z measurement with collapse. The measurement channel of a
    /// configured noise model is applied before projection (readout error).
    pub fn measure(&mut self, q: QubitId) -> Result<bool, SimError> {
        let j = self.pos(q)?;
        self.inject(OpClass::Measurement, &[j])?;
        let p = self.z_string(&[j]);
        Ok(self.measure_pauli(&p))
    }

    /// Joint Z-parity measurement over `qubits` (collapses onto the parity
    /// subspace without collapsing individual qubits).
    pub fn measure_z_parity(&mut self, qubits: &[QubitId]) -> Result<bool, SimError> {
        let mut cols = Vec::with_capacity(qubits.len());
        for &q in qubits {
            let j = self.pos(q)?;
            if cols.contains(&j) {
                return Err(SimError::DuplicateQubit(q));
            }
            cols.push(j);
        }
        self.inject(OpClass::Measurement, &cols)?;
        let p = self.z_string(&cols);
        Ok(self.measure_pauli(&p))
    }

    /// Probability of measuring 1: exactly 0, 1, or 1/2 for stabilizer
    /// states.
    pub fn prob_one(&self, q: QubitId) -> Result<f64, SimError> {
        let j = self.pos(q)?;
        let p = self.z_string(&[j]);
        if (0..self.n).any(|i| self.stab[i].anticommutes(&p)) {
            Ok(0.5)
        } else if self.deterministic_outcome(&p) {
            Ok(1.0)
        } else {
            Ok(0.0)
        }
    }

    /// Expectation value of a Pauli string: −1, 0, or +1 on a stabilizer
    /// state.
    pub fn expectation(&self, terms: &[(QubitId, Pauli)]) -> Result<f64, SimError> {
        let mut p = Row::zero(self.words);
        for &(q, op) in terms {
            let j = self.pos(q)?;
            if p.get_x(j) || p.get_z(j) {
                return Err(SimError::DuplicateQubit(q));
            }
            match op {
                Pauli::X => p.set_x(j, true),
                Pauli::Y => {
                    p.set_x(j, true);
                    p.set_z(j, true);
                }
                Pauli::Z => p.set_z(j, true),
            }
        }
        if (0..self.n).any(|i| self.stab[i].anticommutes(&p)) {
            return Ok(0.0);
        }
        Ok(if self.deterministic_outcome(&p) {
            -1.0
        } else {
            1.0
        })
    }

    /// Removes a qubit that is in a product Z-basis state. The tableau is
    /// restructured so one stabilizer generator is exactly `±Z_j`, the rest
    /// of the column is cleared, and the row pair plus column are deleted.
    fn remove_classical_qubit(&mut self, q: QubitId, j: usize) {
        // Put the qubit in an X eigenstate so the Z measurement below is
        // guaranteed to take the random branch, which leaves the tableau
        // with stab[pivot] = Z_j exactly.
        self.apply_h(j);
        let p = self.z_string(&[j]);
        let pivot = (0..self.n)
            .find(|&i| self.stab[i].anticommutes(&p))
            .expect("an X-eigenstate qubit must have an anticommuting stabilizer");
        let row_p = self.stab[pivot].clone();
        for i in 0..self.n {
            if i != pivot && self.stab[i].anticommutes(&p) {
                rowsum(&mut self.stab[i], &row_p);
            }
            if i != pivot && self.destab[i].anticommutes(&p) {
                rowsum(&mut self.destab[i], &row_p);
            }
        }
        self.destab[pivot] = row_p;
        self.stab[pivot] = p; // +Z_j: we choose the |0> collapse branch.
                              // Clear the rest of column j: every remaining row has x[j] = 0, so
                              // multiplying by +Z_j just toggles its z bit, without sign changes.
        for i in 0..self.n {
            if i != pivot {
                if self.stab[i].get_z(j) {
                    self.stab[i].set_z(j, false);
                }
                if self.destab[i].get_z(j) {
                    self.destab[i].set_z(j, false);
                }
            }
        }
        // Compact: move column j to the end, then drop it with the pivot
        // row pair.
        let last = self.n - 1;
        if j != last {
            for row in self.destab.iter_mut().chain(self.stab.iter_mut()) {
                row.swap_cols(j, last);
            }
            let moved = self.by_position[last];
            self.by_position.swap(j, last);
            self.positions.insert(moved, j);
        }
        self.by_position.pop();
        self.positions.remove(&q);
        self.destab.remove(pivot);
        self.stab.remove(pivot);
        self.n -= 1;
    }

    /// Frees a qubit that is already in a classical state, returning its
    /// value; errors with [`SimError::NotClassical`] otherwise.
    pub fn free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let j = self.pos(q)?;
        let p = self.z_string(&[j]);
        if (0..self.n).any(|i| self.stab[i].anticommutes(&p)) {
            return Err(SimError::NotClassical(q));
        }
        let outcome = self.deterministic_outcome(&p);
        self.remove_classical_qubit(q, j);
        Ok(outcome)
    }

    /// Measures a qubit and frees it in one step.
    pub fn measure_and_free(&mut self, q: QubitId) -> Result<bool, SimError> {
        let outcome = {
            let j = self.pos(q)?;
            self.inject(OpClass::Measurement, &[j])?;
            let p = self.z_string(&[j]);
            self.measure_pauli(&p)
        };
        let j = self.pos(q)?;
        self.remove_classical_qubit(q, j);
        Ok(outcome)
    }

    /// Entangles two fresh |0> qubits into (|00> + |11>)/sqrt(2), modeling
    /// the quantum-coherent interconnect. Counted as the H + CNOT it stands
    /// for; a configured EPR noise channel is applied to *each half* after
    /// entangling (see [`OpClass::Epr`]).
    pub fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> Result<(), SimError> {
        self.check_noise(OpClass::Epr)?;
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        self.apply_h(pa);
        self.apply_cnot_cols(pa, pb);
        self.gate_count += 2;
        self.inject(OpClass::Epr, &[pa, pb])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_noise_rejected_without_mutating() {
        use crate::noise::{NoiseChannel, NoiseModel};
        let model = NoiseModel::ideal().with_gate_1q(NoiseChannel::AmplitudeDamping { gamma: 0.1 });
        let mut sim = StabilizerSim::with_noise(1, model);
        let q = sim.alloc();
        assert!(matches!(
            sim.apply(Gate::X, q),
            Err(SimError::Unsupported(_))
        ));
        // The failed gate must not have landed: the qubit still reads |0>
        // and nothing was counted.
        assert_eq!(sim.prob_one(q), Ok(0.0));
        assert_eq!(sim.gate_count(), 0);
        // Classes with supported channels still work.
        let q2 = sim.alloc();
        sim.cnot(q, q2).unwrap();
        assert_eq!(sim.free(q2), Ok(false));
    }

    #[test]
    fn fresh_qubits_read_zero() {
        let mut sim = StabilizerSim::new(1);
        let q = sim.alloc();
        assert_eq!(sim.prob_one(q), Ok(0.0));
        assert_eq!(sim.measure(q), Ok(false));
        assert_eq!(sim.free(q), Ok(false));
        assert_eq!(sim.n_qubits(), 0);
    }

    #[test]
    fn x_flips_and_frees_as_one() {
        let mut sim = StabilizerSim::new(1);
        let q = sim.alloc();
        sim.apply(Gate::X, q).unwrap();
        assert_eq!(sim.prob_one(q), Ok(1.0));
        assert_eq!(sim.free(q), Ok(true));
    }

    #[test]
    fn plus_state_is_random_and_collapses() {
        let mut sim = StabilizerSim::new(3);
        let q = sim.alloc();
        sim.apply(Gate::H, q).unwrap();
        assert_eq!(sim.prob_one(q), Ok(0.5));
        assert_eq!(sim.free(q), Err(SimError::NotClassical(q)));
        let m = sim.measure(q).unwrap();
        assert_eq!(sim.prob_one(q), Ok(if m { 1.0 } else { 0.0 }));
        assert_eq!(sim.measure(q), Ok(m), "repeated measurement is stable");
    }

    #[test]
    fn epr_pair_correlations() {
        for seed in 0..20 {
            let mut sim = StabilizerSim::new(seed);
            let a = sim.alloc();
            let b = sim.alloc();
            sim.apply(Gate::H, a).unwrap();
            sim.cnot(a, b).unwrap();
            let ma = sim.measure(a).unwrap();
            let mb = sim.measure(b).unwrap();
            assert_eq!(ma, mb, "seed {seed}");
        }
    }

    #[test]
    fn bell_expectations() {
        let mut sim = StabilizerSim::new(5);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::H, a).unwrap();
        sim.cnot(a, b).unwrap();
        assert_eq!(sim.expectation(&[(a, Pauli::Z), (b, Pauli::Z)]), Ok(1.0));
        assert_eq!(sim.expectation(&[(a, Pauli::X), (b, Pauli::X)]), Ok(1.0));
        assert_eq!(sim.expectation(&[(a, Pauli::Y), (b, Pauli::Y)]), Ok(-1.0));
        assert_eq!(sim.expectation(&[(a, Pauli::Z)]), Ok(0.0));
    }

    #[test]
    fn minus_state_x_expectation() {
        let mut sim = StabilizerSim::new(5);
        let q = sim.alloc();
        sim.apply(Gate::X, q).unwrap();
        sim.apply(Gate::H, q).unwrap();
        assert_eq!(sim.expectation(&[(q, Pauli::X)]), Ok(-1.0));
        // S|−> has <Y> = −1.
        sim.apply(Gate::S, q).unwrap();
        assert_eq!(sim.expectation(&[(q, Pauli::Y)]), Ok(-1.0));
        sim.apply(Gate::Sdg, q).unwrap();
        assert_eq!(sim.expectation(&[(q, Pauli::X)]), Ok(-1.0));
    }

    #[test]
    fn ghz_parity_and_agreement() {
        for n in [3usize, 8, 64] {
            let mut sim = StabilizerSim::new(n as u64);
            let qs = sim.alloc_n(n);
            sim.apply(Gate::H, qs[0]).unwrap();
            for w in qs.windows(2) {
                sim.cnot(w[0], w[1]).unwrap();
            }
            // Even Z-parity without collapsing the GHZ superposition.
            assert_eq!(sim.measure_z_parity(&qs), Ok(false), "n={n}");
            let first = sim.measure(qs[0]).unwrap();
            for &q in &qs[1..] {
                assert_eq!(sim.measure(q), Ok(first), "n={n}");
            }
        }
    }

    #[test]
    fn z_parity_projects_and_persists() {
        let mut sim = StabilizerSim::new(11);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::H, a).unwrap();
        sim.apply(Gate::H, b).unwrap();
        let parity = sim.measure_z_parity(&[a, b]).unwrap();
        // Once projected, the joint parity is stable and matches the
        // subsequent individual outcomes.
        assert_eq!(sim.measure_z_parity(&[a, b]), Ok(parity));
        let ma = sim.measure(a).unwrap();
        let mb = sim.measure(b).unwrap();
        assert_eq!(ma ^ mb, parity);
    }

    #[test]
    fn teleportation_moves_basis_state() {
        for input in [false, true] {
            let mut sim = StabilizerSim::new(7);
            let src = sim.alloc();
            if input {
                sim.apply(Gate::X, src).unwrap();
            }
            let e1 = sim.alloc();
            let e2 = sim.alloc();
            sim.apply(Gate::H, e1).unwrap();
            sim.cnot(e1, e2).unwrap();
            sim.cnot(src, e1).unwrap();
            let mf = sim.measure_and_free(e1).unwrap();
            if mf {
                sim.apply(Gate::X, e2).unwrap();
            }
            sim.apply(Gate::H, src).unwrap();
            let mu = sim.measure_and_free(src).unwrap();
            if mu {
                sim.apply(Gate::Z, e2).unwrap();
            }
            assert_eq!(sim.prob_one(e2), Ok(if input { 1.0 } else { 0.0 }));
        }
    }

    #[test]
    fn free_compacts_positions() {
        let mut sim = StabilizerSim::new(1);
        let a = sim.alloc();
        let b = sim.alloc();
        let c = sim.alloc();
        sim.apply(Gate::X, c).unwrap();
        sim.free(b).unwrap();
        assert_eq!(sim.n_qubits(), 2);
        assert_eq!(sim.prob_one(c), Ok(1.0));
        assert_eq!(sim.prob_one(a), Ok(0.0));
        assert_eq!(sim.free(c), Ok(true));
        assert_eq!(sim.free(a), Ok(false));
    }

    #[test]
    fn free_entangled_half_preserves_partner_distribution() {
        // Measuring-and-freeing one EPR half must leave the partner in the
        // matching classical state.
        let mut sim = StabilizerSim::new(9);
        let a = sim.alloc();
        let b = sim.alloc();
        sim.apply(Gate::H, a).unwrap();
        sim.cnot(a, b).unwrap();
        let ma = sim.measure_and_free(a).unwrap();
        assert_eq!(sim.prob_one(b), Ok(if ma { 1.0 } else { 0.0 }));
    }

    #[test]
    fn non_clifford_gates_rejected() {
        let mut sim = StabilizerSim::new(1);
        let q = sim.alloc();
        assert!(matches!(
            sim.apply(Gate::T, q),
            Err(SimError::Unsupported(_))
        ));
        assert!(matches!(
            sim.apply(Gate::Rz(0.3), q),
            Err(SimError::Unsupported(_))
        ));
        let c = sim.alloc();
        assert!(matches!(
            sim.apply_controlled(&[c], Gate::S, q),
            Err(SimError::Unsupported(_))
        ));
        // The tableau is untouched by rejected gates.
        assert_eq!(sim.prob_one(q), Ok(0.0));
    }

    #[test]
    fn unknown_qubit_rejected() {
        let mut sim = StabilizerSim::new(1);
        let q = sim.alloc();
        sim.free(q).unwrap();
        assert_eq!(sim.apply(Gate::X, q), Err(SimError::UnknownQubit(q)));
        assert_eq!(sim.measure(q), Err(SimError::UnknownQubit(q)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = StabilizerSim::new(seed);
            let qs = sim.alloc_n(6);
            for &q in &qs {
                sim.apply(Gate::H, q).unwrap();
            }
            qs.iter()
                .map(|&q| sim.measure(q).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123));
        assert_ne!(
            run(123),
            run(124),
            "different seeds should diverge on 6 coin flips"
        );
    }

    #[test]
    fn wide_tableaus_cross_word_boundaries() {
        // 150 qubits spans three 64-bit words; chain them into one GHZ
        // state and verify parity plus agreement across the boundary.
        let mut sim = StabilizerSim::new(42);
        let qs = sim.alloc_n(150);
        sim.apply(Gate::H, qs[0]).unwrap();
        for w in qs.windows(2) {
            sim.cnot(w[0], w[1]).unwrap();
        }
        assert_eq!(sim.measure_z_parity(&qs[..2]), Ok(false));
        assert_eq!(
            sim.expectation(&[(qs[0], Pauli::Z), (qs[149], Pauli::Z)]),
            Ok(1.0)
        );
        let m0 = sim.measure(qs[0]).unwrap();
        assert_eq!(sim.measure(qs[149]), Ok(m0));
    }

    /// Cross-validation against the dense state-vector simulator on random
    /// Clifford circuits: all single-qubit probabilities and pairwise ZZ
    /// expectations must agree exactly.
    #[test]
    fn matches_state_vector_on_random_clifford_circuits() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        const N: usize = 5;
        for seed in 0..25u64 {
            let mut driver = StdRng::seed_from_u64(seed ^ 0xC11F_F0D5);
            let mut tab = StabilizerSim::new(seed);
            let mut vec = crate::Simulator::new(seed);
            let tq = tab.alloc_n(N);
            let vq = vec.alloc_n(N);
            for _ in 0..40 {
                match driver.gen_range(0..6u64) {
                    0..=3 => {
                        let g = [Gate::H, Gate::S, Gate::X, Gate::Z][driver.gen_range(0..4usize)];
                        let t = driver.gen_range(0..N);
                        tab.apply(g, tq[t]).unwrap();
                        vec.apply(g, vq[t]).unwrap();
                    }
                    4 => {
                        let c = driver.gen_range(0..N);
                        let t = driver.gen_range(0..N);
                        if c != t {
                            tab.cnot(tq[c], tq[t]).unwrap();
                            vec.cnot(vq[c], vq[t]).unwrap();
                        }
                    }
                    _ => {
                        let a = driver.gen_range(0..N);
                        let b = driver.gen_range(0..N);
                        if a != b {
                            tab.cz(tq[a], tq[b]).unwrap();
                            vec.cz(vq[a], vq[b]).unwrap();
                        }
                    }
                }
            }
            for i in 0..N {
                let pt = tab.prob_one(tq[i]).unwrap();
                let pv = vec.prob_one(vq[i]).unwrap();
                assert!(
                    (pt - pv).abs() < 1e-9,
                    "seed {seed} qubit {i}: {pt} vs {pv}"
                );
            }
            for i in 0..N {
                for j in (i + 1)..N {
                    let et = tab
                        .expectation(&[(tq[i], Pauli::Z), (tq[j], Pauli::Z)])
                        .unwrap();
                    let ev = vec
                        .expectation(&[(vq[i], Pauli::Z), (vq[j], Pauli::Z)])
                        .unwrap();
                    assert!(
                        (et - ev).abs() < 1e-9,
                        "seed {seed} ZZ({i},{j}): {et} vs {ev}"
                    );
                }
            }
        }
    }
}
