//! # qsim — full state-vector quantum simulator
//!
//! The simulation substrate backing the QMPI prototype, mirroring Section 6
//! of *Distributed Quantum Computing with QMPI* (SC 2021): a full state
//! simulator with dynamic qubit allocation that all QMPI ranks forward their
//! quantum operations to.
//!
//! Layering:
//! - [`complex`] — self-contained complex arithmetic.
//! - [`gates`] — the paper's gate set (Pauli, H, S/T, rotations, CNOT/CZ/...).
//! - [`state`] — dense amplitude vector with add/remove-qubit support.
//! - [`sharded`] — [`sharded::ShardedState`]: the same amplitude vector
//!   split into `2^k` contiguous lock-striped shards, so gate application
//!   from concurrent callers needs no global lock.
//! - [`apply`] — serial + multi-threaded gate application kernels.
//! - [`batch`] — [`batch::GateBatch`]: the batched gate-stream IR that
//!   engines apply as one unit (one lock acquisition / one message round
//!   per batch instead of per gate).
//! - [`optimizer`] — the plan-time pass over a recorded batch: fuses runs
//!   of adjacent 1q gates into single [`batch::BatchOp::Fused1q`] kernels
//!   and merges commuting diagonal gates/CZs into
//!   [`batch::BatchOp::PhaseSweep`]s, so engines sweep memory once per
//!   fused op instead of once per recorded gate.
//! - [`measure`] — projective measurement, joint parity, Pauli expectations.
//! - [`sim`] — [`sim::Simulator`]: stable qubit handles over the above.
//! - [`stabilizer`] — [`stabilizer::StabilizerSim`]: CHP tableau engine with
//!   the same handle surface, for Clifford-only workloads at scales far
//!   beyond any state vector (the QMPI protocols are all Clifford).
//! - [`noise`] — pluggable noise channels ([`noise::NoiseModel`]):
//!   depolarizing/dephasing/amplitude-damping with independent rates per
//!   operation class, realized as seeded stochastic Pauli/Kraus insertions
//!   in both simulators.

pub mod apply;
pub mod batch;
pub mod complex;
pub mod gates;
pub mod measure;
pub mod noise;
pub mod optimizer;
pub mod registry;
pub mod sharded;
pub mod sim;
pub mod sparse;
pub mod stabilizer;
pub mod state;
pub mod stripe;

pub use batch::{BatchOp, GateBatch};
pub use complex::Complex;
pub use gates::{Gate, Pauli};
pub use noise::{NoiseChannel, NoiseModel};
pub use optimizer::{concat_segments, optimize};
pub use sharded::ShardedState;
pub use sim::{QubitId, SimError, Simulator};
pub use sparse::SparseSim;
pub use stabilizer::StabilizerSim;
pub use state::State;

#[cfg(test)]
mod proptests {
    use crate::gates::Gate;
    use crate::sim::Simulator;
    use proptest::prelude::*;

    fn arb_gate() -> impl Strategy<Value = Gate> {
        prop_oneof![
            Just(Gate::X),
            Just(Gate::Y),
            Just(Gate::Z),
            Just(Gate::H),
            Just(Gate::S),
            Just(Gate::Sdg),
            Just(Gate::T),
            Just(Gate::Tdg),
            (-3.2f64..3.2).prop_map(Gate::Rx),
            (-3.2f64..3.2).prop_map(Gate::Ry),
            (-3.2f64..3.2).prop_map(Gate::Rz),
            (-3.2f64..3.2).prop_map(Gate::Phase),
        ]
    }

    proptest! {
        #[test]
        fn random_circuits_preserve_norm(
            gates in proptest::collection::vec((arb_gate(), 0usize..5), 1..40),
            cnots in proptest::collection::vec((0usize..5, 0usize..5), 0..20),
        ) {
            let mut sim = Simulator::new(99);
            let qs = sim.alloc_n(5);
            for (g, t) in gates {
                sim.apply(g, qs[t]).unwrap();
            }
            for (c, t) in cnots {
                if c != t {
                    sim.cnot(qs[c], qs[t]).unwrap();
                }
            }
            let norm = sim.raw_state().norm_sqr();
            prop_assert!((norm - 1.0).abs() < 1e-8);
        }

        #[test]
        fn gate_then_dagger_is_identity(
            gates in proptest::collection::vec((arb_gate(), 0usize..4), 1..25),
        ) {
            let mut sim = Simulator::new(7);
            let qs = sim.alloc_n(4);
            // Scramble into an interesting state first.
            for &q in &qs {
                sim.apply(Gate::H, q).unwrap();
            }
            sim.cnot(qs[0], qs[1]).unwrap();
            sim.cnot(qs[2], qs[3]).unwrap();
            let before = sim.state_vector(&qs).unwrap();
            for &(g, t) in &gates {
                sim.apply(g, qs[t]).unwrap();
            }
            for &(g, t) in gates.iter().rev() {
                sim.apply(g.dagger(), qs[t]).unwrap();
            }
            let after = sim.state_vector(&qs).unwrap();
            prop_assert!((before.fidelity(&after) - 1.0).abs() < 1e-8);
        }

        #[test]
        fn teleportation_preserves_arbitrary_states(theta in 0.0f64..3.1, phi in -3.1f64..3.1) {
            // Fig. 3(c) on a random Bloch-sphere state.
            let mut sim = Simulator::new(13);
            let src = sim.alloc();
            sim.apply(Gate::Ry(theta), src).unwrap();
            sim.apply(Gate::Rz(phi), src).unwrap();
            let reference = sim.state_vector(&[src]).unwrap();
            let e1 = sim.alloc();
            let e2 = sim.alloc();
            sim.apply(Gate::H, e1).unwrap();
            sim.cnot(e1, e2).unwrap();
            sim.cnot(src, e1).unwrap();
            let mf = sim.measure_and_free(e1).unwrap();
            if mf { sim.apply(Gate::X, e2).unwrap(); }
            sim.apply(Gate::H, src).unwrap();
            let mu = sim.measure_and_free(src).unwrap();
            if mu { sim.apply(Gate::Z, e2).unwrap(); }
            let out = sim.state_vector(&[e2]).unwrap();
            prop_assert!((out.fidelity(&reference) - 1.0).abs() < 1e-8);
        }

        #[test]
        fn measurement_outcome_matches_collapsed_state(seed in 0u64..1000) {
            let mut sim = Simulator::new(seed);
            let q = sim.alloc();
            sim.apply(Gate::Ry(1.1), q).unwrap();
            let m = sim.measure(q).unwrap();
            let p1 = sim.prob_one(q).unwrap();
            let consistent = if m { (p1 - 1.0).abs() < 1e-9 } else { p1 < 1e-9 };
            prop_assert!(consistent);
        }
    }
}
