//! Stable qubit-handle bookkeeping shared by the amplitude engines.
//!
//! Both the dense [`crate::Simulator`] and the lock-striped
//! `ShardedStateVector` engine expose stable [`QubitId`] handles over a
//! state whose internal qubit *positions* shift as qubits are freed. This
//! registry is the single source of truth for that mapping — handle
//! allocation, position lookup, the shift-down on removal, and snapshot
//! permutations — so the engines cannot drift apart on handle semantics.

use crate::sim::{QubitId, SimError};
use std::collections::HashMap;

/// id <-> position mapping with stable handles and dense positions.
#[derive(Debug, Default)]
pub struct QubitRegistry {
    /// id -> position (bit index) in the backing state.
    positions: HashMap<QubitId, usize>,
    /// position -> id, for shifting on removal.
    by_position: Vec<QubitId>,
    next_id: u64,
}

impl QubitRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        QubitRegistry::default()
    }

    /// Number of live qubits.
    pub fn len(&self) -> usize {
        self.by_position.len()
    }

    /// Whether no qubits are live.
    pub fn is_empty(&self) -> bool {
        self.by_position.is_empty()
    }

    /// Registers a fresh handle at position `pos`, which must be the next
    /// dense position (i.e. the current [`QubitRegistry::len`]).
    pub fn push(&mut self, pos: usize) -> QubitId {
        debug_assert_eq!(pos, self.by_position.len());
        let id = QubitId(self.next_id);
        self.next_id += 1;
        self.positions.insert(id, pos);
        self.by_position.push(id);
        id
    }

    /// Current position of `q`.
    pub fn pos(&self, q: QubitId) -> Result<usize, SimError> {
        self.positions
            .get(&q)
            .copied()
            .ok_or(SimError::UnknownQubit(q))
    }

    /// Unregisters `q`, which lives at `pos`; every handle above shifts
    /// down one position (matching the state's `remove_qubit`).
    pub fn remove(&mut self, q: QubitId, pos: usize) {
        self.positions.remove(&q);
        self.by_position.remove(pos);
        for (shifted_pos, id) in self.by_position.iter().enumerate().skip(pos) {
            self.positions.insert(*id, shifted_pos);
        }
    }

    /// Position permutation for a dense snapshot with qubits ordered as in
    /// `order` (`order[0]` becomes the least-significant bit). `order` must
    /// name every live qubit exactly once.
    pub fn permutation(&self, order: &[QubitId]) -> Result<Vec<usize>, SimError> {
        if order.len() != self.by_position.len() {
            // Find a representative offending qubit for the error.
            for &q in order {
                self.pos(q)?;
            }
            return Err(SimError::UnknownQubit(QubitId(u64::MAX)));
        }
        let mut perm = Vec::with_capacity(order.len());
        for &q in order {
            perm.push(self.pos(q)?);
        }
        Ok(perm)
    }
}

/// Classifies a probability-of-|1> into the classical value required by the
/// `QMPI_Free_qmem` contract: near-0 reads `false`, near-1 reads `true`,
/// anything in between is [`SimError::NotClassical`].
pub fn classical_outcome(q: QubitId, p1: f64) -> Result<bool, SimError> {
    if p1 < 1e-9 {
        Ok(false)
    } else if p1 > 1.0 - 1e-9 {
        Ok(true)
    } else {
        Err(SimError::NotClassical(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_shift_down_on_removal() {
        let mut reg = QubitRegistry::new();
        let a = reg.push(0);
        let b = reg.push(1);
        let c = reg.push(2);
        assert_eq!(reg.pos(b), Ok(1));
        reg.remove(b, 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.pos(a), Ok(0));
        assert_eq!(reg.pos(c), Ok(1));
        assert_eq!(reg.pos(b), Err(SimError::UnknownQubit(b)));
    }

    #[test]
    fn permutation_requires_every_live_qubit() {
        let mut reg = QubitRegistry::new();
        let a = reg.push(0);
        let b = reg.push(1);
        assert_eq!(reg.permutation(&[b, a]), Ok(vec![1, 0]));
        assert!(reg.permutation(&[a]).is_err());
    }

    #[test]
    fn classical_outcome_thresholds() {
        let q = QubitId(3);
        assert_eq!(classical_outcome(q, 0.0), Ok(false));
        assert_eq!(classical_outcome(q, 1.0), Ok(true));
        assert_eq!(classical_outcome(q, 0.5), Err(SimError::NotClassical(q)));
    }
}
