//! The batched gate-stream IR.
//!
//! QMPI's performance model bills per communication *round*, not per gate:
//! a distributed backend that pays one lock acquisition — or, for the
//! process-separated engine, one full controller→worker→controller message
//! round — per gate leaves an order of magnitude on the table. A
//! [`GateBatch`] is the intermediate representation that fixes this: a
//! recorded sequence of gate operations ([`BatchOp`]) that flows from the
//! per-rank gate calls down through every engine as *one* unit.
//!
//! The IR deliberately covers only the unitary gate stream. Everything
//! that observes or restructures the state — measurement, probability
//! queries, expectation values, allocation, EPR establishment — is a
//! *flush point*: the pending batch must be applied first, so the sequence
//! of amplitude operations (and the order of noise-RNG draws) is identical
//! to the eager, gate-at-a-time path. That identity is what keeps batched
//! and unbatched runs bit-identical per seed on every engine.

use crate::gates::Gate;
use crate::sim::QubitId;

/// One recorded gate operation in a [`GateBatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum BatchOp {
    /// Single-qubit gate.
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubit.
        q: QubitId,
    },
    /// Multi-controlled single-qubit gate.
    Controlled {
        /// Control qubits (all must read 1).
        controls: Vec<QubitId>,
        /// The gate applied to the target.
        gate: Gate,
        /// Target qubit.
        target: QubitId,
    },
    /// CNOT.
    Cnot {
        /// Control qubit.
        c: QubitId,
        /// Target qubit.
        t: QubitId,
    },
    /// CZ (symmetric).
    Cz {
        /// First qubit.
        a: QubitId,
        /// Second qubit.
        b: QubitId,
    },
    /// SWAP.
    Swap {
        /// First qubit.
        a: QubitId,
        /// Second qubit.
        b: QubitId,
    },
}

impl BatchOp {
    /// Visits every qubit the operation touches, in a fixed order
    /// (controls before target), without allocating. Locality wrappers use
    /// this to run their ownership checks once per batch instead of once
    /// per gate call — on the flush hot path, so no per-op `Vec`s.
    pub fn for_each_qubit(&self, mut f: impl FnMut(QubitId)) {
        match self {
            BatchOp::Gate { q, .. } => f(*q),
            BatchOp::Controlled {
                controls, target, ..
            } => {
                for &c in controls {
                    f(c);
                }
                f(*target);
            }
            BatchOp::Cnot { c, t } => {
                f(*c);
                f(*t);
            }
            BatchOp::Cz { a, b } | BatchOp::Swap { a, b } => {
                f(*a);
                f(*b);
            }
        }
    }

    /// Every qubit the operation touches, in [`BatchOp::for_each_qubit`]
    /// order, collected.
    pub fn qubits(&self) -> Vec<QubitId> {
        let mut qs = Vec::new();
        self.for_each_qubit(|q| qs.push(q));
        qs
    }

    /// Whether the op stays inside the Clifford group — and, equivalently,
    /// whether the stabilizer tableau can realize it. CNOT/CZ/SWAP always
    /// qualify; a `Controlled` op only as single-control X or Z (its CNOT/
    /// CZ spellings — a multi-controlled gate like Toffoli is genuinely
    /// outside the group). Used to keep non-Clifford rejection *eager* on
    /// the stabilizer backend even when batching.
    pub fn is_clifford(&self) -> bool {
        match self {
            BatchOp::Gate { gate, .. } => gate.is_clifford(),
            BatchOp::Controlled { controls, gate, .. } => {
                controls.len() == 1 && matches!(gate, Gate::X | Gate::Z)
            }
            BatchOp::Cnot { .. } | BatchOp::Cz { .. } | BatchOp::Swap { .. } => true,
        }
    }

    /// The structural error the op would raise on any engine, checked
    /// *without* engine state: duplicate qubits in a CNOT/CZ or a control
    /// equal to its target. The batching layer runs this at record time so
    /// these errors surface at the gate call site, exactly like the eager
    /// path — not at an arbitrary later flush point. (`Swap { a, a }` is a
    /// legal no-op everywhere, so it passes.)
    pub fn validate(&self) -> Result<(), crate::SimError> {
        match self {
            BatchOp::Cnot { c: a, t: b } | BatchOp::Cz { a, b } if a == b => {
                Err(crate::SimError::DuplicateQubit(*a))
            }
            BatchOp::Controlled {
                controls, target, ..
            } if controls.contains(target) => Err(crate::SimError::DuplicateQubit(*target)),
            _ => Ok(()),
        }
    }
}

/// A recorded stream of gate operations, applied as one unit.
///
/// Built by the per-rank gate calls (which append instead of dispatching),
/// consumed by `SimEngine::apply_batch` implementations. The batch carries
/// program order: engines must apply `ops()` front to back.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateBatch {
    ops: Vec<BatchOp>,
}

impl GateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        GateBatch::default()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: BatchOp) {
        self.ops.push(op);
    }

    /// The recorded operations, in program order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Moves the recorded ops out, leaving the batch empty (the flush
    /// primitive: the caller applies the returned batch while new gates can
    /// keep accumulating).
    pub fn take(&mut self) -> GateBatch {
        GateBatch {
            ops: std::mem::take(&mut self.ops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_cover_all_operands_in_order() {
        let q = |i: u64| QubitId(i);
        assert_eq!(
            BatchOp::Gate {
                gate: Gate::H,
                q: q(3)
            }
            .qubits(),
            vec![q(3)]
        );
        assert_eq!(
            BatchOp::Controlled {
                controls: vec![q(1), q(2)],
                gate: Gate::X,
                target: q(0)
            }
            .qubits(),
            vec![q(1), q(2), q(0)]
        );
        assert_eq!(
            BatchOp::Cnot { c: q(5), t: q(6) }.qubits(),
            vec![q(5), q(6)]
        );
        assert_eq!(
            BatchOp::Swap { a: q(7), b: q(8) }.qubits(),
            vec![q(7), q(8)]
        );
    }

    #[test]
    fn clifford_classification_follows_the_gate() {
        let q = QubitId(0);
        assert!(BatchOp::Gate { gate: Gate::S, q }.is_clifford());
        assert!(!BatchOp::Gate { gate: Gate::T, q }.is_clifford());
        assert!(BatchOp::Cnot {
            c: q,
            t: QubitId(1)
        }
        .is_clifford());
        assert!(!BatchOp::Controlled {
            controls: vec![q],
            gate: Gate::Rz(0.1),
            target: QubitId(1)
        }
        .is_clifford());
    }

    #[test]
    fn take_drains_preserving_order() {
        let mut b = GateBatch::new();
        b.push(BatchOp::Gate {
            gate: Gate::H,
            q: QubitId(0),
        });
        b.push(BatchOp::Cz {
            a: QubitId(0),
            b: QubitId(1),
        });
        assert_eq!(b.len(), 2);
        let taken = b.take();
        assert!(b.is_empty());
        assert_eq!(taken.len(), 2);
        assert!(matches!(taken.ops()[0], BatchOp::Gate { .. }));
        assert!(matches!(taken.ops()[1], BatchOp::Cz { .. }));
    }
}
