//! The batched gate-stream IR.
//!
//! QMPI's performance model bills per communication *round*, not per gate:
//! a distributed backend that pays one lock acquisition — or, for the
//! process-separated engine, one full controller→worker→controller message
//! round — per gate leaves an order of magnitude on the table. A
//! [`GateBatch`] is the intermediate representation that fixes this: a
//! recorded sequence of gate operations ([`BatchOp`]) that flows from the
//! per-rank gate calls down through every engine as *one* unit.
//!
//! The IR deliberately covers only the unitary gate stream. Everything
//! that observes or restructures the state — measurement, probability
//! queries, expectation values, allocation, EPR establishment — is a
//! *flush point*: the pending batch must be applied first, so the sequence
//! of amplitude operations (and the order of noise-RNG draws) is identical
//! to the eager, gate-at-a-time path. That identity is what keeps batched
//! and unbatched runs bit-identical per seed on every engine.

use crate::complex::Complex;
use crate::gates::{Gate, Mat2};
use crate::sim::QubitId;

/// One recorded gate operation in a [`GateBatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum BatchOp {
    /// Single-qubit gate.
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubit.
        q: QubitId,
    },
    /// Multi-controlled single-qubit gate.
    Controlled {
        /// Control qubits (all must read 1).
        controls: Vec<QubitId>,
        /// The gate applied to the target.
        gate: Gate,
        /// Target qubit.
        target: QubitId,
    },
    /// CNOT.
    Cnot {
        /// Control qubit.
        c: QubitId,
        /// Target qubit.
        t: QubitId,
    },
    /// CZ (symmetric).
    Cz {
        /// First qubit.
        a: QubitId,
        /// Second qubit.
        b: QubitId,
    },
    /// SWAP.
    Swap {
        /// First qubit.
        a: QubitId,
        /// Second qubit.
        b: QubitId,
    },
    /// A run of adjacent single-qubit gates on one qubit, pre-multiplied
    /// into a single 2×2 unitary by the plan-time optimizer
    /// ([`crate::optimizer`]). Engines apply it as one kernel sweep instead
    /// of one per constituent gate; it counts as *one* gate everywhere.
    Fused1q {
        /// Target qubit.
        q: QubitId,
        /// The product of the run's gate matrices (last gate leftmost).
        m: Mat2,
    },
    /// A merged sweep of commuting diagonal operations (Z/S/T/Rz/Phase
    /// factors and CZ sign flips), produced by the plan-time optimizer.
    ///
    /// Semantics are fixed exactly so every engine lands on the same bits:
    /// per amplitude, each `(q, d0, d1)` factor multiplies in `diags`
    /// order (`d1` when qubit `q` reads 1, else `d0`), then the amplitude
    /// is negated when an odd number of `czs` pairs have both qubits set.
    /// Sign flips are exact, so only the factor *order* carries FP
    /// meaning — and it is preserved end to end, including across the
    /// process-separated engine's wire format.
    PhaseSweep {
        /// Diagonal factors in merge order: `(qubit, factor-at-0, factor-at-1)`.
        diags: Vec<(QubitId, Complex, Complex)>,
        /// CZ sign flips (order-insensitive: negation is exact).
        czs: Vec<(QubitId, QubitId)>,
    },
}

impl BatchOp {
    /// Visits every qubit the operation touches, in a fixed order
    /// (controls before target), without allocating. Locality wrappers use
    /// this to run their ownership checks once per batch instead of once
    /// per gate call — on the flush hot path, so no per-op `Vec`s.
    pub fn for_each_qubit(&self, mut f: impl FnMut(QubitId)) {
        match self {
            BatchOp::Gate { q, .. } => f(*q),
            BatchOp::Controlled {
                controls, target, ..
            } => {
                for &c in controls {
                    f(c);
                }
                f(*target);
            }
            BatchOp::Cnot { c, t } => {
                f(*c);
                f(*t);
            }
            BatchOp::Cz { a, b } | BatchOp::Swap { a, b } => {
                f(*a);
                f(*b);
            }
            BatchOp::Fused1q { q, .. } => f(*q),
            BatchOp::PhaseSweep { diags, czs } => {
                for &(q, _, _) in diags {
                    f(q);
                }
                for &(a, b) in czs {
                    f(a);
                    f(b);
                }
            }
        }
    }

    /// Every qubit the operation touches, in [`BatchOp::for_each_qubit`]
    /// order, collected.
    pub fn qubits(&self) -> Vec<QubitId> {
        let mut qs = Vec::new();
        self.for_each_qubit(|q| qs.push(q));
        qs
    }

    /// Whether the op stays inside the Clifford group — and, equivalently,
    /// whether the stabilizer tableau can realize it. CNOT/CZ/SWAP always
    /// qualify; a `Controlled` op only as single-control X or Z (its CNOT/
    /// CZ spellings — a multi-controlled gate like Toffoli is genuinely
    /// outside the group). Used to keep non-Clifford rejection *eager* on
    /// the stabilizer backend even when batching.
    pub fn is_clifford(&self) -> bool {
        match self {
            BatchOp::Gate { gate, .. } => gate.is_clifford(),
            BatchOp::Controlled { controls, gate, .. } => {
                controls.len() == 1 && matches!(gate, Gate::X | Gate::Z)
            }
            BatchOp::Cnot { .. } | BatchOp::Cz { .. } | BatchOp::Swap { .. } => true,
            // Optimizer products carry raw matrices/factors; the syntactic
            // check cannot certify them, and the optimizer never runs for
            // the stabilizer backend anyway.
            BatchOp::Fused1q { .. } | BatchOp::PhaseSweep { .. } => false,
        }
    }

    /// The structural error the op would raise on any engine, checked
    /// *without* engine state: duplicate qubits in a CNOT/CZ or a control
    /// equal to its target. The batching layer runs this at record time so
    /// these errors surface at the gate call site, exactly like the eager
    /// path — not at an arbitrary later flush point. (`Swap { a, a }` is a
    /// legal no-op everywhere, so it passes.)
    pub fn validate(&self) -> Result<(), crate::SimError> {
        match self {
            BatchOp::Cnot { c: a, t: b } | BatchOp::Cz { a, b } if a == b => {
                Err(crate::SimError::DuplicateQubit(*a))
            }
            BatchOp::Controlled {
                controls, target, ..
            } if controls.contains(target) => Err(crate::SimError::DuplicateQubit(*target)),
            BatchOp::PhaseSweep { czs, .. } => match czs.iter().find(|(a, b)| a == b) {
                Some(&(a, _)) => Err(crate::SimError::DuplicateQubit(a)),
                None => Ok(()),
            },
            _ => Ok(()),
        }
    }

    /// Approximate in-memory footprint of the op (stack slot plus owned
    /// heap), used by the flush byte budget
    /// (`qmpi::BatchPolicy::max_bytes`). An estimate, not an accounting —
    /// the budget bounds the memory a long measurement-free gate storm can
    /// pin, it does not meter allocations.
    pub fn approx_bytes(&self) -> usize {
        let heap = match self {
            BatchOp::Controlled { controls, .. } => std::mem::size_of_val(controls.as_slice()),
            BatchOp::PhaseSweep { diags, czs } => {
                std::mem::size_of_val(diags.as_slice()) + std::mem::size_of_val(czs.as_slice())
            }
            _ => 0,
        };
        std::mem::size_of::<BatchOp>() + heap
    }
}

/// A recorded stream of gate operations, applied as one unit.
///
/// Built by the per-rank gate calls (which append instead of dispatching),
/// consumed by `SimEngine::apply_batch` implementations. The batch carries
/// program order: engines must apply `ops()` front to back.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateBatch {
    ops: Vec<BatchOp>,
    /// Running [`BatchOp::approx_bytes`] total, maintained on push so the
    /// flush byte budget is O(1) to consult.
    approx_bytes: usize,
}

impl GateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        GateBatch::default()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: BatchOp) {
        self.approx_bytes += op.approx_bytes();
        self.ops.push(op);
    }

    /// The recorded operations, in program order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consumes the batch into its operations, in program order (the
    /// optimizer's entry point).
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Approximate memory pinned by the recorded ops (sum of
    /// [`BatchOp::approx_bytes`]), consulted by the flush byte budget.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Moves the recorded ops out, leaving the batch empty (the flush
    /// primitive: the caller applies the returned batch while new gates can
    /// keep accumulating).
    pub fn take(&mut self) -> GateBatch {
        GateBatch {
            ops: std::mem::take(&mut self.ops),
            approx_bytes: std::mem::take(&mut self.approx_bytes),
        }
    }

    /// Appends every op of `other` after this batch's ops, preserving both
    /// streams' internal order. This is pure concatenation — no
    /// re-optimization happens across the seam, so two independently
    /// optimized streams keep their own fusion boundaries (the coalescing
    /// layer's contract; see [`crate::optimizer::concat_segments`]).
    pub fn append(&mut self, other: GateBatch) {
        self.approx_bytes += other.approx_bytes;
        self.ops.extend(other.ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_cover_all_operands_in_order() {
        let q = |i: u64| QubitId(i);
        assert_eq!(
            BatchOp::Gate {
                gate: Gate::H,
                q: q(3)
            }
            .qubits(),
            vec![q(3)]
        );
        assert_eq!(
            BatchOp::Controlled {
                controls: vec![q(1), q(2)],
                gate: Gate::X,
                target: q(0)
            }
            .qubits(),
            vec![q(1), q(2), q(0)]
        );
        assert_eq!(
            BatchOp::Cnot { c: q(5), t: q(6) }.qubits(),
            vec![q(5), q(6)]
        );
        assert_eq!(
            BatchOp::Swap { a: q(7), b: q(8) }.qubits(),
            vec![q(7), q(8)]
        );
    }

    #[test]
    fn clifford_classification_follows_the_gate() {
        let q = QubitId(0);
        assert!(BatchOp::Gate { gate: Gate::S, q }.is_clifford());
        assert!(!BatchOp::Gate { gate: Gate::T, q }.is_clifford());
        assert!(BatchOp::Cnot {
            c: q,
            t: QubitId(1)
        }
        .is_clifford());
        assert!(!BatchOp::Controlled {
            controls: vec![q],
            gate: Gate::Rz(0.1),
            target: QubitId(1)
        }
        .is_clifford());
    }

    #[test]
    fn take_drains_preserving_order() {
        let mut b = GateBatch::new();
        b.push(BatchOp::Gate {
            gate: Gate::H,
            q: QubitId(0),
        });
        b.push(BatchOp::Cz {
            a: QubitId(0),
            b: QubitId(1),
        });
        assert_eq!(b.len(), 2);
        let taken = b.take();
        assert!(b.is_empty());
        assert_eq!(taken.len(), 2);
        assert!(matches!(taken.ops()[0], BatchOp::Gate { .. }));
        assert!(matches!(taken.ops()[1], BatchOp::Cz { .. }));
    }

    #[test]
    fn optimizer_ops_report_their_qubits_in_order() {
        let q = |i: u64| QubitId(i);
        assert_eq!(
            BatchOp::Fused1q {
                q: q(4),
                m: Gate::H.matrix()
            }
            .qubits(),
            vec![q(4)]
        );
        let one = Complex::real(1.0);
        let sweep = BatchOp::PhaseSweep {
            diags: vec![(q(2), one, one), (q(5), one, one)],
            czs: vec![(q(1), q(3))],
        };
        assert_eq!(sweep.qubits(), vec![q(2), q(5), q(1), q(3)]);
        assert!(!sweep.is_clifford());
        assert!(sweep.validate().is_ok());
        let bad = BatchOp::PhaseSweep {
            diags: vec![],
            czs: vec![(q(1), q(1))],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn append_concatenates_preserving_order_and_bytes() {
        let mut a = GateBatch::new();
        a.push(BatchOp::Gate {
            gate: Gate::H,
            q: QubitId(0),
        });
        let mut b = GateBatch::new();
        b.push(BatchOp::Cnot {
            c: QubitId(1),
            t: QubitId(2),
        });
        b.push(BatchOp::Gate {
            gate: Gate::T,
            q: QubitId(1),
        });
        let (a_bytes, b_bytes) = (a.approx_bytes(), b.approx_bytes());
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.approx_bytes(), a_bytes + b_bytes);
        assert!(matches!(a.ops()[0], BatchOp::Gate { gate: Gate::H, .. }));
        assert!(matches!(a.ops()[1], BatchOp::Cnot { .. }));
        assert!(matches!(a.ops()[2], BatchOp::Gate { gate: Gate::T, .. }));
    }

    #[test]
    fn approx_bytes_accumulates_and_drains_with_take() {
        let mut b = GateBatch::new();
        assert_eq!(b.approx_bytes(), 0);
        b.push(BatchOp::Gate {
            gate: Gate::H,
            q: QubitId(0),
        });
        let one_op = b.approx_bytes();
        assert!(one_op >= std::mem::size_of::<BatchOp>());
        b.push(BatchOp::Controlled {
            controls: vec![QubitId(1), QubitId(2)],
            gate: Gate::X,
            target: QubitId(0),
        });
        // The controlled op's heap payload must count beyond the stack slot.
        assert!(b.approx_bytes() > one_op + std::mem::size_of::<BatchOp>());
        let taken = b.take();
        assert_eq!(b.approx_bytes(), 0);
        assert!(taken.approx_bytes() > 0);
    }
}
