//! Dense state-vector representation.
//!
//! A register of `n` qubits is stored as `2^n` complex amplitudes; qubit `k`
//! corresponds to bit `k` of the basis-state index (qubit 0 is the least
//! significant bit). Qubits can be appended (tensor with |0>) and removed
//! (after collapse), which is what the dynamic `QMPI_Alloc_qmem` /
//! `QMPI_Free_qmem` interface of the paper's prototype requires.

use crate::complex::{Complex, C_ONE, C_ZERO};

/// Numerical tolerance used for normalization and classicality checks.
pub const NORM_TOL: f64 = 1e-9;

/// A pure quantum state over `n` qubits as a dense amplitude vector.
#[derive(Clone, Debug)]
pub struct State {
    amps: Vec<Complex>,
    n_qubits: usize,
}

impl State {
    /// Creates the all-zeros state |0...0> over `n_qubits` qubits.
    ///
    /// `n_qubits == 0` yields the scalar state (a single amplitude of 1),
    /// which is the correct identity for tensoring.
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            n_qubits < 30,
            "state vector of {n_qubits} qubits would not fit in memory"
        );
        let mut amps = vec![C_ZERO; 1usize << n_qubits];
        amps[0] = C_ONE;
        State { amps, n_qubits }
    }

    /// Builds a state from raw amplitudes. The length must be a power of two
    /// and the vector must be normalized to within [`NORM_TOL`].
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n_qubits = amps.len().trailing_zeros() as usize;
        let state = State { amps, n_qubits };
        assert!(
            (state.norm_sqr() - 1.0).abs() < NORM_TOL,
            "state not normalized: |psi|^2 = {}",
            state.norm_sqr()
        );
        state
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// True for the 0-qubit scalar state.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_qubits == 0
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable view of the amplitudes (used by the apply kernels).
    #[inline]
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// The amplitude of computational basis state `index`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// Total squared norm (should always be ~1).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales so that the squared norm is exactly 1.
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 0.0, "cannot renormalize the zero vector");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Appends a fresh qubit in |0> as the new most-significant qubit and
    /// returns its index (`old n_qubits`). Existing qubit indices are stable.
    pub fn add_qubit(&mut self) -> usize {
        assert!(self.n_qubits < 29, "qubit budget exhausted");
        let idx = self.n_qubits;
        self.amps.resize(self.amps.len() * 2, C_ZERO);
        self.n_qubits += 1;
        idx
    }

    /// Removes qubit `target`, which must already be collapsed to the
    /// classical value `outcome` (all amplitude mass on that branch).
    /// Qubits above `target` shift down by one index.
    pub fn remove_qubit(&mut self, target: usize, outcome: bool) {
        assert!(target < self.n_qubits, "qubit {target} out of range");
        let bit = 1usize << target;
        let low_mask = bit - 1;
        let keep = if outcome { bit } else { 0 };
        let mut out = vec![C_ZERO; self.amps.len() / 2];
        let mut dropped = 0.0f64;
        for (i, &a) in self.amps.iter().enumerate() {
            if i & bit == keep {
                let j = (i & low_mask) | ((i >> 1) & !low_mask);
                out[j] = a;
            } else {
                dropped += a.norm_sqr();
            }
        }
        assert!(
            dropped < NORM_TOL,
            "removing qubit {target} with outcome {outcome} would discard {dropped:.3e} probability; collapse it first"
        );
        self.amps = out;
        self.n_qubits -= 1;
        self.renormalize();
    }

    /// Tensor product `self ⊗ other`: `other`'s qubits become the new
    /// high-order qubits `self.n_qubits ..`.
    pub fn tensor(&self, other: &State) -> State {
        let mut amps = vec![C_ZERO; self.amps.len() * other.amps.len()];
        for (j, &b) in other.amps.iter().enumerate() {
            if b.is_negligible(1e-300) {
                continue;
            }
            let base = j << self.n_qubits;
            for (i, &a) in self.amps.iter().enumerate() {
                amps[base | i] = a * b;
            }
        }
        State {
            amps,
            n_qubits: self.n_qubits + other.n_qubits,
        }
    }

    /// Inner product `<self|other>`.
    pub fn inner_product(&self, other: &State) -> Complex {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(C_ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity `|<self|other>|^2` between two pure states.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Returns a copy of this state with qubits re-ordered so that old qubit
    /// `perm[k]` becomes new qubit `k`. `perm` must be a permutation of
    /// `0..n_qubits`.
    pub fn permuted(&self, perm: &[usize]) -> State {
        assert_eq!(perm.len(), self.n_qubits, "permutation length mismatch");
        let mut seen = vec![false; self.n_qubits];
        for &p in perm {
            assert!(p < self.n_qubits && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        let mut amps = vec![C_ZERO; self.amps.len()];
        for (i, &a) in self.amps.iter().enumerate() {
            let mut j = 0usize;
            for (new_bit, &old_bit) in perm.iter().enumerate() {
                j |= ((i >> old_bit) & 1) << new_bit;
            }
            amps[j] = a;
        }
        State {
            amps,
            n_qubits: self.n_qubits,
        }
    }

    /// Probability that measuring all qubits yields the basis state `index`.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Checks approximate equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &State, tol: f64) -> bool {
        if self.n_qubits != other.n_qubits {
            return false;
        }
        (self.fidelity(other) - 1.0).abs() < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn zero_state_has_unit_amp_at_origin() {
        let s = State::zero(3);
        assert_eq!(s.len(), 8);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_qubit_preserves_amplitudes() {
        let mut s = State::from_amplitudes(vec![
            Complex::real(FRAC),
            Complex::real(FRAC),
            Complex::real(FRAC),
            Complex::real(FRAC),
        ]);
        let idx = s.add_qubit();
        assert_eq!(idx, 2);
        assert_eq!(s.n_qubits(), 3);
        for i in 0..4 {
            assert!((s.probability(i) - 0.25).abs() < 1e-12);
        }
        for i in 4..8 {
            assert!(s.probability(i) < 1e-15);
        }
    }

    const FRAC: f64 = 0.5;

    #[test]
    fn remove_qubit_shifts_higher_indices() {
        // |psi> = (|000> + |101>)/sqrt(2) over qubits (q2 q1 q0); collapse q1=0, remove it.
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let mut amps = vec![crate::complex::C_ZERO; 8];
        amps[0b000] = Complex::real(h);
        amps[0b101] = Complex::real(h);
        let mut s = State::from_amplitudes(amps);
        s.remove_qubit(1, false);
        assert_eq!(s.n_qubits(), 2);
        // Expect (|00> + |11>)/sqrt(2) over (q2->q1, q0).
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "discard")]
    fn remove_uncollapsed_qubit_panics() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let amps = vec![Complex::real(h), Complex::real(h)];
        let mut s = State::from_amplitudes(amps);
        s.remove_qubit(0, false);
    }

    #[test]
    fn tensor_of_plus_states() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let plus = State::from_amplitudes(vec![Complex::real(h), Complex::real(h)]);
        let two = plus.tensor(&plus);
        assert_eq!(two.n_qubits(), 2);
        for i in 0..4 {
            assert!((two.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let zero = State::zero(1);
        let one = State::from_amplitudes(vec![crate::complex::C_ZERO, crate::complex::C_ONE]);
        assert!(zero.inner_product(&one).norm_sqr() < 1e-15);
        assert!((zero.fidelity(&zero) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_swaps_qubits() {
        // |01> (q1=0, q0=1) permuted by [1,0] becomes |10>.
        let mut amps = vec![crate::complex::C_ZERO; 4];
        amps[0b01] = crate::complex::C_ONE;
        let s = State::from_amplitudes(amps);
        let p = s.permuted(&[1, 0]);
        assert!((p.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_identity_is_noop() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let amps = vec![
            Complex::real(h),
            crate::complex::C_ZERO,
            crate::complex::C_ZERO,
            Complex::real(h),
        ];
        let s = State::from_amplitudes(amps);
        let p = s.permuted(&[0, 1]);
        assert!((s.fidelity(&p) - 1.0).abs() < 1e-12);
    }
}
