//! Minimal complex-number arithmetic for the state-vector simulator.
//!
//! Implemented in-repo (rather than pulling in an external numerics crate) so
//! that the whole simulator substrate is self-contained and the hot kernels in
//! [`crate::apply`] compile down to plain f64 arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity, `0 + 0i`.
pub const C_ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0i`.
pub const C_ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit, `0 + 1i`.
pub const C_I: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{i\theta} = cos\theta + i sin\theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`. This is the probability weight of an amplitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True if both components are within `tol` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// True if `|z| <= tol`.
    #[inline]
    pub fn is_negligible(self, tol: f64) -> bool {
        self.norm_sqr() <= tol * tol
    }

    /// Multiplicative inverse. Panics in debug builds if `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "division by zero complex number");
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1 by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!((a + b).approx_eq(Complex::new(0.5, 5.0), TOL));
        assert!((a - b).approx_eq(Complex::new(1.5, -1.0), TOL));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert!((a * b).approx_eq(Complex::new(5.0, 5.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C_I * C_I).approx_eq(-C_ONE, TOL));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), TOL));
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.abs() - 5.0).abs() < TOL);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.norm_sqr() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn cis_addition_theorem() {
        let a = 0.7;
        let b = -1.3;
        assert!(Complex::cis(a + b).approx_eq(Complex::cis(a) * Complex::cis(b), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, -3.0);
        let b = Complex::new(0.5, 1.5);
        assert!(((a * b) / b).approx_eq(a, 1e-10));
        assert!((b * b.inv()).approx_eq(C_ONE, TOL));
    }

    #[test]
    fn arg_of_axes() {
        assert!((Complex::real(1.0).arg()).abs() < TOL);
        assert!((C_I.arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
    }
}
