//! Plan-time gate fusion over a recorded [`GateBatch`].
//!
//! The paper's cost model bills kernel *sweeps* over huge amplitude
//! stripes, not gates: a run of k adjacent single-qubit gates on one qubit
//! costs k full passes over the state when replayed verbatim, but exactly
//! one if their 2×2 matrices are multiplied first. [`optimize`] is that
//! pass, run by the per-rank flush point on the batch it is about to
//! dispatch — after recording, before any engine sees it — in two stages:
//!
//! 1. **1q run fusion.** Adjacent single-qubit gates on the same qubit
//!    multiply into one [`BatchOp::Fused1q`] kernel. A pending run that is
//!    diagonal commutes exactly past CNOT controls, CZ operands, and
//!    `Controlled` controls (those ops never change the bit the factor
//!    reads), so runs survive across interleaved 2q traffic; non-diagonal
//!    runs flush at the first 2q op that touches their qubit. Length-1
//!    runs re-emit the original op verbatim.
//! 2. **Phase-sweep merging.** Diagonal items — diagonal gates, diagonal
//!    fused runs, CZs — collect into one [`BatchOp::PhaseSweep`], a single
//!    pass applying every factor and sign flip at once. Non-diagonal ops
//!    on disjoint qubits pass through (they commute with a diagonal
//!    sweep); an op that mixes a sweep qubit's bit closes the sweep.
//!    CZ pairs cancel in parity (CZ² = I exactly), exact-identity factors
//!    drop, and a sweep that absorbed a single op re-emits it verbatim.
//!
//! The pass reorders and re-associates floating-point products, so a
//! fused stream is *not* bit-identical to its eager expansion (H·H ≠ I at
//! the last ulp); it is equivalent to ~1e-12, and exactly equal on
//! permutation/phase circuits (X/Z/S/CNOT/CZ/SWAP) where every factor is
//! exact. Cross-*backend* bit-identity is preserved because every engine
//! executes the same optimized batch with the same per-amplitude
//! arithmetic. The caller is responsible for the fusion barriers the IR
//! cannot see: the pass must not run under a non-ideal noise model (it
//! reorders noise-injection sites) or for engines without amplitude
//! kernels (stabilizer, trace) — `qmpi`'s flush point gates on both.

use crate::batch::{BatchOp, GateBatch};
use crate::complex::{Complex, C_ONE, C_ZERO};
use crate::gates::{matmul2, Mat2};
use crate::sim::QubitId;

/// Whether `m` is exactly diagonal. The optimizer treats only *exact*
/// zeros as structural (products of exactly-diagonal factors keep exact
/// zeros off-diagonal), so no tolerance is involved and every backend
/// classifies identically.
fn is_diag_mat(m: &Mat2) -> bool {
    m[0][1] == C_ZERO && m[1][0] == C_ZERO
}

/// A pending fusion run: adjacent 1q gates on `q`, accumulated as one
/// matrix product. `first` is the op that opened the run, re-emitted
/// verbatim when nothing else joined.
struct Run {
    q: QubitId,
    m: Mat2,
    count: usize,
    first: BatchOp,
}

impl Run {
    fn emit(self) -> BatchOp {
        if self.count == 1 {
            self.first
        } else {
            BatchOp::Fused1q {
                q: self.q,
                m: self.m,
            }
        }
    }
}

/// Stage 1: multiply runs of adjacent 1q gates per qubit into single
/// [`BatchOp::Fused1q`] kernels, letting diagonal runs commute past ops
/// that do not change their qubit's bit.
fn fuse_1q_runs(ops: Vec<BatchOp>) -> Vec<BatchOp> {
    let mut out: Vec<BatchOp> = Vec::with_capacity(ops.len());
    // Insertion-ordered; linear scans are fine — a rank's live-qubit
    // working set is small, and the ops vec dominates anyway.
    let mut runs: Vec<Run> = Vec::new();

    fn flush(out: &mut Vec<BatchOp>, runs: &mut Vec<Run>, q: QubitId) {
        if let Some(i) = runs.iter().position(|r| r.q == q) {
            out.push(runs.remove(i).emit());
        }
    }
    /// True when the pending run on `q` (if any) commutes past an op that
    /// reads — but never changes — `q`'s bit.
    fn passes_as_control(runs: &[Run], q: QubitId) -> bool {
        runs.iter()
            .find(|r| r.q == q)
            .is_none_or(|r| is_diag_mat(&r.m))
    }

    for op in ops {
        match op {
            BatchOp::Gate { gate, q } => match runs.iter_mut().find(|r| r.q == q) {
                Some(r) => {
                    r.m = matmul2(&gate.matrix(), &r.m);
                    r.count += 1;
                }
                None => runs.push(Run {
                    q,
                    m: gate.matrix(),
                    count: 1,
                    first: BatchOp::Gate { gate, q },
                }),
            },
            BatchOp::Fused1q { q, m } => match runs.iter_mut().find(|r| r.q == q) {
                Some(r) => {
                    r.m = matmul2(&m, &r.m);
                    r.count += 1;
                }
                None => runs.push(Run {
                    q,
                    m,
                    count: 1,
                    first: BatchOp::Fused1q { q, m },
                }),
            },
            BatchOp::Cnot { c, t } => {
                if !passes_as_control(&runs, c) {
                    flush(&mut out, &mut runs, c);
                }
                flush(&mut out, &mut runs, t);
                out.push(BatchOp::Cnot { c, t });
            }
            BatchOp::Cz { a, b } => {
                // CZ is diagonal: diagonal runs on either operand commute.
                if !passes_as_control(&runs, a) {
                    flush(&mut out, &mut runs, a);
                }
                if !passes_as_control(&runs, b) {
                    flush(&mut out, &mut runs, b);
                }
                out.push(BatchOp::Cz { a, b });
            }
            BatchOp::Controlled {
                controls,
                gate,
                target,
            } => {
                for &c in &controls {
                    if !passes_as_control(&runs, c) {
                        flush(&mut out, &mut runs, c);
                    }
                }
                flush(&mut out, &mut runs, target);
                out.push(BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                });
            }
            BatchOp::Swap { a, b } => {
                flush(&mut out, &mut runs, a);
                flush(&mut out, &mut runs, b);
                out.push(BatchOp::Swap { a, b });
            }
            BatchOp::PhaseSweep { .. } => {
                // Already-optimized input: flush everything it touches and
                // pass it through untouched.
                op.for_each_qubit(|q| flush(&mut out, &mut runs, q));
                out.push(op);
            }
        }
    }
    // Leftover runs land at batch end, in run-start order.
    for r in runs {
        out.push(r.emit());
    }
    out
}

/// The open phase sweep being accumulated by stage 2.
#[derive(Default)]
struct Sweep {
    diags: Vec<(QubitId, Complex, Complex)>,
    czs: Vec<(QubitId, QubitId)>,
    /// The original ops the sweep absorbed, for verbatim re-emission when
    /// only one joined.
    absorbed: Vec<BatchOp>,
    /// Every qubit any absorbed op touches (dedup'd).
    qubits: Vec<QubitId>,
}

impl Sweep {
    fn touch(&mut self, q: QubitId) {
        if !self.qubits.contains(&q) {
            self.qubits.push(q);
        }
    }

    fn touches(&self, q: QubitId) -> bool {
        self.qubits.contains(&q)
    }

    fn push_diag(&mut self, q: QubitId, d0: Complex, d1: Complex, original: BatchOp) {
        // Exact identities (e.g. a fused Z·Z run) contribute nothing.
        if !(d0 == C_ONE && d1 == C_ONE) {
            self.diags.push((q, d0, d1));
        }
        self.absorbed.push(original);
        self.touch(q);
    }

    fn push_cz(&mut self, a: QubitId, b: QubitId) {
        self.fold_cz(a, b);
        self.absorbed.push(BatchOp::Cz { a, b });
    }

    /// CZ parity fold without absorbing an op (used when splicing a
    /// pre-merged sweep's pairs in).
    fn fold_cz(&mut self, a: QubitId, b: QubitId) {
        let pair = (a.min(b), a.max(b));
        // CZ² = I exactly: a repeated pair cancels instead of stacking.
        match self.czs.iter().position(|&p| p == pair) {
            Some(i) => {
                self.czs.remove(i);
            }
            None => self.czs.push(pair),
        }
        self.touch(a);
        self.touch(b);
    }

    fn close(&mut self, out: &mut Vec<BatchOp>) {
        let sweep = std::mem::take(self);
        if sweep.diags.is_empty() && sweep.czs.is_empty() {
            // Everything cancelled (CZ pairs) or was an exact identity.
            return;
        }
        if sweep.absorbed.len() == 1 {
            out.extend(sweep.absorbed);
            return;
        }
        out.push(BatchOp::PhaseSweep {
            diags: sweep.diags,
            czs: sweep.czs,
        });
    }
}

/// Stage 2: collect runs of commuting diagonal items into single
/// [`BatchOp::PhaseSweep`] passes.
fn merge_phase_sweeps(ops: Vec<BatchOp>) -> Vec<BatchOp> {
    let mut out: Vec<BatchOp> = Vec::with_capacity(ops.len());
    let mut sweep = Sweep::default();

    for op in ops {
        match op {
            BatchOp::Gate { gate, q } if gate.is_diagonal() => {
                let m = gate.matrix();
                sweep.push_diag(q, m[0][0], m[1][1], BatchOp::Gate { gate, q });
            }
            BatchOp::Fused1q { q, m } if is_diag_mat(&m) => {
                sweep.push_diag(q, m[0][0], m[1][1], BatchOp::Fused1q { q, m });
            }
            BatchOp::Cz { a, b } => sweep.push_cz(a, b),
            // Everything below is non-diagonal (or not mergeable). An op
            // that cannot change a sweep qubit's bit commutes with the
            // (diagonal) sweep and passes through; anything else closes
            // the sweep first.
            BatchOp::Cnot { c, t } => {
                if sweep.touches(t) {
                    sweep.close(&mut out);
                }
                out.push(BatchOp::Cnot { c, t });
            }
            BatchOp::Controlled {
                controls,
                gate,
                target,
            } => {
                // A controlled *diagonal* gate is itself diagonal and
                // commutes; otherwise only the target's bit changes.
                if !gate.is_diagonal() && sweep.touches(target) {
                    sweep.close(&mut out);
                }
                out.push(BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                });
            }
            BatchOp::Gate { gate, q } => {
                if sweep.touches(q) {
                    sweep.close(&mut out);
                }
                out.push(BatchOp::Gate { gate, q });
            }
            BatchOp::Fused1q { q, m } => {
                if sweep.touches(q) {
                    sweep.close(&mut out);
                }
                out.push(BatchOp::Fused1q { q, m });
            }
            BatchOp::Swap { a, b } => {
                if sweep.touches(a) || sweep.touches(b) {
                    sweep.close(&mut out);
                }
                out.push(BatchOp::Swap { a, b });
            }
            BatchOp::PhaseSweep { diags, czs } => {
                // Pre-merged input is fully diagonal: fold it into the
                // open sweep as one absorbed op (so a sweep that absorbed
                // nothing else re-emits it verbatim).
                sweep.absorbed.push(BatchOp::PhaseSweep {
                    diags: diags.clone(),
                    czs: czs.clone(),
                });
                for (q, d0, d1) in diags {
                    if !(d0 == C_ONE && d1 == C_ONE) {
                        sweep.diags.push((q, d0, d1));
                    }
                    sweep.touch(q);
                }
                for (a, b) in czs {
                    sweep.fold_cz(a, b);
                }
            }
        }
    }
    sweep.close(&mut out);
    out
}

/// Runs the full plan-time pass: 1q run fusion, then phase-sweep merging.
///
/// The result applies the same unitary as `batch` (to FP re-association;
/// see the module docs for the exactness contract) with at most as many —
/// typically far fewer — kernel sweeps. Must only be called under the
/// fusion barriers the caller enforces: ideal noise model, amplitude-class
/// engine, and never across measurements/ownership changes (those are
/// flush points, so they cannot appear inside one batch by construction).
pub fn optimize(batch: GateBatch) -> GateBatch {
    let ops = merge_phase_sweeps(fuse_1q_runs(batch.into_ops()));
    let mut out = GateBatch::new();
    for op in ops {
        out.push(op);
    }
    out
}

/// Concatenates already-optimized per-rank segments into one batch
/// **without** re-optimizing across segment seams.
///
/// The cross-rank coalescing layer merges concurrent ranks' flushed plans
/// into a single dispatch unit. Each segment was (possibly) optimized in
/// isolation at its own flush point; running [`optimize`] over the
/// concatenation would fuse across rank boundaries, changing each rank's
/// FP multiply sequence and breaking bit-identity with the uncoalesced
/// path. This helper is the sanctioned seam-preserving join: pure
/// [`GateBatch::append`], segment order preserved, per-segment op order
/// preserved — so the merged stream executes every rank's ops exactly as
/// that rank's solo flush would have.
pub fn concat_segments(segments: impl IntoIterator<Item = GateBatch>) -> GateBatch {
    let mut out = GateBatch::new();
    for seg in segments {
        out.append(seg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::Gate;

    fn q(i: u64) -> QubitId {
        QubitId(i)
    }

    fn gate(g: Gate, t: u64) -> BatchOp {
        BatchOp::Gate { gate: g, q: q(t) }
    }

    fn optimize_ops(ops: Vec<BatchOp>) -> Vec<BatchOp> {
        let mut b = GateBatch::new();
        for op in ops {
            b.push(op);
        }
        optimize(b).into_ops()
    }

    #[test]
    fn concat_segments_preserves_per_segment_fusion_boundaries() {
        // Two ranks each end their (optimized) segment with an H run on
        // their own qubit; naive re-optimization of the concatenation
        // would be a no-op here, but on a *shared-order* stream ending in
        // H,H on the same qubit it would cancel the pair. Build exactly
        // that hazard: segment A ends with H(0), segment B begins with
        // H(0) — legal only because the coalescer never interleaves a
        // qubit across segments in practice, but the helper must not fuse
        // across the seam regardless.
        let mut a = GateBatch::new();
        a.push(gate(Gate::H, 0));
        let mut b = GateBatch::new();
        b.push(gate(Gate::H, 0));
        b.push(gate(Gate::T, 1));
        let merged = super::concat_segments([a.clone(), b.clone()]);
        // Pure concatenation: both H ops survive verbatim, in order.
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.ops()[0], gate(Gate::H, 0));
        assert_eq!(merged.ops()[1], gate(Gate::H, 0));
        assert_eq!(merged.ops()[2], gate(Gate::T, 1));
        // Contrast: optimizing the same stream as one batch drops the pair.
        let fused = optimize(merged.clone());
        assert!(fused.len() < merged.len());
        assert_eq!(
            merged.approx_bytes(),
            a.approx_bytes() + b.approx_bytes(),
            "byte accounting must survive concatenation"
        );
    }

    #[test]
    fn adjacent_1q_gates_fuse_into_one_kernel() {
        let out = optimize_ops(vec![
            gate(Gate::H, 0),
            gate(Gate::Ry(0.3), 0),
            gate(Gate::H, 0),
        ]);
        assert_eq!(out.len(), 1);
        let BatchOp::Fused1q { q: tq, m } = &out[0] else {
            panic!("expected a fused kernel, got {out:?}");
        };
        assert_eq!(*tq, q(0));
        let want = matmul2(
            &Gate::H.matrix(),
            &matmul2(&Gate::Ry(0.3).matrix(), &Gate::H.matrix()),
        );
        assert_eq!(*m, want);
    }

    #[test]
    fn singleton_runs_re_emit_the_original_op() {
        let out = optimize_ops(vec![gate(Gate::H, 0), gate(Gate::H, 1)]);
        assert_eq!(
            out,
            vec![gate(Gate::H, 0), gate(Gate::H, 1)],
            "lone gates must pass through verbatim"
        );
    }

    #[test]
    fn non_diagonal_run_flushes_at_a_touching_cnot() {
        let out = optimize_ops(vec![
            gate(Gate::H, 0),
            gate(Gate::Ry(0.3), 0),
            BatchOp::Cnot { c: q(0), t: q(1) },
            gate(Gate::H, 0),
        ]);
        // Ry·H is not diagonal, so the run flushes (fused) before the
        // CNOT that reads qubit 0; the trailing H stays a lone verbatim
        // gate.
        assert!(matches!(out[0], BatchOp::Fused1q { .. }));
        assert!(matches!(out[1], BatchOp::Cnot { .. }));
        assert_eq!(out[2], gate(Gate::H, 0));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn diagonal_run_commutes_past_cnot_control_and_keeps_fusing() {
        let out = optimize_ops(vec![
            gate(Gate::T, 0),
            BatchOp::Cnot { c: q(0), t: q(1) },
            gate(Gate::T, 0),
        ]);
        // T commutes past the control, meets the second T, and the fused
        // T·T (diagonal) becomes a single diagonal item — emitted after
        // the CNOT it commuted past.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], BatchOp::Cnot { .. }));
        assert!(matches!(out[1], BatchOp::Fused1q { .. }));
    }

    #[test]
    fn diagonal_gates_and_czs_merge_into_one_sweep() {
        let out = optimize_ops(vec![
            gate(Gate::T, 0),
            BatchOp::Cz { a: q(1), b: q(2) },
            gate(Gate::Rz(0.7), 3),
            gate(Gate::S, 4),
        ]);
        assert_eq!(out.len(), 1);
        let BatchOp::PhaseSweep { diags, czs } = &out[0] else {
            panic!("expected one merged sweep, got {out:?}");
        };
        assert_eq!(diags.len(), 3);
        assert_eq!(diags[0].0, q(0));
        assert_eq!(diags[1].0, q(3));
        assert_eq!(diags[2].0, q(4));
        assert_eq!(czs, &vec![(q(1), q(2))]);
    }

    #[test]
    fn repeated_cz_pairs_cancel_in_parity() {
        let out = optimize_ops(vec![
            BatchOp::Cz { a: q(0), b: q(1) },
            gate(Gate::T, 2),
            BatchOp::Cz { a: q(1), b: q(0) },
        ]);
        // The two CZs cancel exactly; only the T survives, re-emitted
        // verbatim (single absorbed op)... except the sweep absorbed three
        // ops, so it stays a sweep with the lone factor.
        assert_eq!(out.len(), 1);
        let BatchOp::PhaseSweep { diags, czs } = &out[0] else {
            panic!("expected a sweep, got {out:?}");
        };
        assert_eq!(diags.len(), 1);
        assert!(czs.is_empty());
    }

    #[test]
    fn lone_diagonal_gate_passes_through_verbatim() {
        // Disjoint qubits so stage 1 leaves two singleton runs; the H
        // (non-diagonal, disjoint) commutes past the open T sweep, which
        // closes at batch end and re-emits its single op verbatim.
        let out = optimize_ops(vec![gate(Gate::T, 0), gate(Gate::H, 1)]);
        assert_eq!(out, vec![gate(Gate::H, 1), gate(Gate::T, 0)]);
    }

    #[test]
    fn sweep_closes_when_an_op_mixes_a_sweep_qubit() {
        let out = optimize_ops(vec![
            gate(Gate::T, 0),
            gate(Gate::T, 1),
            BatchOp::Cnot { c: q(2), t: q(0) },
            gate(Gate::T, 0),
        ]);
        // Stage 1 flushes the T0 run at the CNOT target (emitted
        // verbatim), while the diagonal T1 run and the trailing T0 drift
        // to batch end and merge into one sweep in stage 2.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], gate(Gate::T, 0));
        assert!(matches!(out[1], BatchOp::Cnot { .. }));
        let BatchOp::PhaseSweep { diags, czs } = &out[2] else {
            panic!("expected trailing sweep, got {out:?}");
        };
        assert_eq!(diags.len(), 2);
        assert!(czs.is_empty());
    }

    #[test]
    fn fused_identity_runs_vanish() {
        let out = optimize_ops(vec![
            gate(Gate::Z, 0),
            gate(Gate::Z, 0),
            gate(Gate::X, 1),
            gate(Gate::X, 1),
        ]);
        // Z·Z = I and X·X = I exactly (0/±1 entries): both runs fuse to
        // exact identities. The diagonal one drops in stage 2; the X·X
        // identity is not diagonal-classified... it is: the product has
        // exact zeros off-diagonal, so it drops too.
        assert!(
            out.is_empty(),
            "exact identity runs must vanish, got {out:?}"
        );
    }

    #[test]
    fn disjoint_non_diagonal_ops_pass_an_open_sweep() {
        let out = optimize_ops(vec![gate(Gate::T, 0), gate(Gate::H, 1), gate(Gate::T, 2)]);
        // H on qubit 1 commutes with the diagonal sweep on {0,2}; the
        // sweep closes at batch end, after the H.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], gate(Gate::H, 1));
        assert!(matches!(out[1], BatchOp::PhaseSweep { .. }));
    }

    #[test]
    fn swap_flushes_runs_on_both_operands() {
        let out = optimize_ops(vec![
            gate(Gate::T, 0),
            gate(Gate::T, 0),
            BatchOp::Swap { a: q(0), b: q(1) },
        ]);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], BatchOp::Fused1q { .. }));
        assert!(matches!(out[1], BatchOp::Swap { .. }));
    }

    #[test]
    fn optimized_stream_never_has_more_ops_than_the_input() {
        let circuits: Vec<Vec<BatchOp>> = vec![
            vec![
                gate(Gate::H, 0),
                BatchOp::Cnot { c: q(0), t: q(1) },
                gate(Gate::T, 1),
                gate(Gate::Tdg, 1),
                BatchOp::Cz { a: q(0), b: q(1) },
            ],
            vec![
                BatchOp::Controlled {
                    controls: vec![q(0), q(1)],
                    gate: Gate::X,
                    target: q(2),
                },
                gate(Gate::Rz(0.2), 0),
                BatchOp::Swap { a: q(1), b: q(2) },
            ],
            vec![BatchOp::PhaseSweep {
                diags: vec![(q(0), C_ONE, C_ONE)],
                czs: vec![(q(1), q(2))],
            }],
        ];
        for ops in circuits {
            let n = ops.len();
            let out = optimize_ops(ops);
            assert!(out.len() <= n, "optimizer grew the stream: {out:?}");
        }
    }
}
