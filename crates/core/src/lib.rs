//! # qmpi — Quantum MPI
//!
//! A Rust implementation of **QMPI**, the quantum extension of the Message
//! Passing Interface proposed in *Distributed Quantum Computing with QMPI*
//! (Häner, Steiger, Hoefler, Troyer — SC 2021).
//!
//! ## Model
//!
//! A QMPI world consists of `n` quantum ranks (nodes), each owning a set of
//! qubits. Ranks exchange quantum information exclusively through EPR pairs
//! established over the (simulated) quantum-coherent interconnect; classical
//! correction bits travel over the classical MPI substrate ([`cmpi`]).
//! Execution is backed by a pluggable [`QuantumBackend`], and *locality is
//! enforced* by the shared backend wrapper regardless of engine: applying a
//! multi-qubit gate to another rank's qubit is a [`QmpiError::Locality`]
//! error.
//!
//! ## Quick start
//!
//! The paper's Section 6 example — an EPR pair between two ranks:
//!
//! ```
//! use qmpi::run;
//!
//! let outcomes = run(2, |ctx| {
//!     let qubit = ctx.alloc_one();                      // QMPI_Alloc_qmem(1)
//!     let dest = 1 - ctx.rank();
//!     ctx.prepare_epr(&qubit, dest, 0).unwrap();        // QMPI_Prepare_EPR
//!     ctx.measure_and_free(qubit).unwrap()
//! });
//! // Both ranks observe the same value when measuring their EPR half.
//! assert_eq!(outcomes[0], outcomes[1]);
//! ```
//!
//! ## Choosing a backend
//!
//! [`QmpiConfig`] is a builder; [`BackendKind`] selects the engine that
//! executes quantum operations for the whole world:
//!
//! ```
//! use qmpi::{run_with_config, BackendKind, QmpiConfig};
//!
//! // The QMPI protocols are pure Clifford, so the stabilizer tableau runs
//! // them at rank counts far beyond any state vector.
//! let cfg = QmpiConfig::new().seed(11).backend(BackendKind::Stabilizer);
//! let outcomes = run_with_config(64, cfg, |ctx| {
//!     let share = ctx.cat_establish().unwrap();         // 64-rank GHZ
//!     ctx.measure_and_free(share).unwrap()
//! });
//! assert!(outcomes.iter().all(|&m| m == outcomes[0]));
//! ```
//!
//! * [`BackendKind::StateVector`] (default) — exact amplitudes via [`qsim`];
//!   supports every gate, including the non-Clifford rotations the
//!   application layer ([`qalgo`-style workloads]) needs. Practical cap of
//!   roughly 25 total qubits — the paper's prototype.
//! * [`BackendKind::Stabilizer`] — CHP tableau; Clifford-only and
//!   polynomial-cost, so EPR distribution, teleportation, cat-state
//!   broadcast, and parity reduction run with *thousands* of ranks.
//! * [`BackendKind::Trace`] — no amplitudes at all; gates, measurements,
//!   EPR establishments, and qubit high-water marks are only counted
//!   ([`OpCounts`]), which reproduces the paper's Table 1–3 resource
//!   formulas at arbitrary scale in microseconds.
//! * `BackendKind::ShardedStateVector { shards }` — exact amplitudes like
//!   the default engine, but striped across `shards` per-shard locks behind
//!   a reader-writer locality wrapper, so gates issued by different ranks
//!   run concurrently instead of serializing on one mutex.
//! * `BackendKind::RemoteSharded { shards }` — exact amplitudes whose
//!   shards live in dedicated *worker ranks* driven purely by [`cmpi`]
//!   message passing (the paper's process-separated deployment model); same
//!   results as the dense engines, no shared-address-space assumption.
//!
//! [`qalgo`-style workloads]: BackendKind::StateVector
//!
//! ## Surface
//!
//! * Point-to-point (Table 2): [`QmpiRank::send`]/[`QmpiRank::recv`]
//!   (entangled copy), [`QmpiRank::unsend`]/[`QmpiRank::unrecv`] (inverses),
//!   [`QmpiRank::send_move`]/[`QmpiRank::recv_move`] (teleportation),
//!   `sendrecv`, `sendrecv_replace`, buffered/synchronous/ready aliases,
//!   non-blocking EPR establishment.
//! * Collectives (Table 3): `bcast` (binomial tree or constant-depth cat
//!   state), `gather`/`scatter` (± move), `allgather`, `alltoall` (± move),
//!   reversible `reduce`/`scan`/`exscan` with full inverses.
//! * Persistent requests (Section 4.7): [`QmpiRank::send_init`] /
//!   [`QmpiRank::recv_init`] — quantum resources up front, classical-only
//!   starts.
//! * Resource accounting: every operation reports EPR pairs and classical
//!   correction bits to a global [`ResourceLedger`], which the experiment
//!   harness diffs against the paper's Tables 1–3.
//! * Noisy execution: [`QmpiConfig::noise`] threads a [`NoiseModel`]
//!   (depolarizing / dephasing / amplitude damping, independent rates for
//!   1q gates, 2q gates, measurement, and EPR establishment) into every
//!   backend for fidelity-vs-`S`-budget studies.

pub mod backend;
pub mod cat;
pub mod collectives;
pub mod collectives_v;
pub mod context;
pub mod datatypes;
pub mod epr;
pub mod error;
pub mod gates;
pub mod p2p;
pub mod persistent;
pub mod qubit;
pub mod reduce_ops;
pub mod resources;

pub use backend::{
    build_backend, build_backend_with_policy, qworker_main, BackendKind, OpCounts,
    ProcessShardLease, ProcessWorkerPool, QuantumBackend, RemoteShardedEngine, ShardLease,
    ShardWorkerPool, ShardableEngine, ShardedShared, ShardedStateVector, Shared, SimEngine,
    SparseEngine, StabilizerEngine, StateVectorEngine, TraceEngine, TransportStats, DIAG_RANK,
};
pub use cmpi::TransportKind;
pub use collectives::{
    AllreduceHandle, BcastAlgorithm, ExscanHandle, ReduceHandle, ReduceScatterHandle, ScanHandle,
};
pub use context::{
    run, run_on_backend, run_with_config, BatchPolicy, QTag, QmpiConfig, QmpiRank, WorldRun,
};
pub use datatypes::{Datatype, QUBIT};
pub use epr::EprRequest;
pub use error::{QmpiError, Result};
pub use persistent::{PersistentRecv, PersistentSend};
pub use qsim::noise::{NoiseChannel, NoiseModel, OpClass};
pub use qubit::Qubit;
pub use reduce_ops::{Parity, QuantumReduceOp};
pub use resources::{ResourceLedger, ResourceSnapshot};

#[cfg(test)]
mod proptests {
    use crate::context::run_with_config;
    use crate::QmpiConfig;
    use proptest::prelude::*;
    use qsim::Pauli;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn teleportation_preserves_random_states(theta in 0.0f64..3.1, phi in -3.1f64..3.1, seed in 0u64..500) {
            let cfg = QmpiConfig::new().seed(seed);
            let out = run_with_config(2, cfg, move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.ry(&q, theta).unwrap();
                    ctx.rz(&q, phi).unwrap();
                    ctx.send_move(q, 1, 0).unwrap();
                    (0.0, 0.0, 0.0)
                } else {
                    let q = ctx.recv_move(0, 0).unwrap();
                    let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                    let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                    let y = ctx.expectation(&[(&q, Pauli::Y)]).unwrap();
                    ctx.measure_and_free(q).unwrap();
                    (z, x, y)
                }
            });
            let (z, x, y) = out[1];
            prop_assert!((z - theta.cos()).abs() < 1e-8);
            prop_assert!((x - theta.sin() * phi.cos()).abs() < 1e-8);
            prop_assert!((y - theta.sin() * phi.sin()).abs() < 1e-8);
        }

        #[test]
        fn copy_uncopy_roundtrip_random_states(theta in 0.0f64..3.1, phi in -3.1f64..3.1, seed in 0u64..500) {
            let cfg = QmpiConfig::new().seed(seed);
            let out = run_with_config(2, cfg, move |ctx| {
                if ctx.rank() == 0 {
                    let q = ctx.alloc_one();
                    ctx.ry(&q, theta).unwrap();
                    ctx.rz(&q, phi).unwrap();
                    ctx.send(&q, 1, 0).unwrap();
                    ctx.unsend(&q, 1, 0).unwrap();
                    let z = ctx.expectation(&[(&q, Pauli::Z)]).unwrap();
                    let x = ctx.expectation(&[(&q, Pauli::X)]).unwrap();
                    let y = ctx.expectation(&[(&q, Pauli::Y)]).unwrap();
                    ctx.measure_and_free(q).unwrap();
                    (z, x, y)
                } else {
                    let c = ctx.recv(0, 0).unwrap();
                    ctx.unrecv(c, 0, 0).unwrap();
                    (0.0, 0.0, 0.0)
                }
            });
            let (z, x, y) = out[0];
            prop_assert!((z - theta.cos()).abs() < 1e-8);
            prop_assert!((x - theta.sin() * phi.cos()).abs() < 1e-8);
            prop_assert!((y - theta.sin() * phi.sin()).abs() < 1e-8);
        }

        #[test]
        fn reduce_parity_matches_classical_xor(bits in proptest::collection::vec(any::<bool>(), 2..5)) {
            let n = bits.len();
            let bits_arc = std::sync::Arc::new(bits.clone());
            let out = run_with_config(n, QmpiConfig::default(), move |ctx| {
                let q = ctx.alloc_one();
                if bits_arc[ctx.rank()] {
                    ctx.x(&q).unwrap();
                }
                let (result, handle) = ctx.reduce(&q, &crate::Parity, 0).unwrap();
                let parity = result.as_ref().map(|r| ctx.expectation(&[(r, Pauli::Z)]).unwrap() < 0.0);
                ctx.unreduce(&q, result, handle, &crate::Parity).unwrap();
                ctx.measure_and_free(q).unwrap();
                parity
            });
            let expect = bits.iter().fold(false, |a, &b| a ^ b);
            prop_assert_eq!(out[0], Some(expect));
        }
    }
}
