//! Derived quantum datatypes (Section 4.2).
//!
//! QMPI defines one basic quantum datatype, `QMPI_QUBIT`; richer types
//! (quantum integers, fixed-point registers, ...) are built by the
//! programmer from contiguous qubits via `QMPI_Type_contiguous`. This
//! module provides that constructor plus typed send/recv helpers that
//! transfer a whole register per call.

use crate::context::{QTag, QmpiRank};
use crate::error::{QmpiError, Result};
use crate::qubit::Qubit;

/// A derived datatype: `count` contiguous qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Datatype {
    count: usize,
}

/// The basic datatype, one qubit (QMPI_QUBIT).
pub const QUBIT: Datatype = Datatype { count: 1 };

impl Datatype {
    /// QMPI_Type_contiguous: `count` copies of an existing type laid out
    /// contiguously.
    pub fn contiguous(count: usize, base: Datatype) -> Datatype {
        Datatype {
            count: count * base.count,
        }
    }

    /// Total number of qubits in one element of this type.
    pub fn extent(&self) -> usize {
        self.count
    }
}

impl QmpiRank {
    /// Sends one element of `dtype` (entangled copy per qubit).
    pub fn send_typed(
        &self,
        dtype: Datatype,
        data: &[Qubit],
        dest: usize,
        tag: QTag,
    ) -> Result<()> {
        if data.len() != dtype.extent() {
            return Err(QmpiError::InvalidArgument(format!(
                "typed send expects {} qubits, got {}",
                dtype.extent(),
                data.len()
            )));
        }
        for q in data {
            self.send(q, dest, tag)?;
        }
        Ok(())
    }

    /// Receives one element of `dtype`.
    pub fn recv_typed(&self, dtype: Datatype, src: usize, tag: QTag) -> Result<Vec<Qubit>> {
        (0..dtype.extent()).map(|_| self.recv(src, tag)).collect()
    }

    /// Inverse of [`QmpiRank::send_typed`].
    pub fn unsend_typed(
        &self,
        dtype: Datatype,
        data: &[Qubit],
        dest: usize,
        tag: QTag,
    ) -> Result<()> {
        if data.len() != dtype.extent() {
            return Err(QmpiError::InvalidArgument(
                "typed unsend length mismatch".into(),
            ));
        }
        // Uncopy in reverse order of creation.
        for q in data.iter().rev() {
            self.unsend(q, dest, tag)?;
        }
        Ok(())
    }

    /// Inverse of [`QmpiRank::recv_typed`].
    pub fn unrecv_typed(&self, copies: Vec<Qubit>, src: usize, tag: QTag) -> Result<()> {
        for q in copies.into_iter().rev() {
            self.unrecv(q, src, tag)?;
        }
        Ok(())
    }

    /// Moves one element of `dtype` (teleportation per qubit).
    pub fn send_move_typed(&self, data: Vec<Qubit>, dest: usize, tag: QTag) -> Result<()> {
        for q in data {
            self.send_move(q, dest, tag)?;
        }
        Ok(())
    }

    /// Receives a moved element of `dtype`.
    pub fn recv_move_typed(&self, dtype: Datatype, src: usize, tag: QTag) -> Result<Vec<Qubit>> {
        (0..dtype.extent())
            .map(|_| self.recv_move(src, tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run;

    #[test]
    fn contiguous_type_extent() {
        let pair = Datatype::contiguous(2, QUBIT);
        assert_eq!(pair.extent(), 2);
        let quad = Datatype::contiguous(2, pair);
        assert_eq!(quad.extent(), 4);
    }

    #[test]
    fn typed_roundtrip_preserves_register_value() {
        let out = run(2, |ctx| {
            let reg_t = Datatype::contiguous(3, QUBIT);
            if ctx.rank() == 0 {
                // Encode the integer 0b101 in a 3-qubit register.
                let reg = ctx.alloc_qmem(3);
                ctx.x(&reg[0]).unwrap();
                ctx.x(&reg[2]).unwrap();
                ctx.send_typed(reg_t, &reg, 1, 0).unwrap();
                ctx.unsend_typed(reg_t, &reg, 1, 0).unwrap();
                let vals: Vec<bool> = reg.iter().map(|q| ctx.prob_one(q).unwrap() > 0.5).collect();
                for q in reg {
                    ctx.measure_and_free(q).unwrap();
                }
                vals
            } else {
                let copies = ctx.recv_typed(reg_t, 0, 0).unwrap();
                let vals: Vec<bool> = copies
                    .iter()
                    .map(|q| ctx.prob_one(q).unwrap() > 0.5)
                    .collect();
                ctx.unrecv_typed(copies, 0, 0).unwrap();
                vals
            }
        });
        assert_eq!(out[0], vec![true, false, true]);
        assert_eq!(out[1], vec![true, false, true]);
    }

    #[test]
    fn typed_move_roundtrip() {
        let out = run(2, |ctx| {
            let reg_t = Datatype::contiguous(2, QUBIT);
            if ctx.rank() == 0 {
                let reg = ctx.alloc_qmem(2);
                ctx.x(&reg[1]).unwrap();
                ctx.send_move_typed(reg, 1, 0).unwrap();
                vec![]
            } else {
                let reg = ctx.recv_move_typed(reg_t, 0, 0).unwrap();
                let vals: Vec<bool> = reg.iter().map(|q| ctx.prob_one(q).unwrap() > 0.5).collect();
                for q in reg {
                    ctx.measure_and_free(q).unwrap();
                }
                vals
            }
        });
        assert_eq!(out[1], vec![false, true]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let out = run(2, |ctx| {
            ctx.barrier();
            if ctx.rank() == 0 {
                let reg = ctx.alloc_qmem(2);
                let err = ctx
                    .send_typed(Datatype::contiguous(3, QUBIT), &reg, 1, 0)
                    .is_err();
                for q in reg {
                    ctx.free_qmem(q).unwrap();
                }
                err
            } else {
                true
            }
        });
        assert!(out[0]);
    }
}
