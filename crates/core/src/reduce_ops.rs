//! Reversible reduction operations for quantum collectives (Section 4.5).
//!
//! Unlike classical MPI, a quantum reduction operator must be *reversible*
//! so that `QMPI_Unreduce` can uncompute scratch space ("the QMPI
//! implementation leaves all memory management to the user and QMPI_Reduce
//! only accepts reversible operations"). The first version of QMPI ships
//! `QMPI_PARITY`; this module also provides the controlled-phase fold used
//! in tests to prove the interface generalizes.

use crate::context::QmpiRank;
use crate::error::Result;
use crate::qubit::Qubit;

/// A reversible fold of one local qubit into an accumulator qubit.
///
/// `apply` must be a unitary on (local, acc) that is classical (permutation)
/// on the computational basis with respect to `acc` — this is what makes
/// chain reductions with entangled copies well-defined.
pub trait QuantumReduceOp: Sync {
    /// Folds `local` into `acc`.
    fn apply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()>;
    /// Inverse of [`QuantumReduceOp::apply`].
    fn unapply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()>;
    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str;
}

/// `QMPI_PARITY`: the accumulator accumulates the XOR of all inputs
/// (Section 4.5's example operation). Self-inverse.
#[derive(Clone, Copy, Debug, Default)]
pub struct Parity;

impl QuantumReduceOp for Parity {
    fn apply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()> {
        ctx.cnot(local, acc)
    }

    fn unapply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()> {
        ctx.cnot(local, acc)
    }

    fn name(&self) -> &'static str {
        "QMPI_PARITY"
    }
}

/// Logical AND folded via Toffoli *onto a |0> accumulator chain* is not
/// reversible qubit-to-qubit, so QMPI instead offers CAND as a
/// controlled-controlled-X against the accumulator (self-inverse), which
/// computes acc ^= (local AND flag) given a fixed flag qubit — provided
/// here as a template for user-defined ops in tests.
#[derive(Debug)]
pub struct ControlledParity<'a> {
    /// Additional control qubit that gates the fold.
    pub flag: &'a Qubit,
}

impl QuantumReduceOp for ControlledParity<'_> {
    fn apply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()> {
        ctx.toffoli(self.flag, local, acc)
    }

    fn unapply(&self, ctx: &QmpiRank, local: &Qubit, acc: &Qubit) -> Result<()> {
        ctx.toffoli(self.flag, local, acc)
    }

    fn name(&self) -> &'static str {
        "QMPI_CONTROLLED_PARITY"
    }
}
