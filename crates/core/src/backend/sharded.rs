//! The sharded state-vector engine and its reader-writer locality wrapper.
//!
//! [`ShardedStateVector`] is a full-amplitude engine like
//! [`super::StateVectorEngine`], but its amplitudes live in a
//! [`qsim::sharded::ShardedState`] — `2^k` contiguous shards, each behind
//! its own stripe lock — and every *gate* entry point is available through
//! `&self`. That second surface is what [`ShardedShared`] exploits: instead
//! of the single mutex that [`super::Shared`] funnels every operation
//! through, it guards the ownership registry with a reader-writer lock.
//! Gate traffic from concurrently executing ranks takes the *read* side
//! (ranks act on disjoint qubits, so their gates commute and the stripe
//! locks provide amplitude-level exclusion); only structural operations —
//! allocation, free, measurement collapse, EPR establishment, snapshots —
//! take the write side.
//!
//! The result is the fourth [`super::BackendKind`]:
//! `BackendKind::ShardedStateVector { shards }`.

use super::{BackendKind, Inner, OpCounts, QuantumBackend, SimEngine};
use crate::error::Result;
use parking_lot::{Mutex, RwLock};
use qsim::noise::{ChannelAction, NoiseModel, NoiseState, OpClass};
use qsim::registry::QubitRegistry;
use qsim::sharded::ShardedState;
use qsim::{BatchOp, Gate, GateBatch, Pauli, QubitId, SimError, State};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`SimEngine`] that additionally exposes its gate set through `&self`,
/// safe for concurrent callers operating on disjoint qubits. Engines
/// implementing this can be driven by [`ShardedShared`], which keeps gate
/// dispatch on the read side of a reader-writer lock.
pub trait ShardableEngine: SimEngine + Sync {
    /// Applies a single-qubit gate (concurrent-safe).
    fn apply_concurrent(&self, gate: Gate, q: QubitId) -> std::result::Result<(), SimError>;

    /// Applies a multi-controlled single-qubit gate (concurrent-safe).
    fn apply_controlled_concurrent(
        &self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> std::result::Result<(), SimError>;

    /// CNOT (concurrent-safe).
    fn cnot_concurrent(&self, c: QubitId, t: QubitId) -> std::result::Result<(), SimError>;

    /// CZ (concurrent-safe).
    fn cz_concurrent(&self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError>;

    /// SWAP (concurrent-safe).
    fn swap_concurrent(&self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError>;

    /// Applies a plan-time-fused 2×2 unitary (concurrent-safe). The
    /// default routes through the 1q entry point as `Gate::U(m)` — the
    /// kernel fused runs must match bit-for-bit.
    fn apply_fused_1q_concurrent(
        &self,
        q: QubitId,
        m: &qsim::gates::Mat2,
    ) -> std::result::Result<(), SimError> {
        self.apply_concurrent(Gate::U(*m), q)
    }

    /// Applies a plan-time-merged diagonal sweep (concurrent-safe). The
    /// default decomposes into per-factor diagonal `Gate::U`s plus CZs, in
    /// the sweep's factor order; engines with a one-pass stripe kernel
    /// override.
    fn apply_phase_sweep_concurrent(
        &self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> std::result::Result<(), SimError> {
        use qsim::complex::C_ZERO;
        for &(q, d0, d1) in diags {
            self.apply_concurrent(Gate::U([[d0, C_ZERO], [C_ZERO, d1]]), q)?;
        }
        for &(a, b) in czs {
            self.cz_concurrent(a, b)?;
        }
        Ok(())
    }

    /// Applies several ranks' gate segments — the drained contents of a
    /// cross-rank coalesce window, in arrival order — as one unit. Each
    /// `(rank, batch)` segment is a stream that was flushed (and possibly
    /// plan-time-optimized) by one rank in isolation; ranks own disjoint
    /// qubits, so the segments commute and concatenating them in arrival
    /// order reproduces exactly what dispatching each separately would
    /// have computed. The default does that concatenation seam-preserving
    /// ([`qsim::concat_segments`] — no cross-rank re-fusion) and applies
    /// it as one batch; the process-separated engine overrides this to
    /// ship one *merged* framed command per worker with per-rank segment
    /// markers, so failover replay keeps segment boundaries.
    fn apply_segments_concurrent(
        &self,
        segs: Vec<(usize, GateBatch)>,
    ) -> std::result::Result<(), SimError> {
        let merged = qsim::concat_segments(segs.into_iter().map(|(_, b)| b));
        self.apply_batch_concurrent(&merged)
    }

    /// Applies a whole recorded gate stream through the concurrent surface.
    /// The default loops the per-gate entry points (stripe locks still
    /// provide amplitude-level exclusion per pass); the process-separated
    /// engine overrides it to ship the stream as one framed message per
    /// worker. Same partial-application-on-error semantics as
    /// [`SimEngine::apply_batch`].
    fn apply_batch_concurrent(&self, batch: &GateBatch) -> std::result::Result<(), SimError> {
        for op in batch.ops() {
            match op {
                BatchOp::Gate { gate, q } => self.apply_concurrent(*gate, *q)?,
                BatchOp::Controlled {
                    controls,
                    gate,
                    target,
                } => self.apply_controlled_concurrent(controls, *gate, *target)?,
                BatchOp::Cnot { c, t } => self.cnot_concurrent(*c, *t)?,
                BatchOp::Cz { a, b } => self.cz_concurrent(*a, *b)?,
                BatchOp::Swap { a, b } => self.swap_concurrent(*a, *b)?,
                BatchOp::Fused1q { q, m } => self.apply_fused_1q_concurrent(*q, m)?,
                BatchOp::PhaseSweep { diags, czs } => {
                    self.apply_phase_sweep_concurrent(diags, czs)?
                }
            }
        }
        Ok(())
    }
}

/// Full state-vector engine over lock-striped amplitude shards.
///
/// Exact for arbitrary gates, exponential in total qubit count — the same
/// envelope as [`super::StateVectorEngine`] — but gate application goes
/// through per-shard stripe locks, so many ranks can apply gates at once.
pub struct ShardedStateVector {
    state: ShardedState,
    /// Stable handle <-> position bookkeeping, shared with the dense
    /// engine ([`qsim::registry`]) so the two cannot drift apart.
    reg: QubitRegistry,
    rng: StdRng,
    /// Mutex-wrapped (not `&mut`) because noise fires on the `&self`
    /// concurrent gate surface too; the sampling logic and stream seeding
    /// are shared with the dense engine, so a single-threaded caller gets
    /// amplitudes identical to [`qsim::Simulator`] under the same model.
    noise: Mutex<NoiseState>,
    /// Cached copy of the model so the hot path can skip ideal channels
    /// without touching the noise lock.
    noise_model: NoiseModel,
    /// Atomic so the concurrent gate surface can count without `&mut`.
    gate_count: AtomicU64,
    measurement_count: u64,
}

impl ShardedStateVector {
    /// Creates a noiseless engine with a deterministic measurement RNG seed
    /// and (up to) `shards` amplitude stripes (rounded to a power of two,
    /// clamped to `[1, 256]`).
    pub fn new(seed: u64, shards: usize) -> Self {
        ShardedStateVector::with_noise(seed, shards, NoiseModel::ideal())
    }

    /// Creates an engine that applies `noise` as stochastic Pauli/Kraus
    /// trajectory insertions through the stripe locks. For Pauli channels
    /// concurrent callers serialize only on the (cheap) noise RNG draw —
    /// the amplitude work happens after the lock drops; amplitude damping
    /// additionally reads the qubit's |1> probability (an O(2^n) sweep)
    /// under the lock, because the jump decision must be coherent with the
    /// state it was sampled from. With a single caller the noise stream is
    /// deterministic and identical to the dense engine's.
    pub fn with_noise(seed: u64, shards: usize, noise: NoiseModel) -> Self {
        ShardedStateVector {
            state: ShardedState::new(shards),
            reg: QubitRegistry::new(),
            rng: StdRng::seed_from_u64(seed),
            noise: Mutex::new(NoiseState::new(seed, noise)),
            noise_model: noise,
            gate_count: AtomicU64::new(0),
            measurement_count: 0,
        }
    }

    /// Samples and applies the `class` channel to each listed position;
    /// safe for concurrent callers (stripe locks provide amplitude-level
    /// exclusion, the RNG serializes behind its own mutex).
    ///
    /// Pauli channels sample under the lock but *apply* after it drops:
    /// concurrent ranks act on disjoint qubits and Pauli insertions on
    /// different qubits commute, so deferring the amplitude sweeps keeps
    /// the noise lock down to the RNG draws. Amplitude damping instead
    /// samples *and* applies under the lock — each jump decision (and its
    /// renormalization) must be coherent with the state produced by the
    /// previous insertion, exactly as the dense engine sequences them.
    fn inject(&self, class: OpClass, positions: &[usize]) {
        let ch = self.noise_model.channel(class);
        if ch.is_ideal() {
            return;
        }
        if matches!(ch, qsim::NoiseChannel::AmplitudeDamping { .. }) {
            let mut guard = self.noise.lock();
            for &pos in positions {
                let action = guard.sample(class, || self.state.prob_one(pos));
                match action {
                    ChannelAction::Nothing => {}
                    ChannelAction::Pauli(p) => self.state.apply_1q(pos, &p.matrix()),
                    ChannelAction::Kraus(m) => self.state.apply_1q(pos, &m),
                }
            }
            return;
        }
        let actions: Vec<(usize, ChannelAction)> = {
            let mut guard = self.noise.lock();
            positions
                .iter()
                .map(|&pos| {
                    (
                        pos,
                        guard.sample(class, || {
                            unreachable!("Pauli channels never query prob_one")
                        }),
                    )
                })
                .collect()
        };
        for (pos, action) in actions {
            match action {
                ChannelAction::Nothing => {}
                ChannelAction::Pauli(p) => self.state.apply_1q(pos, &p.matrix()),
                ChannelAction::Kraus(_) => unreachable!("Pauli channels never produce Kraus maps"),
            }
        }
    }

    /// The configured stripe count.
    pub fn max_shards(&self) -> usize {
        self.state.max_shards()
    }

    fn pos(&self, q: QubitId) -> std::result::Result<usize, SimError> {
        self.reg.pos(q)
    }

    fn remove_at(&mut self, q: QubitId, pos: usize, outcome: bool) {
        self.state.remove_qubit(pos, outcome);
        self.reg.remove(q, pos);
    }

    #[inline]
    fn count_gate(&self) {
        self.gate_count.fetch_add(1, Ordering::Relaxed);
    }
}

impl ShardableEngine for ShardedStateVector {
    fn apply_concurrent(&self, gate: Gate, q: QubitId) -> std::result::Result<(), SimError> {
        let pos = self.pos(q)?;
        self.state.apply_1q(pos, &gate.matrix());
        self.count_gate();
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    fn apply_controlled_concurrent(
        &self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> std::result::Result<(), SimError> {
        let tpos = self.pos(target)?;
        let mut cpos = Vec::with_capacity(controls.len());
        for &c in controls {
            if c == target {
                return Err(SimError::DuplicateQubit(c));
            }
            cpos.push(self.pos(c)?);
        }
        self.state.apply_controlled_1q(&cpos, tpos, &gate.matrix());
        self.count_gate();
        cpos.push(tpos);
        self.inject(OpClass::Gate2q, &cpos);
        Ok(())
    }

    fn cnot_concurrent(&self, c: QubitId, t: QubitId) -> std::result::Result<(), SimError> {
        if c == t {
            return Err(SimError::DuplicateQubit(c));
        }
        let cp = self.pos(c)?;
        let tp = self.pos(t)?;
        self.state.apply_cnot(cp, tp);
        self.count_gate();
        self.inject(OpClass::Gate2q, &[cp, tp]);
        Ok(())
    }

    fn cz_concurrent(&self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError> {
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.state.apply_cz(pa, pb);
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    fn swap_concurrent(&self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError> {
        if a == b {
            return Ok(());
        }
        let pa = self.pos(a)?;
        let pb = self.pos(b)?;
        self.state.apply_swap(pa, pb);
        self.count_gate();
        self.inject(OpClass::Gate2q, &[pa, pb]);
        Ok(())
    }

    fn apply_fused_1q_concurrent(
        &self,
        q: QubitId,
        m: &qsim::gates::Mat2,
    ) -> std::result::Result<(), SimError> {
        let pos = self.pos(q)?;
        self.state.apply_1q(pos, m);
        self.count_gate();
        self.inject(OpClass::Gate1q, &[pos]);
        Ok(())
    }

    fn apply_phase_sweep_concurrent(
        &self,
        diags: &[(QubitId, qsim::Complex, qsim::Complex)],
        czs: &[(QubitId, QubitId)],
    ) -> std::result::Result<(), SimError> {
        let mut factors = Vec::with_capacity(diags.len());
        let mut touched = Vec::with_capacity(diags.len() + 2 * czs.len());
        for &(q, d0, d1) in diags {
            let pos = self.pos(q)?;
            factors.push((pos, d0, d1));
            touched.push(pos);
        }
        let mut flips = Vec::with_capacity(czs.len());
        for &(a, b) in czs {
            if a == b {
                return Err(SimError::DuplicateQubit(a));
            }
            let pa = self.pos(a)?;
            let pb = self.pos(b)?;
            flips.push((pa, pb));
            touched.push(pa);
            touched.push(pb);
        }
        // One stripe pass for the whole merged sweep, same per-amplitude
        // sequence as the dense engine; counted as one gate like every
        // other single-pass kernel.
        self.state.apply_phase_sweep(&factors, &flips);
        self.count_gate();
        self.inject(OpClass::Gate1q, &touched);
        Ok(())
    }
}

impl SimEngine for ShardedStateVector {
    fn kind(&self) -> BackendKind {
        BackendKind::ShardedStateVector {
            shards: self.state.max_shards(),
        }
    }

    fn noise(&self) -> NoiseModel {
        self.noise_model
    }

    fn entangle_epr(&mut self, qa: QubitId, qb: QubitId) -> std::result::Result<(), SimError> {
        if qa == qb {
            return Err(SimError::DuplicateQubit(qa));
        }
        // Same H + CNOT realization (and gate tally) as the other engines,
        // with interconnect noise drawn from the dedicated EPR channel in
        // the same order as the dense engine.
        let pa = self.pos(qa)?;
        let pb = self.pos(qb)?;
        self.state.apply_1q(pa, &Gate::H.matrix());
        self.state.apply_cnot(pa, pb);
        self.gate_count.fetch_add(2, Ordering::Relaxed);
        self.inject(OpClass::Epr, &[pa, pb]);
        Ok(())
    }

    fn alloc(&mut self) -> QubitId {
        let pos = self.state.add_qubit();
        self.reg.push(pos)
    }

    fn free(&mut self, q: QubitId) -> std::result::Result<bool, SimError> {
        let pos = self.pos(q)?;
        let outcome = qsim::registry::classical_outcome(q, self.state.prob_one(pos))?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn measure_and_free(&mut self, q: QubitId) -> std::result::Result<bool, SimError> {
        let outcome = self.measure(q)?;
        let pos = self.pos(q)?;
        self.remove_at(q, pos, outcome);
        Ok(outcome)
    }

    fn apply(&mut self, gate: Gate, q: QubitId) -> std::result::Result<(), SimError> {
        self.apply_concurrent(gate, q)
    }

    fn apply_controlled(
        &mut self,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> std::result::Result<(), SimError> {
        self.apply_controlled_concurrent(controls, gate, target)
    }

    fn cnot(&mut self, c: QubitId, t: QubitId) -> std::result::Result<(), SimError> {
        self.cnot_concurrent(c, t)
    }

    fn cz(&mut self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError> {
        self.cz_concurrent(a, b)
    }

    fn swap(&mut self, a: QubitId, b: QubitId) -> std::result::Result<(), SimError> {
        self.swap_concurrent(a, b)
    }

    fn apply_batch(&mut self, batch: &GateBatch) -> std::result::Result<(), SimError> {
        // Same stream, same order, through the stripe-locked surface.
        self.apply_batch_concurrent(batch)
    }

    fn measure(&mut self, q: QubitId) -> std::result::Result<bool, SimError> {
        let pos = self.pos(q)?;
        self.inject(OpClass::Measurement, &[pos]);
        self.measurement_count += 1;
        Ok(self.state.measure(pos, &mut self.rng))
    }

    fn prob_one(&self, q: QubitId) -> std::result::Result<f64, SimError> {
        Ok(self.state.prob_one(self.pos(q)?))
    }

    fn measure_z_parity(&mut self, qubits: &[QubitId]) -> std::result::Result<bool, SimError> {
        let mut pos = Vec::with_capacity(qubits.len());
        for &q in qubits {
            pos.push(self.pos(q)?);
        }
        self.inject(OpClass::Measurement, &pos);
        self.measurement_count += 1;
        Ok(self.state.measure_z_parity(&pos, &mut self.rng))
    }

    fn expectation(&self, terms: &[(QubitId, Pauli)]) -> std::result::Result<f64, SimError> {
        let mut mapped = Vec::with_capacity(terms.len());
        for &(q, op) in terms {
            mapped.push(qsim::measure::PauliTerm {
                qubit: self.pos(q)?,
                op,
            });
        }
        Ok(self.state.expectation_pauli(&mapped))
    }

    fn state_vector(&self, order: &[QubitId]) -> std::result::Result<State, SimError> {
        Ok(self
            .state
            .to_dense()
            .permuted(&self.reg.permutation(order)?))
    }

    fn n_qubits(&self) -> usize {
        self.reg.len()
    }

    fn gate_count(&self) -> u64 {
        self.gate_count.load(Ordering::Relaxed)
    }

    fn measurement_count(&self) -> u64 {
        self.measurement_count
    }
}

/// The cross-rank coalesce window: flushed-but-not-yet-dispatched gate
/// segments from one or more ranks, in arrival order. Lives behind its own
/// mutex inside [`ShardedShared`]; the lock order is always `inner` lock
/// first, window second.
#[derive(Default)]
struct CoalesceWindow {
    /// `(rank, segment)` in arrival order. Consecutive segments from the
    /// same rank merge in place — they would have been consecutive
    /// dispatches anyway.
    segs: Vec<(usize, GateBatch)>,
    /// Total recorded ops across `segs` (window op budget).
    ops: usize,
    /// Total [`GateBatch::approx_bytes`] across `segs` (byte budget).
    bytes: usize,
    /// When the first pending segment arrived (age budget); `None` while
    /// the window is empty.
    opened: Option<std::time::Instant>,
}

impl CoalesceWindow {
    /// Drains the window, resetting every budget.
    fn take(&mut self) -> Vec<(usize, GateBatch)> {
        self.ops = 0;
        self.bytes = 0;
        self.opened = None;
        std::mem::take(&mut self.segs)
    }
}

/// The lock-striped locality wrapper: the same ownership registry and
/// resource counters as [`super::Shared`], but behind a reader-writer lock.
///
/// Gate dispatch — the overwhelming majority of backend traffic — holds
/// only the *read* guard plus the stripe locks the gate actually touches,
/// so ranks no longer serialize on one global mutex. Structural operations
/// (alloc/free, measurement, EPR establishment, snapshots) take the write
/// guard, giving them the same exclusive view `Shared` provides.
///
/// ## Cross-rank coalescing
///
/// With [`crate::BatchPolicy::coalesce`] on (the default), a rank's
/// [`QuantumBackend::apply_batch`] flush does not dispatch to the engine
/// immediately: the (ownership-checked) segment is parked in a
/// coalescing window, and the whole window ships as **one**
/// [`ShardableEngine::apply_segments_concurrent`] call — one merged
/// command round per worker on the process-separated engine — when any
/// rank hits a synchronization point (measurement, probability or
/// expectation reads, free, EPR establishment, snapshots, or an explicit
/// [`QuantumBackend::sync_coalesced`], which the rank layer calls at
/// classical sends and barriers) or a window budget (`max_ops`,
/// `max_bytes`, `max_age_ms`) trips. Ranks own disjoint qubits, so parked
/// segments commute; shipping them in arrival order reproduces the
/// uncoalesced execution bit for bit, noise draws included (segments are
/// planned — and noise sampled — at ship time, in the same arrival order
/// the uncoalesced dispatches would have used).
///
/// The per-gate surface (`apply`/`cnot`/…) does not consult the window —
/// the rank layer never mixes it with batched flushes (eager policies
/// have `coalesce` off). Direct backend users mixing `apply_batch` under
/// a coalescing policy with per-gate calls must call
/// [`QuantumBackend::sync_coalesced`] between the two.
pub struct ShardedShared<E: ShardableEngine = ShardedStateVector> {
    kind: BackendKind,
    noise: NoiseModel,
    policy: crate::context::BatchPolicy,
    inner: RwLock<Inner<E>>,
    window: Mutex<CoalesceWindow>,
    /// Flushes absorbed into an already-open window: each one is a command
    /// fan-out round saved versus dispatching per rank flush. Surfaced via
    /// [`QuantumBackend::transport_stats`] on engines that report stats.
    coalesced_flushes: AtomicU64,
}

impl<E: ShardableEngine> ShardedShared<E> {
    /// Wraps a concurrent-capable engine under the environment-default
    /// batch policy ([`crate::BatchPolicy::env_default`]).
    pub fn new(engine: E) -> Self {
        ShardedShared::with_policy(engine, crate::context::BatchPolicy::env_default())
    }

    /// Wraps a concurrent-capable engine with an explicit policy governing
    /// the cross-rank coalesce window (`policy.coalesce` plus the op /
    /// byte / age budgets). [`super::build_backend_with_policy`] routes a
    /// world's configured policy here.
    pub fn with_policy(engine: E, policy: crate::context::BatchPolicy) -> Self {
        ShardedShared {
            kind: engine.kind(),
            noise: engine.noise(),
            policy,
            inner: RwLock::new(Inner::new(engine)),
            window: Mutex::new(CoalesceWindow::default()),
            coalesced_flushes: AtomicU64::new(0),
        }
    }

    /// Whether flushes coalesce at all: requires batching (an eager world
    /// has no flush stream to merge) and the coalesce switch.
    fn coalescing(&self) -> bool {
        self.policy.coalesce && self.policy.is_batching()
    }

    /// Ships every parked segment (if any) to the engine as one merged
    /// dispatch. Callers hold an `inner` guard (read or write — the
    /// segment surface is `&self`), which is what serializes shipping
    /// against structural changes.
    fn ship_window(&self, inner: &Inner<E>) -> Result<()> {
        if !self.coalescing() {
            return Ok(());
        }
        let segs = self.window.lock().take();
        if segs.is_empty() {
            return Ok(());
        }
        inner.engine.apply_segments_concurrent(segs)?;
        Ok(())
    }
}

impl<E: ShardableEngine> QuantumBackend for ShardedShared<E> {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn noise(&self) -> NoiseModel {
        self.noise
    }

    fn modeled_fidelity(&self) -> Option<f64> {
        self.inner.read().engine.modeled_fidelity()
    }

    fn transport_stats(&self) -> Option<super::TransportStats> {
        // A read-only observer: reports without shipping the window (the
        // engine's own counters are likewise stale while a rank holds
        // unflushed gates). The wrapper owns the coalesce counter, so it
        // is added on top of the engine's transport numbers here.
        let mut stats = self.inner.read().engine.transport_stats()?;
        stats.coalesced_flushes += self.coalesced_flushes.load(Ordering::Relaxed);
        Some(stats)
    }

    fn sync_coalesced(&self) -> Result<()> {
        let g = self.inner.read();
        self.ship_window(&g)
    }

    fn alloc(&self, rank: usize, n: usize) -> Vec<QubitId> {
        // Infallible, so it cannot ship the window itself; the rank layer
        // syncs before allocating (`alloc_qmem` is an accessor flush
        // point). Parked segments name only pre-existing qubits, so
        // shipping them after an alloc computes the same amplitudes.
        self.inner.write().alloc(rank, n)
    }

    fn free(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.free(rank, q)
    }

    fn measure_and_free(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.measure_and_free(rank, q)
    }

    fn owner_of(&self, q: QubitId) -> Option<usize> {
        self.inner.read().owner_of(q)
    }

    fn apply(&self, rank: usize, gate: Gate, q: QubitId) -> Result<()> {
        let g = self.inner.read();
        g.check_owner(rank, q)?;
        g.engine.apply_concurrent(gate, q)?;
        Ok(())
    }

    fn cnot(&self, rank: usize, control: QubitId, target: QubitId) -> Result<()> {
        let g = self.inner.read();
        g.check_owner(rank, control)?;
        g.check_owner(rank, target)?;
        g.engine.cnot_concurrent(control, target)?;
        Ok(())
    }

    fn cz(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let g = self.inner.read();
        g.check_owner(rank, a)?;
        g.check_owner(rank, b)?;
        g.engine.cz_concurrent(a, b)?;
        Ok(())
    }

    fn swap(&self, rank: usize, a: QubitId, b: QubitId) -> Result<()> {
        let g = self.inner.read();
        g.check_owner(rank, a)?;
        g.check_owner(rank, b)?;
        g.engine.swap_concurrent(a, b)?;
        Ok(())
    }

    fn apply_controlled(
        &self,
        rank: usize,
        controls: &[QubitId],
        gate: Gate,
        target: QubitId,
    ) -> Result<()> {
        let g = self.inner.read();
        for &c in controls {
            g.check_owner(rank, c)?;
        }
        g.check_owner(rank, target)?;
        g.engine
            .apply_controlled_concurrent(controls, gate, target)?;
        Ok(())
    }

    fn apply_batch(&self, rank: usize, batch: &GateBatch) -> Result<()> {
        // One read-side acquisition (plus one ownership sweep) for the
        // whole gate stream — the lock-per-batch rule. Ownership errors
        // surface here, before the segment can enter the coalesce window,
        // so a bad flush fails at its own call site exactly as without
        // coalescing.
        let g = self.inner.read();
        g.check_batch(rank, batch)?;
        if !self.coalescing() {
            g.engine.apply_batch_concurrent(batch)?;
            return Ok(());
        }
        if batch.is_empty() {
            return Ok(());
        }
        let shipped = {
            let mut w = self.window.lock();
            if !w.segs.is_empty() {
                // This flush joins an already-open window: one command
                // fan-out round saved versus per-rank dispatch.
                self.coalesced_flushes.fetch_add(1, Ordering::Relaxed);
            }
            w.ops += batch.len();
            w.bytes += batch.approx_bytes();
            match w.segs.last_mut() {
                // Back-to-back flushes from the same rank merge in place —
                // pure concatenation, same as two consecutive dispatches.
                Some((r, seg)) if *r == rank => seg.append(batch.clone()),
                _ => w.segs.push((rank, batch.clone())),
            }
            let opened = *w.opened.get_or_insert_with(std::time::Instant::now);
            let age_tripped = self.policy.max_age_ms > 0
                && opened.elapsed().as_millis() as u64 >= self.policy.max_age_ms;
            if w.ops >= self.policy.max_ops || w.bytes >= self.policy.max_bytes || age_tripped {
                Some(w.take())
            } else {
                None
            }
        };
        if let Some(segs) = shipped {
            g.engine.apply_segments_concurrent(segs)?;
        }
        Ok(())
    }

    fn measure(&self, rank: usize, q: QubitId) -> Result<bool> {
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.measure(rank, q)
    }

    fn prob_one(&self, rank: usize, q: QubitId) -> Result<f64> {
        let g = self.inner.write();
        self.ship_window(&g)?;
        g.prob_one(rank, q)
    }

    fn measure_z_parity(&self, rank: usize, qubits: &[QubitId]) -> Result<bool> {
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.measure_z_parity(rank, qubits)
    }

    fn entangle_epr(&self, qa: QubitId, qb: QubitId) -> Result<()> {
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.entangle_epr(qa, qb)
    }

    fn entangle_epr_batch(&self, pairs: &[(QubitId, QubitId)]) -> Result<()> {
        // One striped acquisition for the whole spanning tree.
        let mut g = self.inner.write();
        self.ship_window(&g)?;
        g.entangle_epr_batch(pairs)
    }

    fn expectation(&self, rank: usize, terms: &[(QubitId, Pauli)]) -> Result<f64> {
        let g = self.inner.write();
        self.ship_window(&g)?;
        g.expectation(rank, terms)
    }

    fn expectation_each(&self, rank: usize, strings: &[Vec<(QubitId, Pauli)>]) -> Result<Vec<f64>> {
        // One acquisition per observable, not one per Pauli string.
        let g = self.inner.write();
        self.ship_window(&g)?;
        g.expectation_each(rank, strings)
    }

    fn state_vector(&self, order: &[QubitId]) -> Result<State> {
        let g = self.inner.write();
        self.ship_window(&g)?;
        Ok(g.engine.state_vector(order)?)
    }

    fn amplitude_of(&self, rank: usize, ones: &[QubitId]) -> Result<qsim::Complex> {
        let g = self.inner.write();
        self.ship_window(&g)?;
        g.amplitude_of(rank, ones)
    }

    fn n_qubits(&self) -> usize {
        self.inner.read().engine.n_qubits()
    }

    fn gate_count(&self) -> u64 {
        self.inner.read().engine.gate_count()
    }

    fn counts(&self) -> OpCounts {
        self.inner.read().counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StateVectorEngine;

    const TOL: f64 = 1e-12;

    /// One step of a random Clifford+T circuit.
    #[derive(Clone, Copy, Debug)]
    enum Step {
        Gate(Gate, usize),
        Cnot(usize, usize),
        Cz(usize, usize),
    }

    fn apply_steps<E: SimEngine>(engine: &mut E, qs: &[QubitId], steps: &[Step]) {
        for &step in steps {
            match step {
                Step::Gate(g, t) => engine.apply(g, qs[t]).unwrap(),
                Step::Cnot(c, t) if c != t => engine.cnot(qs[c], qs[t]).unwrap(),
                Step::Cz(a, b) if a != b => engine.cz(qs[a], qs[b]).unwrap(),
                _ => {}
            }
        }
    }

    fn amplitudes_match(steps: &[Step], shards: usize, n_qubits: usize) {
        amplitudes_match_noisy(steps, shards, n_qubits, NoiseModel::ideal());
    }

    /// Dense and striped engines given the same seed and noise model must
    /// draw identical noise trajectories: the sampling logic and stream
    /// seeding live in `qsim::noise`, shared by both.
    fn amplitudes_match_noisy(steps: &[Step], shards: usize, n_qubits: usize, noise: NoiseModel) {
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut striped = ShardedStateVector::with_noise(1, shards, noise);
        let dq: Vec<QubitId> = (0..n_qubits).map(|_| dense.alloc()).collect();
        let sq: Vec<QubitId> = (0..n_qubits).map(|_| striped.alloc()).collect();
        apply_steps(&mut dense, &dq, steps);
        apply_steps(&mut striped, &sq, steps);
        let want = dense.state_vector(&dq).unwrap();
        let got = striped.state_vector(&sq).unwrap();
        for i in 0..want.len() {
            assert!(
                want.amplitude(i).approx_eq(got.amplitude(i), TOL),
                "shards={shards} amp[{i}]: {:?} vs {:?}",
                want.amplitude(i),
                got.amplitude(i)
            );
        }
    }

    /// The process-separated engine must match the dense engine *bit for
    /// bit* per seed: the shard workers run the same `qsim::stripe` kernels
    /// in the same global command order, and Pauli-noise trajectories come
    /// from the same seeded stream.
    fn remote_matches_dense_bitwise(
        steps: &[Step],
        shards: usize,
        n_qubits: usize,
        noise: NoiseModel,
    ) {
        use crate::backend::RemoteShardedEngine;
        let mut dense = StateVectorEngine::with_noise(1, noise);
        let mut remote = RemoteShardedEngine::with_noise(1, shards, noise);
        let dq: Vec<QubitId> = (0..n_qubits).map(|_| dense.alloc()).collect();
        let rq: Vec<QubitId> = (0..n_qubits).map(|_| remote.alloc()).collect();
        apply_steps(&mut dense, &dq, steps);
        apply_steps(&mut remote, &rq, steps);
        let want = dense.state_vector(&dq).unwrap();
        let got = remote.state_vector(&rq).unwrap();
        for i in 0..want.len() {
            let (w, g) = (want.amplitude(i), got.amplitude(i));
            assert!(
                w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits(),
                "remote shards={shards} amp[{i}]: {w:?} vs {g:?} (bit mismatch)"
            );
        }
    }

    #[test]
    fn engine_matches_dense_on_fixed_circuit() {
        let steps = [
            Step::Gate(Gate::H, 0),
            Step::Gate(Gate::H, 9),
            Step::Gate(Gate::T, 9),
            Step::Cnot(0, 9),
            Step::Cnot(9, 0),
            Step::Cz(3, 8),
            Step::Gate(Gate::S, 5),
            Step::Cnot(8, 9),
        ];
        for shards in [1usize, 2, 8] {
            amplitudes_match(&steps, shards, 10);
        }
    }

    #[test]
    fn engine_matches_dense_under_pauli_noise() {
        let steps = [
            Step::Gate(Gate::H, 0),
            Step::Cnot(0, 1),
            Step::Gate(Gate::T, 2),
            Step::Cz(1, 3),
            Step::Gate(Gate::S, 3),
            Step::Cnot(3, 0),
        ];
        let noise = NoiseModel::depolarizing(0.25)
            .with_measurement(qsim::NoiseChannel::Dephasing { p: 0.3 });
        for shards in [1usize, 2, 8] {
            amplitudes_match_noisy(&steps, shards, 4, noise);
        }
    }

    #[test]
    fn engine_matches_dense_under_amplitude_damping() {
        // The trajectory decision depends on prob_one, computed by summing
        // amplitudes in different orders in the two engines; a fixed seed
        // and circuit keeps both on the same branch and the Kraus maps
        // must then agree to round-off.
        let steps = [
            Step::Gate(Gate::H, 0),
            Step::Gate(Gate::X, 1),
            Step::Cnot(0, 2),
            Step::Gate(Gate::Ry(0.9), 1),
            Step::Cnot(1, 3),
            Step::Gate(Gate::H, 2),
        ];
        let noise = NoiseModel::amplitude_damping(0.2);
        for shards in [1usize, 2, 8] {
            amplitudes_match_noisy(&steps, shards, 4, noise);
        }
    }

    #[test]
    fn amplitude_damping_preserves_norm() {
        let mut engine = ShardedStateVector::with_noise(5, 4, NoiseModel::amplitude_damping(0.3));
        let qs: Vec<QubitId> = (0..6).map(|_| engine.alloc()).collect();
        for &q in &qs {
            engine.apply(Gate::H, q).unwrap();
        }
        for w in qs.windows(2) {
            engine.cnot(w[0], w[1]).unwrap();
        }
        let st = engine.state_vector(&qs).unwrap();
        let norm: f64 = (0..st.len()).map(|i| st.amplitude(i).norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm = {norm}");
    }

    #[test]
    fn wrapper_runs_concurrent_rank_gates() {
        use std::sync::Arc;
        let backend: Arc<dyn QuantumBackend> = crate::backend::build_backend(
            BackendKind::ShardedStateVector { shards: 8 },
            cmpi::TransportKind::InProcess,
            3,
            NoiseModel::ideal(),
        )
        .unwrap();
        let mut qubits = Vec::new();
        for rank in 0..4usize {
            qubits.push((rank, backend.alloc(rank, 2)));
        }
        std::thread::scope(|s| {
            for (rank, qs) in &qubits {
                let backend = Arc::clone(&backend);
                s.spawn(move || {
                    for _ in 0..25 {
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.cnot(*rank, qs[0], qs[1]).unwrap();
                        backend.apply(*rank, Gate::H, qs[0]).unwrap();
                    }
                });
            }
        });
        // Every rank's round was self-inverse: all qubits must read |0>.
        for (rank, qs) in &qubits {
            for &q in qs {
                assert!(backend.prob_one(*rank, q).unwrap() < 1e-9);
                backend.measure_and_free(*rank, q).unwrap();
            }
        }
        assert_eq!(backend.counts().live_qubits, 0);
    }

    #[test]
    fn batch_entangle_is_one_acquisition_of_many_pairs() {
        let backend = crate::backend::build_backend(
            BackendKind::ShardedStateVector { shards: 4 },
            cmpi::TransportKind::InProcess,
            9,
            NoiseModel::ideal(),
        )
        .unwrap();
        let a = backend.alloc(0, 3);
        let b = backend.alloc(1, 3);
        let pairs: Vec<(QubitId, QubitId)> = a.iter().copied().zip(b.iter().copied()).collect();
        backend.entangle_epr_batch(&pairs).unwrap();
        for (qa, qb) in pairs {
            let ma = backend.measure(0, qa).unwrap();
            let mb = backend.measure(1, qb).unwrap();
            assert_eq!(ma, mb, "batched pair must be entangled");
        }
        assert_eq!(backend.counts().epr_entanglements, 3);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_step(n_qubits: usize) -> impl Strategy<Value = Step> {
            let n = n_qubits;
            prop_oneof![
                (0usize..8, 0..n).prop_map(|(g, t)| {
                    let gate = match g {
                        0 => Gate::H,
                        1 => Gate::S,
                        2 => Gate::Sdg,
                        3 => Gate::T,
                        4 => Gate::Tdg,
                        5 => Gate::X,
                        6 => Gate::Y,
                        _ => Gate::Z,
                    };
                    Step::Gate(gate, t)
                }),
                (0..n, 0..n).prop_map(|(c, t)| Step::Cnot(c, t)),
                (0..n, 0..n).prop_map(|(a, b)| Step::Cz(a, b)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// The satellite acceptance property: 1-, 2-, and 8-shard
            /// striped engines produce amplitudes identical to the dense
            /// engine on random 10-qubit Clifford+T circuits — and the
            /// process-separated engine matches bit for bit.
            #[test]
            fn sharded_amplitudes_identical_to_dense(
                steps in proptest::collection::vec(arb_step(10), 10..60),
            ) {
                for shards in [1usize, 2, 8] {
                    amplitudes_match(&steps, shards, 10);
                    remote_matches_dense_bitwise(&steps, shards, 10, NoiseModel::ideal());
                }
            }

            /// The same property under Pauli noise: every engine must draw
            /// identical trajectories from the shared seeded noise stream
            /// (the remote engine samples on the controller, so its stream
            /// is the dense engine's stream).
            #[test]
            fn sharded_amplitudes_identical_to_dense_under_noise(
                steps in proptest::collection::vec(arb_step(8), 10..40),
                p in 0.0f64..0.5,
            ) {
                let noise = NoiseModel::depolarizing(p);
                for shards in [1usize, 2, 8] {
                    amplitudes_match_noisy(&steps, shards, 8, noise);
                    remote_matches_dense_bitwise(&steps, shards, 8, noise);
                }
            }
        }
    }
}
